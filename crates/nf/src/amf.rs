//! The Access and Mobility Management Function (with the SEAF role).
//!
//! Terminates NAS from the gNB (paper Fig. 2: "forwards Non-Access
//! Stratum signaling messages between the Access Network and the core"),
//! drives 5G-AKA against the AUSF, performs the SEAF's HRES*/HXRES*
//! check, activates NAS security, allocates GUTIs and anchors PDU-session
//! requests to the SMF. Its K_AMF derivation is delegated to an
//! [`AmfAkaBackend`] (the eAMF P-AKA module in the paper's deployments).

use crate::backend::{AmfAkaBackend, AmfAkaRequest, BackendOp};
use crate::messages::{AuthFailureCause, NasDownlink, NasUplink, Ngap, UeIdentity};
use crate::nas_security::{NasSecurityContext, ProtectedNas, CIPHER_ALG_AES, INTEGRITY_ALG_HMAC};
use crate::sbi::{
    AuthenticateRequest, AuthenticateResponse, ConfirmRequest, ConfirmResponse,
    CreateSessionRequest, CreateSessionResponse, ResyncRequest, SbiClient,
};
use crate::NfError;
use shield5g_crypto::ident::Guti;
use shield5g_crypto::keys::derive_hxres_star;
use shield5g_crypto::sqn::Auts;
use shield5g_sim::engine::{EngineService, LegMeta, Step};
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// NAS decode/validate/route overhead per message on the OAI C++ path.
const AMF_NAS_HANDLER_NANOS: u64 = 62_000;

/// The ABBA parameter (TS 33.501: all zeros pending feature sets).
pub const ABBA: [u8; 2] = [0, 0];

/// Registration progress for one UE association.
enum UeState {
    /// Challenge sent; waiting for the RES*.
    AuthPending {
        identity: UeIdentity,
        auth_ctx_id: u64,
        rand: [u8; 16],
        hxres_star: [u8; 16],
        /// Re-synchronisation attempts so far (loop guard).
        resync_attempts: u8,
    },
    /// Security mode command sent; NAS context live.
    SecurityMode {
        supi: String,
        sec: NasSecurityContext,
    },
    /// Registration accepted; waiting for complete.
    AcceptSent {
        supi: String,
        sec: NasSecurityContext,
        guti: Guti,
    },
    /// Fully registered.
    Registered {
        supi: String,
        sec: NasSecurityContext,
        guti: Guti,
    },
    /// Identity request sent; waiting for the SUCI.
    AwaitingIdentity,
}

/// The AMF service.
pub struct AmfService {
    client: SbiClient,
    ausf_addr: String,
    smf_addr: String,
    backend: Box<dyn AmfAkaBackend>,
    serving_mcc: String,
    serving_mnc: String,
    contexts: BTreeMap<u64, UeState>,
    pending_teid: BTreeMap<u64, u32>,
    pending_teardown: BTreeSet<u64>,
    guti_to_supi: BTreeMap<u32, String>,
    next_tmsi: u32,
    registrations_completed: u64,
    deregistrations: u64,
}

impl std::fmt::Debug for AmfService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmfService")
            .field("active_contexts", &self.contexts.len())
            .field("registrations_completed", &self.registrations_completed)
            .finish()
    }
}

impl AmfService {
    /// Creates an AMF for the serving PLMN `mcc`/`mnc`.
    #[must_use]
    pub fn new(
        client: SbiClient,
        ausf_addr: impl Into<String>,
        smf_addr: impl Into<String>,
        backend: Box<dyn AmfAkaBackend>,
        mcc: &str,
        mnc: &str,
    ) -> Self {
        AmfService {
            client,
            ausf_addr: ausf_addr.into(),
            smf_addr: smf_addr.into(),
            backend,
            serving_mcc: mcc.to_owned(),
            serving_mnc: mnc.to_owned(),
            contexts: BTreeMap::new(),
            pending_teid: BTreeMap::new(),
            pending_teardown: BTreeSet::new(),
            guti_to_supi: BTreeMap::new(),
            next_tmsi: 0x0100_0000,
            registrations_completed: 0,
            deregistrations: 0,
        }
    }

    /// Completed registrations (diagnostics / experiments).
    #[must_use]
    pub fn registrations_completed(&self) -> u64 {
        self.registrations_completed
    }

    /// Charges the SBI send cost and yields the call to the engine.
    /// Supervision retries live in the middleware stack
    /// (`shield5g_mw::RetryLayer`), not in the NF.
    fn call_out(
        &self,
        env: &mut Env,
        dest: String,
        path: &str,
        body: Vec<u8>,
        state: Box<dyn Any>,
    ) -> Step {
        let req = self.client.send(env, path, body);
        Step::CallOut { dest, req, state }
    }

    /// Completed deregistrations.
    #[must_use]
    pub fn deregistrations(&self) -> u64 {
        self.deregistrations
    }

    /// Whether the UE association is in the `Registered` state.
    #[must_use]
    pub fn is_registered(&self, ran_ue_id: u64) -> bool {
        matches!(
            self.contexts.get(&ran_ue_id),
            Some(UeState::Registered { .. })
        )
    }

    /// Error mapping of the NGAP handler path.
    fn ngap_error(e: NfError) -> HttpResponse {
        match e {
            NfError::AuthenticationRejected(why) => HttpResponse::error(403, why),
            NfError::Sim(shield5g_sim::SimError::ServiceFailure { status, .. }) => {
                HttpResponse::error(status, "upstream failure")
            }
            e => HttpResponse::error(400, e.to_string()),
        }
    }

    fn start_authentication(
        &mut self,
        env: &mut Env,
        ran_ue_id: u64,
        identity: UeIdentity,
        resync_attempts: u8,
    ) -> Result<Step, NfError> {
        // A known GUTI maps to a SUPI carried in the SBI `known_supi`
        // field; unknown GUTIs would require an Identity Request (we
        // reject, forcing the UE to fall back to SUCI).
        let known_supi = match &identity {
            UeIdentity::Suci(_) => String::new(),
            UeIdentity::Guti(guti) => match self.guti_to_supi.get(&guti.tmsi) {
                Some(supi) => supi.clone(),
                None => {
                    // TS 23.502 §4.2.2.2.2: the AMF cannot resolve the 5G-GUTI
                    // and asks the UE for its (concealed) permanent identity.
                    self.contexts.insert(ran_ue_id, UeState::AwaitingIdentity);
                    return Ok(self.finish_ngap(ran_ue_id, &NasDownlink::IdentityRequest));
                }
            },
        };
        let req = AuthenticateRequest {
            identity: identity.clone(),
            known_supi,
            snn_mcc: self.serving_mcc.clone(),
            snn_mnc: self.serving_mnc.clone(),
        };
        Ok(self.call_out(
            env,
            self.ausf_addr.clone(),
            "/nausf-auth/authenticate",
            req.encode(),
            Box::new(AmfFlow::AwaitAusfAuth {
                ran_ue_id,
                identity,
                resync_attempts,
            }),
        ))
    }

    fn handle_auth_response(
        &mut self,
        env: &mut Env,
        ran_ue_id: u64,
        res_star: [u8; 16],
    ) -> Result<Step, NfError> {
        let Some(UeState::AuthPending {
            auth_ctx_id,
            rand,
            hxres_star,
            ..
        }) = self.contexts.get(&ran_ue_id)
        else {
            return Err(NfError::Protocol(
                "authentication response without pending auth".into(),
            ));
        };
        let (auth_ctx_id, rand, hxres_star) = (*auth_ctx_id, *rand, *hxres_star);

        // SEAF check: HRES* against HXRES* (TS 33.501 §6.1.3.2 step 9).
        let hres_star = derive_hxres_star(&rand, &res_star);
        if !shield5g_crypto::ct_eq(&hres_star, &hxres_star) {
            self.contexts.remove(&ran_ue_id);
            env.log
                .record(env.clock.now(), "aka", "SEAF HRES* check failed");
            return Ok(self.finish_ngap(ran_ue_id, &NasDownlink::AuthenticationReject));
        }

        // AUSF confirmation releases K_SEAF and the SUPI.
        let confirm = ConfirmRequest {
            auth_ctx_id,
            res_star,
        };
        Ok(self.call_out(
            env,
            self.ausf_addr.clone(),
            "/nausf-auth/confirm",
            confirm.encode(),
            Box::new(AmfFlow::AwaitConfirm { ran_ue_id }),
        ))
    }

    /// With K_AMF in hand: activate NAS security and command the UE.
    fn enter_security_mode(&mut self, ran_ue_id: u64, supi: String, kamf: &[u8; 32]) -> Step {
        let sec = NasSecurityContext::from_kamf(kamf, false);
        self.contexts
            .insert(ran_ue_id, UeState::SecurityMode { supi, sec });
        self.finish_ngap(
            ran_ue_id,
            &NasDownlink::SecurityModeCommand {
                integrity_alg: INTEGRITY_ALG_HMAC,
                ciphering_alg: CIPHER_ALG_AES,
            },
        )
    }

    fn handle_auth_failure(
        &mut self,
        env: &mut Env,
        ran_ue_id: u64,
        cause: AuthFailureCause,
    ) -> Result<Step, NfError> {
        let Some(UeState::AuthPending {
            identity,
            rand,
            resync_attempts,
            ..
        }) = self.contexts.remove(&ran_ue_id)
        else {
            return Err(NfError::Protocol(
                "authentication failure without pending auth".into(),
            ));
        };
        match cause {
            AuthFailureCause::MacFailure => {
                env.log
                    .record(env.clock.now(), "aka", "UE reported MAC failure");
                Ok(self.finish_ngap(
                    ran_ue_id,
                    &NasDownlink::RegistrationReject {
                        cause: 3, /* illegal network */
                    },
                ))
            }
            AuthFailureCause::SynchFailure(auts) => {
                if resync_attempts >= 2 {
                    return Ok(self
                        .finish_ngap(ran_ue_id, &NasDownlink::RegistrationReject { cause: 111 }));
                }
                // Recover the SUPI for the resync. A known GUTI resolves
                // locally; a SUCI must be de-concealed by the UDM/SIDF, so
                // the AMF runs the identity through a `generate-auth-data`
                // round first (which also returns the SUPI).
                let supi = match &identity {
                    UeIdentity::Suci(_) => String::new(),
                    UeIdentity::Guti(guti) => self
                        .guti_to_supi
                        .get(&guti.tmsi)
                        .cloned()
                        .unwrap_or_default(),
                };
                if supi.is_empty() {
                    let req = crate::sbi::UdmAuthGetRequest {
                        identity: identity.clone(),
                        known_supi: String::new(),
                        snn_mcc: self.serving_mcc.clone(),
                        snn_mnc: self.serving_mnc.clone(),
                    };
                    return Ok(self.call_out(
                        env,
                        crate::addr::UDM.to_owned(),
                        "/nudm-ueau/generate-auth-data",
                        req.encode(),
                        Box::new(AmfFlow::AwaitSupiResolve {
                            ran_ue_id,
                            identity,
                            rand,
                            auts,
                            resync_attempts,
                        }),
                    ));
                }
                self.send_resync(env, ran_ue_id, identity, supi, rand, &auts, resync_attempts)
            }
        }
    }

    /// Pushes the AUTS to the AUSF resync endpoint.
    #[allow(clippy::too_many_arguments)]
    fn send_resync(
        &mut self,
        env: &mut Env,
        ran_ue_id: u64,
        identity: UeIdentity,
        supi: String,
        rand: [u8; 16],
        auts: &Auts,
        resync_attempts: u8,
    ) -> Result<Step, NfError> {
        let resync = ResyncRequest {
            supi,
            rand,
            auts: auts.clone(),
        };
        Ok(self.call_out(
            env,
            self.ausf_addr.clone(),
            "/nausf-auth/resync",
            resync.encode(),
            Box::new(AmfFlow::AwaitResync {
                ran_ue_id,
                identity,
                resync_attempts,
            }),
        ))
    }

    fn allocate_guti(&mut self, supi: &str) -> Guti {
        let tmsi = self.next_tmsi;
        self.next_tmsi += 1;
        // A subscriber holds exactly one valid 5G-GUTI: allocating a new
        // one invalidates any earlier mapping (GUTI hygiene — a superseded
        // temporary identity must not keep resolving).
        self.guti_to_supi.retain(|_, s| s != supi);
        self.guti_to_supi.insert(tmsi, supi.to_owned());
        Guti::new(1, 1, 1, tmsi)
    }

    fn handle_secured_uplink(
        &mut self,
        env: &mut Env,
        ran_ue_id: u64,
        pdu: &ProtectedNas,
    ) -> Result<Step, NfError> {
        let state = self
            .contexts
            .remove(&ran_ue_id)
            .ok_or_else(|| NfError::Protocol("secured NAS without context".into()))?;
        match state {
            UeState::SecurityMode { supi, mut sec } => {
                let plain = sec.unprotect(pdu)?;
                match NasUplink::decode(&plain)? {
                    NasUplink::SecurityModeComplete => {
                        let guti = self.allocate_guti(&supi);
                        self.contexts
                            .insert(ran_ue_id, UeState::AcceptSent { supi, sec, guti });
                        Ok(self.finish_ngap(ran_ue_id, &NasDownlink::RegistrationAccept { guti }))
                    }
                    other => Err(NfError::Protocol(format!(
                        "expected SecurityModeComplete, got {other:?}"
                    ))),
                }
            }
            UeState::AcceptSent {
                supi,
                mut sec,
                guti,
            } => {
                let plain = sec.unprotect(pdu)?;
                match NasUplink::decode(&plain)? {
                    NasUplink::RegistrationComplete => {
                        self.registrations_completed += 1;
                        shield5g_obs::hub::count(
                            "amf",
                            "/ngap",
                            shield5g_obs::labels::REGISTRATIONS_COMPLETED,
                            1,
                        );
                        env.log.record(
                            env.clock.now(),
                            "aka",
                            format!("{supi} registered as {guti}"),
                        );
                        self.contexts
                            .insert(ran_ue_id, UeState::Registered { supi, sec, guti });
                        // No downlink NAS needed; answer with a harmless
                        // context-setup echo (the gNB consumes it).
                        Ok(self.finish_ngap(ran_ue_id, &NasDownlink::RegistrationAccept { guti }))
                    }
                    other => Err(NfError::Protocol(format!(
                        "expected RegistrationComplete, got {other:?}"
                    ))),
                }
            }
            UeState::Registered {
                supi,
                mut sec,
                guti,
            } => {
                let plain = sec.unprotect(pdu)?;
                match NasUplink::decode(&plain)? {
                    NasUplink::DeregistrationRequest { switch_off } => {
                        // Invalidate the GUTI and drop the context; the
                        // accept still rides the (dying) security context,
                        // which `encode_downlink` picks up from the
                        // tombstone before `finish_ngap` clears it.
                        self.guti_to_supi.remove(&guti.tmsi);
                        self.deregistrations += 1;
                        shield5g_obs::hub::count(
                            "amf",
                            "/ngap",
                            shield5g_obs::labels::DEREGISTRATIONS,
                            1,
                        );
                        self.pending_teardown.insert(ran_ue_id);
                        env.log.record(
                            env.clock.now(),
                            "aka",
                            format!("{supi} deregistered (switch_off={switch_off})"),
                        );
                        self.contexts
                            .insert(ran_ue_id, UeState::Registered { supi, sec, guti });
                        Ok(self.finish_ngap(ran_ue_id, &NasDownlink::DeregistrationAccept))
                    }
                    NasUplink::PduSessionEstablishmentRequest { pdu_session_id } => {
                        // Re-arm the context before yielding so the resumed
                        // flow finds the security context for the downlink.
                        self.contexts.insert(
                            ran_ue_id,
                            UeState::Registered {
                                supi: supi.clone(),
                                sec,
                                guti,
                            },
                        );
                        Ok(self.call_out(
                            env,
                            self.smf_addr.clone(),
                            "/nsmf-pdusession/create",
                            CreateSessionRequest {
                                supi,
                                pdu_session_id,
                            }
                            .encode(),
                            Box::new(AmfFlow::AwaitSmf {
                                ran_ue_id,
                                pdu_session_id,
                            }),
                        ))
                    }
                    other => Err(NfError::Protocol(format!(
                        "unexpected NAS in registered state: {other:?}"
                    ))),
                }
            }
            UeState::AuthPending { .. } | UeState::AwaitingIdentity => Err(NfError::Protocol(
                "secured NAS during authentication".into(),
            )),
        }
    }

    /// Protects a downlink NAS message when a security context exists for
    /// the association (post security-mode messages are protected).
    fn encode_downlink(&mut self, ran_ue_id: u64, msg: &NasDownlink) -> Vec<u8> {
        let plain = msg.encode();
        match (self.contexts.get_mut(&ran_ue_id), msg) {
            // The SecurityModeCommand itself and everything after travel
            // under the new context.
            (Some(UeState::SecurityMode { sec, .. }), _)
            | (Some(UeState::AcceptSent { sec, .. }), _)
            | (Some(UeState::Registered { sec, .. }), _) => sec.protect(&plain).encode(),
            _ => plain,
        }
    }

    /// Wraps a downlink NAS message into the NGAP reply: protect under the
    /// association's security context, apply any pending teardown, and
    /// choose the NGAP frame (a freshly anchored PDU session rides down in
    /// an `InitialContextSetup` so the gNB learns the GTP tunnel endpoint).
    fn finish_ngap(&mut self, ran_ue_id: u64, msg: &NasDownlink) -> Step {
        let nas = self.encode_downlink(ran_ue_id, msg);
        // A deregistration tears the context down after the (protected)
        // accept has been encoded.
        if self.pending_teardown.remove(&ran_ue_id) {
            self.contexts.remove(&ran_ue_id);
        }
        let ngap = if let Some(teid) = self.pending_teid.remove(&ran_ue_id) {
            Ngap::InitialContextSetup {
                ran_ue_id,
                nas,
                teid,
            }
        } else {
            Ngap::DownlinkNasTransport { ran_ue_id, nas }
        };
        Step::Reply(HttpResponse::ok(ngap.encode()))
    }

    fn process_ngap(&mut self, env: &mut Env, ngap: &Ngap) -> Result<Step, NfError> {
        env.clock
            .advance(SimDuration::from_nanos(AMF_NAS_HANDLER_NANOS));
        let ran_ue_id = ngap.ran_ue_id();
        let nas_bytes = ngap.nas();

        // Secured PDUs only exist once a context is past SecurityMode.
        let has_sec_context = matches!(
            self.contexts.get(&ran_ue_id),
            Some(
                UeState::SecurityMode { .. }
                    | UeState::AcceptSent { .. }
                    | UeState::Registered { .. }
            )
        );
        if has_sec_context {
            let pdu = ProtectedNas::decode(nas_bytes)?;
            self.handle_secured_uplink(env, ran_ue_id, &pdu)
        } else {
            match NasUplink::decode(nas_bytes)? {
                NasUplink::RegistrationRequest { identity } => {
                    self.start_authentication(env, ran_ue_id, identity, 0)
                }
                NasUplink::AuthenticationResponse { res_star } => {
                    self.handle_auth_response(env, ran_ue_id, res_star)
                }
                NasUplink::AuthenticationFailure { cause } => {
                    self.handle_auth_failure(env, ran_ue_id, cause)
                }
                NasUplink::IdentityResponse { suci } => {
                    if !matches!(
                        self.contexts.get(&ran_ue_id),
                        Some(UeState::AwaitingIdentity)
                    ) {
                        return Err(NfError::Protocol("unsolicited identity response".into()));
                    }
                    self.contexts.remove(&ran_ue_id);
                    self.start_authentication(env, ran_ue_id, UeIdentity::Suci(suci), 0)
                }
                other => Err(NfError::Protocol(format!(
                    "unexpected plain NAS: {other:?}"
                ))),
            }
        }
    }

    /// Drives one resumed continuation after a downstream response event.
    fn resume_flow(
        &mut self,
        env: &mut Env,
        flow: AmfFlow,
        resp: HttpResponse,
    ) -> Result<Step, NfError> {
        match flow {
            AmfFlow::AwaitAusfAuth {
                ran_ue_id,
                identity,
                resync_attempts,
            } => {
                let body = self.client.receive(env, &self.ausf_addr, resp)?;
                let auth = AuthenticateResponse::decode(&body)?;
                self.contexts.insert(
                    ran_ue_id,
                    UeState::AuthPending {
                        identity,
                        auth_ctx_id: auth.auth_ctx_id,
                        rand: auth.se_av.rand,
                        hxres_star: auth.se_av.hxres_star,
                        resync_attempts,
                    },
                );
                Ok(self.finish_ngap(
                    ran_ue_id,
                    &NasDownlink::AuthenticationRequest {
                        rand: auth.se_av.rand,
                        autn: auth.se_av.autn,
                        abba: ABBA,
                        ngksi: 0,
                    },
                ))
            }
            AmfFlow::AwaitConfirm { ran_ue_id } => {
                let body = self.client.receive(env, &self.ausf_addr, resp)?;
                let confirm = ConfirmResponse::decode(&body)?;
                if !confirm.success {
                    self.contexts.remove(&ran_ue_id);
                    return Ok(self.finish_ngap(ran_ue_id, &NasDownlink::AuthenticationReject));
                }
                // K_AMF via the (possibly enclave-hosted) backend.
                let req = AmfAkaRequest {
                    kseaf: confirm.kseaf,
                    supi: confirm.supi.clone(),
                    abba: ABBA,
                };
                match self.backend.begin_derive_kamf(env, &req) {
                    BackendOp::Done(kamf) => {
                        Ok(self.enter_security_mode(ran_ue_id, confirm.supi, kamf?.expose()))
                    }
                    BackendOp::Call { dest, req, token } => Ok(Step::CallOut {
                        dest,
                        req,
                        state: Box::new(AmfFlow::AwaitKamf {
                            ran_ue_id,
                            supi: confirm.supi,
                            token,
                        }),
                    }),
                }
            }
            AmfFlow::AwaitKamf {
                ran_ue_id,
                supi,
                token,
            } => {
                let kamf = self.backend.finish_derive_kamf(env, token, resp)?;
                Ok(self.enter_security_mode(ran_ue_id, supi, kamf.expose()))
            }
            AmfFlow::AwaitSupiResolve {
                ran_ue_id,
                identity,
                rand,
                auts,
                resync_attempts,
            } => {
                let body = self.client.receive(env, crate::addr::UDM, resp)?;
                let supi = crate::sbi::UdmAuthGetResponse::decode(&body)?.supi;
                self.send_resync(env, ran_ue_id, identity, supi, rand, &auts, resync_attempts)
            }
            AmfFlow::AwaitResync {
                ran_ue_id,
                identity,
                resync_attempts,
            } => {
                self.client.receive(env, &self.ausf_addr, resp)?;
                env.log.record(
                    env.clock.now(),
                    "aka",
                    "SQN re-synchronised; restarting AKA",
                );
                self.start_authentication(env, ran_ue_id, identity, resync_attempts + 1)
            }
            AmfFlow::AwaitSmf {
                ran_ue_id,
                pdu_session_id,
            } => {
                let body = self.client.receive(env, &self.smf_addr, resp)?;
                let created = CreateSessionResponse::decode(&body)?;
                self.pending_teid.insert(ran_ue_id, created.upf_teid);
                Ok(self.finish_ngap(
                    ran_ue_id,
                    &NasDownlink::PduSessionEstablishmentAccept {
                        pdu_session_id,
                        ue_ip: created.ue_ip,
                    },
                ))
            }
        }
    }
}

/// Continuation state across the AMF's outbound SBI round trips.
#[allow(clippy::enum_variant_names)] // every variant awaits a distinct peer
enum AmfFlow {
    /// Waiting for the AUSF's SE AV (authenticate).
    AwaitAusfAuth {
        ran_ue_id: u64,
        identity: UeIdentity,
        resync_attempts: u8,
    },
    /// Waiting for the AUSF's confirmation (K_SEAF release).
    AwaitConfirm { ran_ue_id: u64 },
    /// Waiting for the eAMF module's K_AMF derivation.
    AwaitKamf {
        ran_ue_id: u64,
        supi: String,
        token: Box<dyn Any>,
    },
    /// Waiting for a UDM round that de-conceals the SUCI for a resync.
    AwaitSupiResolve {
        ran_ue_id: u64,
        identity: UeIdentity,
        rand: [u8; 16],
        auts: Auts,
        resync_attempts: u8,
    },
    /// Waiting for the AUSF resync acknowledgement.
    AwaitResync {
        ran_ue_id: u64,
        identity: UeIdentity,
        resync_attempts: u8,
    },
    /// Waiting for the SMF's PDU-session anchor.
    AwaitSmf { ran_ue_id: u64, pdu_session_id: u8 },
}

impl EngineService for AmfService {
    fn start(&mut self, env: &mut Env, _leg: &LegMeta, req: HttpRequest) -> Step {
        if req.path != "/ngap" {
            return Step::Reply(HttpResponse::error(
                404,
                format!("no handler for {}", req.path),
            ));
        }
        match Ngap::decode(&req.body)
            .map_err(NfError::from)
            .and_then(|ngap| self.process_ngap(env, &ngap))
        {
            Ok(step) => step,
            Err(e) => Step::Reply(Self::ngap_error(e)),
        }
    }

    fn resume(
        &mut self,
        env: &mut Env,
        _leg: &LegMeta,
        state: Box<dyn Any>,
        resp: HttpResponse,
    ) -> Step {
        let flow = match state.downcast::<AmfFlow>() {
            Ok(f) => *f,
            Err(_) => return Step::Reply(HttpResponse::error(500, "amf: foreign state")),
        };
        match self.resume_flow(env, flow, resp) {
            Ok(step) => step,
            Err(e) => Step::Reply(Self::ngap_error(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    // The AMF's behaviour is exercised end-to-end (with a real UE model)
    // in the `shield5g-ran` crate and the workspace integration tests;
    // unit tests here cover the plumbing edges.
    use super::*;
    use crate::backend::LocalAmfAka;
    use shield5g_sim::engine::Engine;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn amf() -> AmfService {
        AmfService::new(
            SbiClient::new(),
            crate::addr::AUSF,
            crate::addr::SMF,
            Box::new(LocalAmfAka::new()),
            "001",
            "01",
        )
    }

    fn leg() -> LegMeta {
        LegMeta {
            id: 0,
            dest: "amf.oai".into(),
            path: "/ngap".into(),
            submitted: shield5g_sim::time::SimTime::from_nanos(0),
            arrived: shield5g_sim::time::SimTime::from_nanos(0),
            root: true,
            class: shield5g_sim::engine::PriorityClass::Normal,
        }
    }

    /// Runs a request straight into the service (no engine) and expects it
    /// to finish without yielding a downstream call.
    fn reply(amf: &mut AmfService, env: &mut Env, req: HttpRequest) -> HttpResponse {
        match amf.start(env, &leg(), req) {
            Step::Reply(resp) => resp,
            Step::CallOut { dest, .. } => panic!("expected a reply, got a call to {dest}"),
        }
    }

    #[test]
    fn non_ngap_path_is_404() {
        let mut env = Env::new(1);
        let mut amf = amf();
        assert_eq!(
            reply(&mut amf, &mut env, HttpRequest::get("/other")).status,
            404
        );
    }

    #[test]
    fn garbage_ngap_is_400() {
        let mut env = Env::new(1);
        let mut amf = amf();
        let resp = reply(
            &mut amf,
            &mut env,
            HttpRequest::post("/ngap", vec![0xff, 0xff]),
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn auth_response_without_pending_auth_is_400() {
        let mut env = Env::new(1);
        let mut amf = amf();
        let nas = NasUplink::AuthenticationResponse { res_star: [0; 16] }.encode();
        let ngap = Ngap::UplinkNasTransport { ran_ue_id: 9, nas }.encode();
        let resp = reply(&mut amf, &mut env, HttpRequest::post("/ngap", ngap));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn registration_to_unreachable_ausf_fails_cleanly() {
        // The AMF is registered on an engine with no AUSF endpoint: the
        // engine synthesizes a 502 for the callout and the AMF maps the
        // failure to a clean client-side error.
        let mut env = Env::new(1);
        let mut engine = Engine::new();
        let amf = Rc::new(RefCell::new(amf()));
        engine.register(crate::addr::AMF, 4, amf.clone());
        let suci = shield5g_crypto::ident::Supi::parse("imsi-001010000000001")
            .unwrap()
            .conceal_null();
        let nas = NasUplink::RegistrationRequest {
            identity: UeIdentity::Suci(suci),
        }
        .encode();
        let ngap = Ngap::InitialUeMessage { ran_ue_id: 1, nas }.encode();
        let resp = engine
            .dispatch(&mut env, crate::addr::AMF, HttpRequest::post("/ngap", ngap))
            .unwrap();
        assert_eq!(resp.status, 400);
        assert!(!amf.borrow().is_registered(1));
    }

    #[test]
    fn unknown_guti_triggers_identity_request() {
        let mut env = Env::new(1);
        let mut amf = amf();
        let nas = NasUplink::RegistrationRequest {
            identity: UeIdentity::Guti(Guti::new(1, 1, 1, 0xdead)),
        }
        .encode();
        let ngap = Ngap::InitialUeMessage { ran_ue_id: 1, nas }.encode();
        let resp = reply(&mut amf, &mut env, HttpRequest::post("/ngap", ngap));
        assert!(resp.is_success());
        let downlink = Ngap::decode(&resp.body).unwrap();
        assert_eq!(
            crate::messages::NasDownlink::decode(downlink.nas()).unwrap(),
            crate::messages::NasDownlink::IdentityRequest
        );
    }

    #[test]
    fn unsolicited_identity_response_rejected() {
        let mut env = Env::new(1);
        let mut amf = amf();
        let suci = shield5g_crypto::ident::Supi::parse("imsi-001010000000001")
            .unwrap()
            .conceal_null();
        let nas = NasUplink::IdentityResponse { suci }.encode();
        let ngap = Ngap::UplinkNasTransport { ran_ue_id: 9, nas }.encode();
        let resp = reply(&mut amf, &mut env, HttpRequest::post("/ngap", ngap));
        assert_eq!(resp.status, 400);
    }
}
