//! The 5G core network functions over a simulated service-based
//! architecture.
//!
//! Implements the control-plane slice of paper Figure 2: NRF (discovery),
//! UDR (credential storage), UDM (SIDF + authentication data), AUSF
//! (authentication server), AMF/SEAF (NAS handling and mobility), and the
//! SMF/UPF session anchors — with the complete 5G-AKA message flow of
//! TS 33.501 §6.1.3.2 including HXRES*/RES* double verification, NAS
//! security mode, GUTI allocation, sequence-number re-synchronisation and
//! PDU session establishment.
//!
//! The sensitive AKA computations are *pluggable*: each of UDM, AUSF and
//! AMF delegates to a [`backend`] trait. The in-process implementations
//! here model the monolithic OAI deployment; the `shield5g-core` crate
//! provides the paper's extracted P-AKA microservice backends (container
//! and SGX-enclave deployments) behind the same traits, so the registration
//! flow is byte-identical across deployments — exactly the paper's §IV-B
//! design goal of not altering the regular UE registration flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amf;
pub mod ausf;
pub mod backend;
pub mod messages;
pub mod nas_security;
pub mod nrf;
pub mod sbi;
pub mod smf;
pub mod udm;
pub mod udr;
pub mod upf;

use shield5g_crypto::CryptoError;
use shield5g_sim::SimError;
use std::error::Error;
use std::fmt;

/// Canonical endpoint addresses on the OAI bridge.
pub mod addr {
    /// Network Repository Function.
    pub const NRF: &str = "nrf.oai";
    /// Unified Data Repository.
    pub const UDR: &str = "udr.oai";
    /// Unified Data Management.
    pub const UDM: &str = "udm.oai";
    /// Authentication Server Function.
    pub const AUSF: &str = "ausf.oai";
    /// Access and Mobility Management Function.
    pub const AMF: &str = "amf.oai";
    /// Session Management Function.
    pub const SMF: &str = "smf.oai";
    /// User Plane Function.
    pub const UPF: &str = "upf.oai";
}

/// 5G network function types (for NRF profiles).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum NfType {
    /// Network Repository Function.
    NRF,
    /// Unified Data Repository.
    UDR,
    /// Unified Data Management.
    UDM,
    /// Authentication Server Function.
    AUSF,
    /// Access and Mobility Management Function.
    AMF,
    /// Session Management Function.
    SMF,
    /// User Plane Function.
    UPF,
}

impl fmt::Display for NfType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Errors raised by network functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NfError {
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// A transport/bus failure.
    Sim(SimError),
    /// The subscriber is not provisioned.
    SubscriberUnknown(String),
    /// Authentication was rejected.
    AuthenticationRejected(String),
    /// A backend (P-AKA module) failure.
    Backend(String),
    /// Protocol violation (unexpected message or state).
    Protocol(String),
}

impl fmt::Display for NfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfError::Crypto(e) => write!(f, "crypto failure: {e}"),
            NfError::Sim(e) => write!(f, "transport failure: {e}"),
            NfError::SubscriberUnknown(s) => write!(f, "unknown subscriber {s}"),
            NfError::AuthenticationRejected(why) => write!(f, "authentication rejected: {why}"),
            NfError::Backend(why) => write!(f, "aka backend failure: {why}"),
            NfError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl Error for NfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NfError::Crypto(e) => Some(e),
            NfError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for NfError {
    fn from(e: CryptoError) -> Self {
        NfError::Crypto(e)
    }
}

impl From<SimError> for NfError {
    fn from(e: SimError) -> Self {
        NfError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = NfError::from(CryptoError::MacMismatch);
        assert!(e.to_string().contains("crypto"));
        assert!(Error::source(&e).is_some());
        assert!(NfError::SubscriberUnknown("imsi-1".into())
            .to_string()
            .contains("imsi-1"));
    }

    #[test]
    fn nf_type_display() {
        assert_eq!(NfType::AUSF.to_string(), "AUSF");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NfError>();
    }
}
