//! The Authentication Server Function.
//!
//! Receives authentication requests from the AMF/SEAF, obtains the HE AV
//! from the UDM, derives the SE AV parameters through its
//! [`AusfAkaBackend`] (the eAUSF P-AKA module in the paper's deployments),
//! stores XRES*/K_SEAF, and performs the final RES* confirmation
//! (TS 33.501 §6.1.3.2 step 10/11).

use crate::backend::{decode_he_av, AusfAkaBackend, AusfAkaRequest, BackendOp};
use crate::sbi::{
    AuthenticateRequest, AuthenticateResponse, ConfirmRequest, ConfirmResponse, ResyncRequest,
    SbiClient, UdmAuthGetRequest, UdmAuthGetResponse,
};
use crate::NfError;
use shield5g_crypto::keys::{HeAv, SeAv, ServingNetworkName};
use shield5g_crypto::secret::SecretBytes;
use shield5g_sim::engine::{EngineService, LegMeta, Step};
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::any::Any;
use std::collections::BTreeMap;

/// AUSF handler parsing/auth-service-authorisation overhead.
const AUSF_HANDLER_NANOS: u64 = 48_000;

/// Stored per pending authentication.
struct AuthContext {
    supi: String,
    xres_star: [u8; 16],
    kseaf: SecretBytes<32>,
}

/// The AUSF service.
pub struct AusfService {
    client: SbiClient,
    udm_addr: String,
    backend: Box<dyn AusfAkaBackend>,
    contexts: BTreeMap<u64, AuthContext>,
    next_ctx: u64,
}

impl std::fmt::Debug for AusfService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AusfService")
            .field("udm_addr", &self.udm_addr)
            .field("pending_contexts", &self.contexts.len())
            .finish()
    }
}

impl AusfService {
    /// Creates an AUSF talking to the UDM at `udm_addr`.
    #[must_use]
    pub fn new(
        client: SbiClient,
        udm_addr: impl Into<String>,
        backend: Box<dyn AusfAkaBackend>,
    ) -> Self {
        AusfService {
            client,
            udm_addr: udm_addr.into(),
            backend,
            contexts: BTreeMap::new(),
            next_ctx: 1,
        }
    }

    /// Pending authentication contexts (diagnostics).
    #[must_use]
    pub fn pending_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Error mapping shared by the authenticate and resync handler paths.
    fn upstream_error(e: NfError) -> HttpResponse {
        match e {
            NfError::Sim(shield5g_sim::SimError::ServiceFailure { status, .. }) => {
                HttpResponse::error(status, "upstream failure")
            }
            e => HttpResponse::error(400, e.to_string()),
        }
    }

    /// Issues the SE AV once XRES*/K_SEAF are known.
    fn finish_authenticate(
        &mut self,
        env: &mut Env,
        supi: String,
        he_av: &HeAv,
        hxres_star: [u8; 16],
        kseaf: SecretBytes<32>,
    ) -> Step {
        let ctx_id = self.next_ctx;
        self.next_ctx += 1;
        self.contexts.insert(
            ctx_id,
            AuthContext {
                supi,
                xres_star: he_av.xres_star,
                kseaf,
            },
        );
        shield5g_obs::hub::count(
            "ausf",
            "/nausf-auth/authenticate",
            shield5g_obs::labels::SE_AV_ISSUED,
            1,
        );
        env.log.record(
            env.clock.now(),
            "aka",
            format!("AUSF issued SE AV (ctx {ctx_id})"),
        );
        Step::Reply(HttpResponse::ok(
            AuthenticateResponse {
                auth_ctx_id: ctx_id,
                se_av: SeAv {
                    rand: he_av.rand,
                    autn: he_av.autn,
                    hxres_star,
                },
            }
            .encode(),
        ))
    }

    fn confirm(&mut self, env: &mut Env, req: &ConfirmRequest) -> Result<ConfirmResponse, NfError> {
        env.clock
            .advance(SimDuration::from_nanos(AUSF_HANDLER_NANOS / 2));
        let ctx = self.contexts.remove(&req.auth_ctx_id).ok_or_else(|| {
            NfError::Protocol(format!("unknown auth context {}", req.auth_ctx_id))
        })?;
        if shield5g_crypto::ct_eq(&ctx.xres_star, &req.res_star) {
            shield5g_obs::hub::count(
                "ausf",
                "/nausf-auth/confirm",
                shield5g_obs::labels::RES_STAR_CONFIRMED,
                1,
            );
            env.log.record(
                env.clock.now(),
                "aka",
                format!("AUSF confirmed RES* for {}", ctx.supi),
            );
            Ok(ConfirmResponse {
                success: true,
                supi: ctx.supi,
                kseaf: ctx.kseaf,
            })
        } else {
            shield5g_obs::hub::count(
                "ausf",
                "/nausf-auth/confirm",
                shield5g_obs::labels::RES_STAR_REJECTED,
                1,
            );
            env.log
                .record(env.clock.now(), "aka", "AUSF rejected RES*".to_string());
            Ok(ConfirmResponse {
                success: false,
                supi: String::new(),
                kseaf: SecretBytes::new([0; 32]),
            })
        }
    }
}

/// Continuation state across the AUSF's outbound round trips.
#[allow(clippy::enum_variant_names)] // every variant awaits a distinct peer
enum AusfFlow {
    /// Waiting on the UDM's HE AV.
    AwaitUdm { snn: ServingNetworkName },
    /// Waiting on the remote AKA module's SE parameters.
    AwaitSe {
        supi: String,
        he_av: HeAv,
        token: Box<dyn Any>,
    },
    /// Waiting on the UDM's resync acknowledgement.
    AwaitUdmResync,
}

impl EngineService for AusfService {
    fn start(&mut self, env: &mut Env, _leg: &LegMeta, req: HttpRequest) -> Step {
        match req.path.as_str() {
            "/nausf-auth/authenticate" => {
                env.clock
                    .advance(SimDuration::from_nanos(AUSF_HANDLER_NANOS));
                let decoded = match AuthenticateRequest::decode(&req.body) {
                    Ok(r) => r,
                    Err(e) => return Step::Reply(Self::upstream_error(e)),
                };
                // Forward to UDM for the HE AV.
                let udm_req = UdmAuthGetRequest {
                    identity: decoded.identity.clone(),
                    known_supi: decoded.known_supi.clone(),
                    snn_mcc: decoded.snn_mcc.clone(),
                    snn_mnc: decoded.snn_mnc.clone(),
                };
                let snn = ServingNetworkName::new(&decoded.snn_mcc, &decoded.snn_mnc);
                {
                    let req =
                        self.client
                            .send(env, "/nudm-ueau/generate-auth-data", udm_req.encode());
                    Step::CallOut {
                        dest: self.udm_addr.clone(),
                        req,
                        state: Box::new(AusfFlow::AwaitUdm { snn }),
                    }
                }
            }
            "/nausf-auth/confirm" => {
                match ConfirmRequest::decode(&req.body).and_then(|r| self.confirm(env, &r)) {
                    Ok(resp) => Step::Reply(HttpResponse::ok(resp.encode())),
                    Err(e) => Step::Reply(HttpResponse::error(400, e.to_string())),
                }
            }
            "/nausf-auth/resync" => {
                env.clock
                    .advance(SimDuration::from_nanos(AUSF_HANDLER_NANOS / 2));
                match ResyncRequest::decode(&req.body) {
                    Ok(decoded) => {
                        let req = self.client.send(env, "/nudm-ueau/resync", decoded.encode());
                        Step::CallOut {
                            dest: self.udm_addr.clone(),
                            req,
                            state: Box::new(AusfFlow::AwaitUdmResync),
                        }
                    }
                    Err(e) => Step::Reply(Self::upstream_error(e)),
                }
            }
            other => Step::Reply(HttpResponse::error(404, format!("no handler for {other}"))),
        }
    }

    fn resume(
        &mut self,
        env: &mut Env,
        _leg: &LegMeta,
        state: Box<dyn Any>,
        resp: HttpResponse,
    ) -> Step {
        let flow = match state.downcast::<AusfFlow>() {
            Ok(f) => *f,
            Err(_) => return Step::Reply(HttpResponse::error(500, "ausf: foreign state")),
        };
        match flow {
            AusfFlow::AwaitUdm { snn } => {
                let body = match self.client.receive(env, &self.udm_addr, resp) {
                    Ok(b) => b,
                    Err(e) => return Step::Reply(Self::upstream_error(e)),
                };
                let udm_resp = match UdmAuthGetResponse::decode(&body) {
                    Ok(r) => r,
                    Err(e) => return Step::Reply(Self::upstream_error(e)),
                };
                let he_av = match decode_he_av(&udm_resp.he_av) {
                    Ok(av) => av,
                    Err(e) => return Step::Reply(Self::upstream_error(e)),
                };
                // SE parameters via the (possibly enclave-hosted) backend.
                let aka_req = AusfAkaRequest {
                    rand: he_av.rand,
                    xres_star: he_av.xres_star,
                    kausf: he_av.kausf.clone(),
                    snn,
                };
                match self.backend.begin_derive_se(env, &aka_req) {
                    BackendOp::Done(Ok(se)) => self.finish_authenticate(
                        env,
                        udm_resp.supi,
                        &he_av,
                        se.hxres_star,
                        se.kseaf,
                    ),
                    BackendOp::Done(Err(e)) => Step::Reply(Self::upstream_error(e)),
                    BackendOp::Call { dest, req, token } => Step::CallOut {
                        dest,
                        req,
                        state: Box::new(AusfFlow::AwaitSe {
                            supi: udm_resp.supi,
                            he_av,
                            token,
                        }),
                    },
                }
            }
            AusfFlow::AwaitSe { supi, he_av, token } => {
                match self.backend.finish_derive_se(env, token, resp) {
                    Ok(se) => self.finish_authenticate(env, supi, &he_av, se.hxres_star, se.kseaf),
                    Err(e) => Step::Reply(Self::upstream_error(e)),
                }
            }
            AusfFlow::AwaitUdmResync => match self.client.receive(env, &self.udm_addr, resp) {
                Ok(_) => Step::Reply(HttpResponse::ok(Vec::new())),
                Err(e) => Step::Reply(Self::upstream_error(e)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LocalAusfAka, LocalUdmAka};
    use crate::messages::UeIdentity;
    use crate::udm::UdmService;
    use crate::udr::UdrService;
    use shield5g_crypto::ecies::HomeNetworkKeyPair;
    use shield5g_crypto::ident::Supi;
    use shield5g_crypto::keys::derive_hxres_star;
    use shield5g_crypto::milenage::Milenage;
    use shield5g_sim::engine::Engine;
    use shield5g_sim::service::service_handle;
    use std::cell::RefCell;
    use std::rc::Rc;

    const K: [u8; 16] = [0x46; 16];
    const OPC: [u8; 16] = [0xcd; 16];
    const SUPI: &str = "imsi-001010000000001";

    fn world() -> (Env, Engine, HomeNetworkKeyPair) {
        let mut env = Env::new(4);
        let mut engine = Engine::new();
        let mut udr = UdrService::new();
        udr.provision(SUPI, OPC, [0x80, 0]);
        engine.register(crate::addr::UDR, 4, Engine::leaf(service_handle(udr)));
        let hn = HomeNetworkKeyPair::from_private(1, env.rng.bytes());
        let mut udm_backend = LocalUdmAka::new();
        udm_backend.provision(SUPI, K);
        let udm = UdmService::new(
            hn.clone(),
            SbiClient::new(),
            crate::addr::UDR,
            Box::new(udm_backend),
        );
        engine.register(crate::addr::UDM, 4, Rc::new(RefCell::new(udm)));
        let ausf = AusfService::new(
            SbiClient::new(),
            crate::addr::UDM,
            Box::new(LocalAusfAka::new()),
        );
        engine.register(crate::addr::AUSF, 4, Rc::new(RefCell::new(ausf)));
        (env, engine, hn)
    }

    fn authenticate(
        env: &mut Env,
        engine: &mut Engine,
        hn: &HomeNetworkKeyPair,
    ) -> AuthenticateResponse {
        let supi = Supi::parse(SUPI).unwrap();
        let eph: [u8; 32] = env.rng.bytes();
        let suci = supi.conceal_profile_a(1, hn.public(), &eph);
        let req = AuthenticateRequest {
            identity: UeIdentity::Suci(suci),
            known_supi: String::new(),
            snn_mcc: "001".into(),
            snn_mnc: "01".into(),
        };
        let body = engine
            .dispatch_ok(
                env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/authenticate", req.encode()),
            )
            .unwrap()
            .body;
        AuthenticateResponse::decode(&body).unwrap()
    }

    /// The UE side of the challenge, straight from the crypto layer.
    fn ue_answer(rand: &[u8; 16], autn: &[u8; 16]) -> [u8; 16] {
        let mil = Milenage::with_opc(&K, &OPC);
        let snn = ServingNetworkName::new("001", "01");
        shield5g_crypto::keys::ue_process_challenge(&mil, rand, autn, &snn)
            .unwrap()
            .res_star
    }

    #[test]
    fn full_authenticate_confirm_round() {
        let (mut env, mut engine, hn) = world();
        let auth = authenticate(&mut env, &mut engine, &hn);
        // SEAF check: HXRES* must match the hash of the honest response.
        let res_star = ue_answer(&auth.se_av.rand, &auth.se_av.autn);
        assert_eq!(
            derive_hxres_star(&auth.se_av.rand, &res_star),
            auth.se_av.hxres_star
        );
        // Confirm with AUSF.
        let confirm = ConfirmRequest {
            auth_ctx_id: auth.auth_ctx_id,
            res_star,
        };
        let body = engine
            .dispatch_ok(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/confirm", confirm.encode()),
            )
            .unwrap()
            .body;
        let resp = ConfirmResponse::decode(&body).unwrap();
        assert!(resp.success);
        assert_eq!(resp.supi, SUPI);
        assert_ne!(resp.kseaf, [0; 32]);
    }

    #[test]
    fn wrong_res_star_rejected() {
        let (mut env, mut engine, hn) = world();
        let auth = authenticate(&mut env, &mut engine, &hn);
        let confirm = ConfirmRequest {
            auth_ctx_id: auth.auth_ctx_id,
            res_star: [0xEE; 16],
        };
        let body = engine
            .dispatch_ok(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/confirm", confirm.encode()),
            )
            .unwrap()
            .body;
        let resp = ConfirmResponse::decode(&body).unwrap();
        assert!(!resp.success);
        assert_eq!(
            resp.kseaf, [0; 32],
            "K_SEAF must not be released on failure"
        );
    }

    #[test]
    fn confirm_context_is_single_use() {
        let (mut env, mut engine, hn) = world();
        let auth = authenticate(&mut env, &mut engine, &hn);
        let res_star = ue_answer(&auth.se_av.rand, &auth.se_av.autn);
        let confirm = ConfirmRequest {
            auth_ctx_id: auth.auth_ctx_id,
            res_star,
        };
        engine
            .dispatch_ok(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/confirm", confirm.encode()),
            )
            .unwrap();
        // Second use of the same context fails.
        let resp = engine
            .dispatch(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/confirm", confirm.encode()),
            )
            .unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn distinct_authentications_get_distinct_challenges() {
        let (mut env, mut engine, hn) = world();
        let a1 = authenticate(&mut env, &mut engine, &hn);
        let a2 = authenticate(&mut env, &mut engine, &hn);
        assert_ne!(a1.se_av.rand, a2.se_av.rand);
        assert_ne!(a1.auth_ctx_id, a2.auth_ctx_id);
    }

    #[test]
    fn unknown_subscriber_propagates_404() {
        let (mut env, mut engine, hn) = world();
        let supi = Supi::new(shield5g_crypto::ident::Plmn::test_network(), "0000000042").unwrap();
        let suci = supi.conceal_profile_a(1, hn.public(), &[7; 32]);
        let req = AuthenticateRequest {
            identity: UeIdentity::Suci(suci),
            known_supi: String::new(),
            snn_mcc: "001".into(),
            snn_mnc: "01".into(),
        };
        let resp = engine
            .dispatch(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/authenticate", req.encode()),
            )
            .unwrap();
        assert_eq!(resp.status, 404);
    }
}
