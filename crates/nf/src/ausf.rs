//! The Authentication Server Function.
//!
//! Receives authentication requests from the AMF/SEAF, obtains the HE AV
//! from the UDM, derives the SE AV parameters through its
//! [`AusfAkaBackend`] (the eAUSF P-AKA module in the paper's deployments),
//! stores XRES*/K_SEAF, and performs the final RES* confirmation
//! (TS 33.501 §6.1.3.2 step 10/11).

use crate::backend::{decode_he_av, AusfAkaBackend, AusfAkaRequest};
use crate::sbi::{
    AuthenticateRequest, AuthenticateResponse, ConfirmRequest, ConfirmResponse, ResyncRequest,
    SbiClient, UdmAuthGetRequest, UdmAuthGetResponse,
};
use crate::NfError;
use shield5g_crypto::keys::{SeAv, ServingNetworkName};
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::service::Service;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::collections::HashMap;

/// AUSF handler parsing/auth-service-authorisation overhead.
const AUSF_HANDLER_NANOS: u64 = 48_000;

/// Stored per pending authentication.
struct AuthContext {
    supi: String,
    xres_star: [u8; 16],
    kseaf: [u8; 32],
}

/// The AUSF service.
pub struct AusfService {
    client: SbiClient,
    udm_addr: String,
    backend: Box<dyn AusfAkaBackend>,
    contexts: HashMap<u64, AuthContext>,
    next_ctx: u64,
}

impl std::fmt::Debug for AusfService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AusfService")
            .field("udm_addr", &self.udm_addr)
            .field("pending_contexts", &self.contexts.len())
            .finish()
    }
}

impl AusfService {
    /// Creates an AUSF talking to the UDM at `udm_addr`.
    #[must_use]
    pub fn new(
        client: SbiClient,
        udm_addr: impl Into<String>,
        backend: Box<dyn AusfAkaBackend>,
    ) -> Self {
        AusfService {
            client,
            udm_addr: udm_addr.into(),
            backend,
            contexts: HashMap::new(),
            next_ctx: 1,
        }
    }

    /// Pending authentication contexts (diagnostics).
    #[must_use]
    pub fn pending_contexts(&self) -> usize {
        self.contexts.len()
    }

    fn authenticate(
        &mut self,
        env: &mut Env,
        req: &AuthenticateRequest,
    ) -> Result<AuthenticateResponse, NfError> {
        env.clock
            .advance(SimDuration::from_nanos(AUSF_HANDLER_NANOS));
        // Forward to UDM for the HE AV.
        let udm_req = UdmAuthGetRequest {
            identity: req.identity.clone(),
            known_supi: req.known_supi.clone(),
            snn_mcc: req.snn_mcc.clone(),
            snn_mnc: req.snn_mnc.clone(),
        };
        let body = self.client.post(
            env,
            &self.udm_addr,
            "/nudm-ueau/generate-auth-data",
            udm_req.encode(),
        )?;
        let udm_resp = UdmAuthGetResponse::decode(&body)?;
        let he_av = decode_he_av(&udm_resp.he_av)?;

        // SE parameters via the (possibly enclave-hosted) backend.
        let snn = ServingNetworkName::new(&req.snn_mcc, &req.snn_mnc);
        let se = self.backend.derive_se(
            env,
            &AusfAkaRequest {
                rand: he_av.rand,
                xres_star: he_av.xres_star,
                kausf: he_av.kausf,
                snn,
            },
        )?;

        let ctx_id = self.next_ctx;
        self.next_ctx += 1;
        self.contexts.insert(
            ctx_id,
            AuthContext {
                supi: udm_resp.supi,
                xres_star: he_av.xres_star,
                kseaf: se.kseaf,
            },
        );
        env.log.record(
            env.clock.now(),
            "aka",
            format!("AUSF issued SE AV (ctx {ctx_id})"),
        );
        Ok(AuthenticateResponse {
            auth_ctx_id: ctx_id,
            se_av: SeAv {
                rand: he_av.rand,
                autn: he_av.autn,
                hxres_star: se.hxres_star,
            },
        })
    }

    fn confirm(&mut self, env: &mut Env, req: &ConfirmRequest) -> Result<ConfirmResponse, NfError> {
        env.clock
            .advance(SimDuration::from_nanos(AUSF_HANDLER_NANOS / 2));
        let ctx = self.contexts.remove(&req.auth_ctx_id).ok_or_else(|| {
            NfError::Protocol(format!("unknown auth context {}", req.auth_ctx_id))
        })?;
        if shield5g_crypto::ct_eq(&ctx.xres_star, &req.res_star) {
            env.log.record(
                env.clock.now(),
                "aka",
                format!("AUSF confirmed RES* for {}", ctx.supi),
            );
            Ok(ConfirmResponse {
                success: true,
                supi: ctx.supi,
                kseaf: ctx.kseaf,
            })
        } else {
            env.log
                .record(env.clock.now(), "aka", "AUSF rejected RES*".to_string());
            Ok(ConfirmResponse {
                success: false,
                supi: String::new(),
                kseaf: [0; 32],
            })
        }
    }

    fn resync(&mut self, env: &mut Env, req: &ResyncRequest) -> Result<(), NfError> {
        env.clock
            .advance(SimDuration::from_nanos(AUSF_HANDLER_NANOS / 2));
        self.client
            .post(env, &self.udm_addr, "/nudm-ueau/resync", req.encode())?;
        Ok(())
    }
}

impl Service for AusfService {
    fn handle(&mut self, env: &mut Env, req: HttpRequest) -> HttpResponse {
        match req.path.as_str() {
            "/nausf-auth/authenticate" => {
                match AuthenticateRequest::decode(&req.body)
                    .and_then(|r| self.authenticate(env, &r))
                {
                    Ok(resp) => HttpResponse::ok(resp.encode()),
                    Err(NfError::Sim(shield5g_sim::SimError::ServiceFailure {
                        status, ..
                    })) => HttpResponse::error(status, "upstream failure"),
                    Err(e) => HttpResponse::error(400, e.to_string()),
                }
            }
            "/nausf-auth/confirm" => {
                match ConfirmRequest::decode(&req.body).and_then(|r| self.confirm(env, &r)) {
                    Ok(resp) => HttpResponse::ok(resp.encode()),
                    Err(e) => HttpResponse::error(400, e.to_string()),
                }
            }
            "/nausf-auth/resync" => {
                match ResyncRequest::decode(&req.body).and_then(|r| self.resync(env, &r)) {
                    Ok(()) => HttpResponse::ok(Vec::new()),
                    Err(NfError::Sim(shield5g_sim::SimError::ServiceFailure {
                        status, ..
                    })) => HttpResponse::error(status, "upstream failure"),
                    Err(e) => HttpResponse::error(400, e.to_string()),
                }
            }
            other => HttpResponse::error(404, format!("no handler for {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LocalAusfAka, LocalUdmAka};
    use crate::messages::UeIdentity;
    use crate::udm::UdmService;
    use crate::udr::UdrService;
    use shield5g_crypto::ecies::HomeNetworkKeyPair;
    use shield5g_crypto::ident::Supi;
    use shield5g_crypto::keys::derive_hxres_star;
    use shield5g_crypto::milenage::Milenage;
    use shield5g_sim::service::{service_handle, Router};
    use std::cell::RefCell;
    use std::rc::Rc;

    const K: [u8; 16] = [0x46; 16];
    const OPC: [u8; 16] = [0xcd; 16];
    const SUPI: &str = "imsi-001010000000001";

    fn world() -> (Env, Rc<RefCell<Router>>, HomeNetworkKeyPair) {
        let mut env = Env::new(4);
        let router = Rc::new(RefCell::new(Router::new()));
        let mut udr = UdrService::new();
        udr.provision(SUPI, OPC, [0x80, 0]);
        router
            .borrow_mut()
            .register(crate::addr::UDR, service_handle(udr));
        let hn = HomeNetworkKeyPair::from_private(1, env.rng.bytes());
        let mut udm_backend = LocalUdmAka::new();
        udm_backend.provision(SUPI, K);
        let udm = UdmService::new(
            hn.clone(),
            SbiClient::new(router.clone()),
            crate::addr::UDR,
            Box::new(udm_backend),
        );
        router
            .borrow_mut()
            .register(crate::addr::UDM, service_handle(udm));
        let ausf = AusfService::new(
            SbiClient::new(router.clone()),
            crate::addr::UDM,
            Box::new(LocalAusfAka::new()),
        );
        router
            .borrow_mut()
            .register(crate::addr::AUSF, service_handle(ausf));
        (env, router, hn)
    }

    fn authenticate(
        env: &mut Env,
        router: &Rc<RefCell<Router>>,
        hn: &HomeNetworkKeyPair,
    ) -> AuthenticateResponse {
        let supi = Supi::parse(SUPI).unwrap();
        let eph: [u8; 32] = env.rng.bytes();
        let suci = supi.conceal_profile_a(1, hn.public(), &eph);
        let req = AuthenticateRequest {
            identity: UeIdentity::Suci(suci),
            known_supi: String::new(),
            snn_mcc: "001".into(),
            snn_mnc: "01".into(),
        };
        let body = {
            let r = router.borrow();
            r.call_ok(
                env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/authenticate", req.encode()),
            )
            .unwrap()
        };
        AuthenticateResponse::decode(&body).unwrap()
    }

    /// The UE side of the challenge, straight from the crypto layer.
    fn ue_answer(rand: &[u8; 16], autn: &[u8; 16]) -> [u8; 16] {
        let mil = Milenage::with_opc(&K, &OPC);
        let snn = ServingNetworkName::new("001", "01");
        shield5g_crypto::keys::ue_process_challenge(&mil, rand, autn, &snn)
            .unwrap()
            .res_star
    }

    #[test]
    fn full_authenticate_confirm_round() {
        let (mut env, router, hn) = world();
        let auth = authenticate(&mut env, &router, &hn);
        // SEAF check: HXRES* must match the hash of the honest response.
        let res_star = ue_answer(&auth.se_av.rand, &auth.se_av.autn);
        assert_eq!(
            derive_hxres_star(&auth.se_av.rand, &res_star),
            auth.se_av.hxres_star
        );
        // Confirm with AUSF.
        let confirm = ConfirmRequest {
            auth_ctx_id: auth.auth_ctx_id,
            res_star,
        };
        let body = {
            let r = router.borrow();
            r.call_ok(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/confirm", confirm.encode()),
            )
            .unwrap()
        };
        let resp = ConfirmResponse::decode(&body).unwrap();
        assert!(resp.success);
        assert_eq!(resp.supi, SUPI);
        assert_ne!(resp.kseaf, [0; 32]);
    }

    #[test]
    fn wrong_res_star_rejected() {
        let (mut env, router, hn) = world();
        let auth = authenticate(&mut env, &router, &hn);
        let confirm = ConfirmRequest {
            auth_ctx_id: auth.auth_ctx_id,
            res_star: [0xEE; 16],
        };
        let body = {
            let r = router.borrow();
            r.call_ok(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/confirm", confirm.encode()),
            )
            .unwrap()
        };
        let resp = ConfirmResponse::decode(&body).unwrap();
        assert!(!resp.success);
        assert_eq!(
            resp.kseaf, [0; 32],
            "K_SEAF must not be released on failure"
        );
    }

    #[test]
    fn confirm_context_is_single_use() {
        let (mut env, router, hn) = world();
        let auth = authenticate(&mut env, &router, &hn);
        let res_star = ue_answer(&auth.se_av.rand, &auth.se_av.autn);
        let confirm = ConfirmRequest {
            auth_ctx_id: auth.auth_ctx_id,
            res_star,
        };
        {
            let r = router.borrow();
            r.call_ok(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/confirm", confirm.encode()),
            )
            .unwrap();
            // Second use of the same context fails.
            let resp = r
                .call(
                    &mut env,
                    crate::addr::AUSF,
                    HttpRequest::post("/nausf-auth/confirm", confirm.encode()),
                )
                .unwrap();
            assert_eq!(resp.status, 400);
        }
    }

    #[test]
    fn distinct_authentications_get_distinct_challenges() {
        let (mut env, router, hn) = world();
        let a1 = authenticate(&mut env, &router, &hn);
        let a2 = authenticate(&mut env, &router, &hn);
        assert_ne!(a1.se_av.rand, a2.se_av.rand);
        assert_ne!(a1.auth_ctx_id, a2.auth_ctx_id);
    }

    #[test]
    fn unknown_subscriber_propagates_404() {
        let (mut env, router, hn) = world();
        let supi = Supi::new(shield5g_crypto::ident::Plmn::test_network(), "0000000042").unwrap();
        let suci = supi.conceal_profile_a(1, hn.public(), &[7; 32]);
        let req = AuthenticateRequest {
            identity: UeIdentity::Suci(suci),
            known_supi: String::new(),
            snn_mcc: "001".into(),
            snn_mnc: "01".into(),
        };
        let resp = {
            let r = router.borrow();
            r.call(
                &mut env,
                crate::addr::AUSF,
                HttpRequest::post("/nausf-auth/authenticate", req.encode()),
            )
            .unwrap()
        };
        assert_eq!(resp.status, 404);
    }
}
