//! The Unified Data Management function.
//!
//! Hosts the SIDF (SUCI de-concealment) and orchestrates HE-AV generation:
//! de-conceal → fetch subscription data from the UDR → draw RAND →
//! delegate the sensitive computation to its [`UdmAkaBackend`] (in-process
//! for the monolithic baseline, the eUDM P-AKA module in the paper's
//! deployments) → return SUPI + HE AV to the AUSF.

use crate::backend::{encode_he_av, BackendOp, UdmAkaBackend, UdmAkaRequest};
use crate::messages::UeIdentity;
use crate::sbi::{
    ResyncRequest, SbiClient, UdmAuthGetRequest, UdmAuthGetResponse, UdrAuthDataRequest,
    UdrAuthDataResponse, UdrResyncRequest,
};
use crate::NfError;
use shield5g_crypto::ecies::HomeNetworkKeyPair;
use shield5g_crypto::keys::ServingNetworkName;
use shield5g_sim::engine::{EngineService, LegMeta, Step};
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::any::Any;

/// ECIES Profile A de-concealment compute time (X25519 + KDF + AES-CTR on
/// the OAI C++ path).
const SIDF_DECONCEAL_NANOS: u64 = 210_000;
/// Request parsing/serialisation overhead of the UDM handler.
const UDM_HANDLER_NANOS: u64 = 55_000;

/// The UDM service.
pub struct UdmService {
    sidf_key: HomeNetworkKeyPair,
    client: SbiClient,
    udr_addr: String,
    backend: Box<dyn UdmAkaBackend>,
}

impl std::fmt::Debug for UdmService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdmService")
            .field("udr_addr", &self.udr_addr)
            .finish()
    }
}

impl UdmService {
    /// Creates a UDM with its home-network ECIES key and AKA backend.
    #[must_use]
    pub fn new(
        sidf_key: HomeNetworkKeyPair,
        client: SbiClient,
        udr_addr: impl Into<String>,
        backend: Box<dyn UdmAkaBackend>,
    ) -> Self {
        UdmService {
            sidf_key,
            client,
            udr_addr: udr_addr.into(),
            backend,
        }
    }

    /// The home-network public key USIMs must be provisioned with.
    #[must_use]
    pub fn hn_public_key(&self) -> &[u8; 32] {
        self.sidf_key.public()
    }

    /// The home-network key identifier.
    #[must_use]
    pub fn hn_key_id(&self) -> u8 {
        self.sidf_key.id()
    }

    fn resolve_supi(&mut self, env: &mut Env, req: &UdmAuthGetRequest) -> Result<String, NfError> {
        match &req.identity {
            UeIdentity::Suci(suci) => {
                env.clock
                    .advance(SimDuration::from_nanos(SIDF_DECONCEAL_NANOS));
                let supi = suci.deconceal(&self.sidf_key)?;
                Ok(supi.to_string())
            }
            UeIdentity::Guti(_) => {
                if req.known_supi.is_empty() {
                    Err(NfError::Protocol(
                        "GUTI identity without resolved SUPI".into(),
                    ))
                } else {
                    Ok(req.known_supi.clone())
                }
            }
        }
    }

    /// Error mapping of the auth-data handler path.
    fn auth_error(e: NfError) -> HttpResponse {
        match e {
            NfError::Sim(shield5g_sim::SimError::ServiceFailure { status: 404, .. }) => {
                HttpResponse::error(404, "subscriber not found")
            }
            NfError::SubscriberUnknown(s) => {
                HttpResponse::error(404, format!("unknown subscriber {s}"))
            }
            NfError::Crypto(e) => HttpResponse::error(403, e.to_string()),
            e => HttpResponse::error(400, e.to_string()),
        }
    }

    /// Error mapping of the resync handler path.
    fn resync_error(e: NfError) -> HttpResponse {
        match e {
            NfError::Crypto(e) => HttpResponse::error(403, e.to_string()),
            e => HttpResponse::error(400, e.to_string()),
        }
    }

    /// Issues the UDR subscription-data fetch shared by both flows.
    fn fetch_auth_data(&mut self, env: &mut Env, supi: &str, next: UdmFlow) -> Step {
        let req = self.client.send(
            env,
            "/nudr-dr/auth-data",
            UdrAuthDataRequest {
                supi: supi.to_owned(),
            }
            .encode(),
        );
        Step::CallOut {
            dest: self.udr_addr.clone(),
            req,
            state: Box::new(next),
        }
    }

    fn finish_av(&mut self, env: &mut Env, supi: String, av: &shield5g_crypto::keys::HeAv) -> Step {
        shield5g_obs::hub::count(
            "udm",
            "/nudm-ueau",
            shield5g_obs::labels::HE_AV_GENERATED,
            1,
        );
        env.log.record(
            env.clock.now(),
            "aka",
            format!("UDM generated HE AV for {supi}"),
        );
        Step::Reply(HttpResponse::ok(
            UdmAuthGetResponse {
                supi,
                he_av: encode_he_av(av),
            }
            .encode(),
        ))
    }

    /// After the subscription data arrives: draw RAND and delegate the
    /// sensitive computation to the backend.
    fn start_av(
        &mut self,
        env: &mut Env,
        req: &UdmAuthGetRequest,
        supi: String,
        body: &[u8],
    ) -> Step {
        let auth_data = match UdrAuthDataResponse::decode(body) {
            Ok(d) => d,
            Err(e) => return Step::Reply(Self::auth_error(e)),
        };
        // RAND is drawn in the UDM (paper Fig. 5: RAND is an *input* to
        // the eUDM P-AKA module).
        let rand: [u8; 16] = env.rng.bytes();
        let aka_req = UdmAkaRequest {
            supi: supi.clone(),
            opc: auth_data.opc,
            rand,
            sqn: auth_data.sqn,
            amf_field: auth_data.amf_field,
            snn: ServingNetworkName::new(&req.snn_mcc, &req.snn_mnc),
        };
        match self.backend.begin_generate_av(env, &aka_req) {
            BackendOp::Done(Ok(av)) => self.finish_av(env, supi, &av),
            BackendOp::Done(Err(e)) => Step::Reply(Self::auth_error(e)),
            BackendOp::Call { dest, req, token } => Step::CallOut {
                dest,
                req,
                state: Box::new(UdmFlow::AwaitAv { supi, token }),
            },
        }
    }

    /// After MAC-S checked out: push SQN_MS back to the UDR.
    fn push_resync(&mut self, env: &mut Env, supi: String, sqn_ms: [u8; 6]) -> Step {
        let req = self.client.send(
            env,
            "/nudr-dr/resync",
            UdrResyncRequest {
                supi: supi.clone(),
                sqn_ms,
            }
            .encode(),
        );
        Step::CallOut {
            dest: self.udr_addr.clone(),
            req,
            state: Box::new(UdmFlow::AwaitUdrResync { supi }),
        }
    }
}

/// Continuation state across the UDM's outbound round trips.
enum UdmFlow {
    /// Auth-data flow: waiting on the UDR subscription fetch.
    AwaitAuthData {
        req: UdmAuthGetRequest,
        supi: String,
    },
    /// Auth-data flow: waiting on the remote AKA module.
    AwaitAv { supi: String, token: Box<dyn Any> },
    /// Resync flow: waiting on the UDR subscription fetch (OPc for MAC-S).
    ResyncAuthData { req: ResyncRequest },
    /// Resync flow: waiting on the remote AKA module's AUTS verdict.
    AwaitModuleResync { supi: String, token: Box<dyn Any> },
    /// Resync flow: waiting on the UDR SQN update.
    AwaitUdrResync { supi: String },
}

impl EngineService for UdmService {
    fn start(&mut self, env: &mut Env, _leg: &LegMeta, req: HttpRequest) -> Step {
        match req.path.as_str() {
            "/nudm-ueau/generate-auth-data" => {
                env.clock
                    .advance(SimDuration::from_nanos(UDM_HANDLER_NANOS));
                let decoded = match UdmAuthGetRequest::decode(&req.body) {
                    Ok(r) => r,
                    Err(e) => return Step::Reply(Self::auth_error(e)),
                };
                let supi = match self.resolve_supi(env, &decoded) {
                    Ok(s) => s,
                    Err(e) => return Step::Reply(Self::auth_error(e)),
                };
                // Fetch OPc / fresh SQN / AMF field from the UDR.
                self.fetch_auth_data(
                    env,
                    &supi.clone(),
                    UdmFlow::AwaitAuthData { req: decoded, supi },
                )
            }
            "/nudm-ueau/resync" => {
                env.clock
                    .advance(SimDuration::from_nanos(UDM_HANDLER_NANOS));
                let decoded = match ResyncRequest::decode(&req.body) {
                    Ok(r) => r,
                    Err(e) => return Step::Reply(Self::resync_error(e)),
                };
                // Need the OPc to check MAC-S; fetch subscription data
                // (the extra SQN this burns is inconsequential).
                let supi = decoded.supi.clone();
                self.fetch_auth_data(env, &supi, UdmFlow::ResyncAuthData { req: decoded })
            }
            other => Step::Reply(HttpResponse::error(404, format!("no handler for {other}"))),
        }
    }

    fn resume(
        &mut self,
        env: &mut Env,
        _leg: &LegMeta,
        state: Box<dyn Any>,
        resp: HttpResponse,
    ) -> Step {
        let flow = match state.downcast::<UdmFlow>() {
            Ok(f) => *f,
            Err(_) => return Step::Reply(HttpResponse::error(500, "udm: foreign state")),
        };
        match flow {
            UdmFlow::AwaitAuthData { req, supi } => {
                let body = match self.client.receive(env, &self.udr_addr, resp) {
                    Ok(b) => b,
                    Err(e) => return Step::Reply(Self::auth_error(e)),
                };
                self.start_av(env, &req, supi, &body)
            }
            UdmFlow::AwaitAv { supi, token } => {
                match self.backend.finish_generate_av(env, token, resp) {
                    Ok(av) => self.finish_av(env, supi, &av),
                    Err(e) => Step::Reply(Self::auth_error(e)),
                }
            }
            UdmFlow::ResyncAuthData { req } => {
                let body = match self.client.receive(env, &self.udr_addr, resp) {
                    Ok(b) => b,
                    Err(e) => return Step::Reply(Self::resync_error(e)),
                };
                let auth_data = match UdrAuthDataResponse::decode(&body) {
                    Ok(d) => d,
                    Err(e) => return Step::Reply(Self::resync_error(e)),
                };
                let supi = req.supi.clone();
                match self.backend.begin_resynchronise(
                    env,
                    &req.supi,
                    auth_data.opc.expose(),
                    &req.rand,
                    &req.auts,
                ) {
                    BackendOp::Done(Ok(sqn_ms)) => self.push_resync(env, supi, sqn_ms),
                    BackendOp::Done(Err(e)) => Step::Reply(Self::resync_error(e)),
                    BackendOp::Call { dest, req, token } => Step::CallOut {
                        dest,
                        req,
                        state: Box::new(UdmFlow::AwaitModuleResync { supi, token }),
                    },
                }
            }
            UdmFlow::AwaitModuleResync { supi, token } => {
                match self.backend.finish_resynchronise(env, token, resp) {
                    Ok(sqn_ms) => self.push_resync(env, supi, sqn_ms),
                    Err(e) => Step::Reply(Self::resync_error(e)),
                }
            }
            UdmFlow::AwaitUdrResync { supi } => {
                match self.client.receive(env, &self.udr_addr, resp) {
                    Ok(_) => {
                        env.log.record(
                            env.clock.now(),
                            "aka",
                            format!("UDM re-synchronised SQN for {supi}"),
                        );
                        Step::Reply(HttpResponse::ok(Vec::new()))
                    }
                    Err(e) => Step::Reply(Self::resync_error(e)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{decode_he_av, LocalUdmAka};
    use crate::udr::UdrService;
    use shield5g_crypto::ident::{Plmn, Supi};
    use shield5g_crypto::milenage::Milenage;
    use shield5g_sim::engine::Engine;
    use shield5g_sim::service::service_handle;
    use std::cell::RefCell;
    use std::rc::Rc;

    const K: [u8; 16] = [0x46; 16];
    const OPC: [u8; 16] = [0xcd; 16];
    const SUPI: &str = "imsi-001010000000001";

    fn world() -> (Env, Engine, HomeNetworkKeyPair) {
        let mut env = Env::new(3);
        let mut engine = Engine::new();
        let mut udr = UdrService::new();
        udr.provision(SUPI, OPC, [0x80, 0]);
        engine.register(crate::addr::UDR, 4, Engine::leaf(service_handle(udr)));
        let hn = HomeNetworkKeyPair::from_private(1, env.rng.bytes());
        let mut backend = LocalUdmAka::new();
        backend.provision(SUPI, K);
        let udm = UdmService::new(
            hn.clone(),
            SbiClient::new(),
            crate::addr::UDR,
            Box::new(backend),
        );
        engine.register(crate::addr::UDM, 4, Rc::new(RefCell::new(udm)));
        (env, engine, hn)
    }

    fn auth_get(identity: UeIdentity) -> Vec<u8> {
        UdmAuthGetRequest {
            identity,
            known_supi: String::new(),
            snn_mcc: "001".into(),
            snn_mnc: "01".into(),
        }
        .encode()
    }

    #[test]
    fn generates_av_from_profile_a_suci() {
        let (mut env, mut engine, hn) = world();
        let supi = Supi::parse(SUPI).unwrap();
        let eph: [u8; 32] = env.rng.bytes();
        let suci = supi.conceal_profile_a(1, hn.public(), &eph);
        let body = engine
            .dispatch_ok(
                &mut env,
                crate::addr::UDM,
                HttpRequest::post(
                    "/nudm-ueau/generate-auth-data",
                    auth_get(UeIdentity::Suci(suci)),
                ),
            )
            .unwrap()
            .body;
        let resp = UdmAuthGetResponse::decode(&body).unwrap();
        assert_eq!(resp.supi, SUPI);
        // The AV verifies on a USIM with the same credentials.
        let av = decode_he_av(&resp.he_av).unwrap();
        let mil = Milenage::with_opc(&K, &OPC);
        let snn = ServingNetworkName::new("001", "01");
        let ue =
            shield5g_crypto::keys::ue_process_challenge(&mil, &av.rand, &av.autn, &snn).unwrap();
        assert_eq!(ue.res_star, av.xres_star);
    }

    #[test]
    fn unknown_subscriber_suci_is_404() {
        let (mut env, mut engine, hn) = world();
        let supi = Supi::new(Plmn::test_network(), "0000000099").unwrap();
        let suci = supi.conceal_profile_a(1, hn.public(), &[9; 32]);
        let resp = engine
            .dispatch(
                &mut env,
                crate::addr::UDM,
                HttpRequest::post(
                    "/nudm-ueau/generate-auth-data",
                    auth_get(UeIdentity::Suci(suci)),
                ),
            )
            .unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn tampered_suci_rejected_403() {
        let (mut env, mut engine, hn) = world();
        let supi = Supi::parse(SUPI).unwrap();
        let mut suci = supi.conceal_profile_a(1, hn.public(), &[9; 32]);
        let n = suci.scheme_output.len();
        suci.scheme_output[n - 1] ^= 1; // corrupt the MAC
        let resp = engine
            .dispatch(
                &mut env,
                crate::addr::UDM,
                HttpRequest::post(
                    "/nudm-ueau/generate-auth-data",
                    auth_get(UeIdentity::Suci(suci)),
                ),
            )
            .unwrap();
        assert_eq!(resp.status, 403);
    }

    #[test]
    fn guti_identity_requires_known_supi() {
        let (mut env, mut engine, _hn) = world();
        let req = UdmAuthGetRequest {
            identity: UeIdentity::Guti(shield5g_crypto::ident::Guti::new(1, 1, 1, 1)),
            known_supi: String::new(),
            snn_mcc: "001".into(),
            snn_mnc: "01".into(),
        };
        let resp = engine
            .dispatch(
                &mut env,
                crate::addr::UDM,
                HttpRequest::post("/nudm-ueau/generate-auth-data", req.encode()),
            )
            .unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn guti_identity_with_known_supi_works() {
        let (mut env, mut engine, _hn) = world();
        let req = UdmAuthGetRequest {
            identity: UeIdentity::Guti(shield5g_crypto::ident::Guti::new(1, 1, 1, 1)),
            known_supi: SUPI.into(),
            snn_mcc: "001".into(),
            snn_mnc: "01".into(),
        };
        let body = engine
            .dispatch_ok(
                &mut env,
                crate::addr::UDM,
                HttpRequest::post("/nudm-ueau/generate-auth-data", req.encode()),
            )
            .unwrap()
            .body;
        assert_eq!(UdmAuthGetResponse::decode(&body).unwrap().supi, SUPI);
    }

    #[test]
    fn resync_flow_updates_udr() {
        let (mut env, mut engine, _hn) = world();
        let mil = Milenage::with_opc(&K, &OPC);
        let rand = [0x23; 16];
        let sqn_ms = shield5g_crypto::sqn::sqn_to_bytes(700 << 5);
        let auts = shield5g_crypto::sqn::Auts::generate(&mil, &rand, &sqn_ms);
        let req = ResyncRequest {
            supi: SUPI.into(),
            rand,
            auts,
        };
        let resp = engine
            .dispatch(
                &mut env,
                crate::addr::UDM,
                HttpRequest::post("/nudm-ueau/resync", req.encode()),
            )
            .unwrap();
        assert!(
            resp.is_success(),
            "resync failed: {:?}",
            String::from_utf8_lossy(&resp.body)
        );
    }

    #[test]
    fn forged_auts_rejected() {
        let (mut env, mut engine, _hn) = world();
        let req = ResyncRequest {
            supi: SUPI.into(),
            rand: [0x23; 16],
            auts: shield5g_crypto::sqn::Auts {
                sqn_ms_xor_ak: [1; 6],
                mac_s: [2; 8],
            },
        };
        let resp = engine
            .dispatch(
                &mut env,
                crate::addr::UDM,
                HttpRequest::post("/nudm-ueau/resync", req.encode()),
            )
            .unwrap();
        assert_eq!(resp.status, 403);
    }
}
