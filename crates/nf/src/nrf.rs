//! The Network Repository Function: NF profile registry and discovery
//! (paper Fig. 2: "stores metadata for each VNF and orchestrates mutual
//! discovery procedures between them").

use crate::{NfError, NfType};
use shield5g_sim::codec::{Reader, Writer};
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::service::Service;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::collections::BTreeMap;

/// A registered NF profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NfProfile {
    /// The function type.
    pub nf_type: NfType,
    /// Bus address of the instance.
    pub addr: String,
}

impl NfProfile {
    /// Encodes to SBI body bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.nf_type.to_string()).put_str(&self.addr);
        w.into_bytes()
    }

    /// Decodes SBI body bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NfError::Protocol`] for unknown NF types and
    /// [`NfError::Sim`] on framing violations.
    pub fn decode(bytes: &[u8]) -> Result<Self, NfError> {
        let mut r = Reader::new(bytes);
        let type_str = r.str()?;
        let addr = r.str()?;
        r.finish()?;
        let nf_type = match type_str.as_str() {
            "NRF" => NfType::NRF,
            "UDR" => NfType::UDR,
            "UDM" => NfType::UDM,
            "AUSF" => NfType::AUSF,
            "AMF" => NfType::AMF,
            "SMF" => NfType::SMF,
            "UPF" => NfType::UPF,
            other => return Err(NfError::Protocol(format!("unknown NF type {other:?}"))),
        };
        Ok(NfProfile { nf_type, addr })
    }
}

/// The NRF service.
#[derive(Debug, Default)]
pub struct NrfService {
    profiles: BTreeMap<String, NfProfile>,
}

impl NrfService {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registered profiles, sorted by address.
    #[must_use]
    pub fn profiles(&self) -> Vec<NfProfile> {
        self.profiles.values().cloned().collect()
    }

    /// First registered instance of `nf_type`.
    #[must_use]
    pub fn discover(&self, nf_type: NfType) -> Option<&NfProfile> {
        self.profiles.values().find(|p| p.nf_type == nf_type)
    }
}

impl Service for NrfService {
    fn handle(&mut self, env: &mut Env, req: HttpRequest) -> HttpResponse {
        env.clock.advance(SimDuration::from_micros(18)); // registry lookup path
        match req.path.as_str() {
            "/nnrf-nfm/register" => match NfProfile::decode(&req.body) {
                Ok(profile) => {
                    env.log.record(
                        env.clock.now(),
                        "nrf",
                        format!("registered {} at {}", profile.nf_type, profile.addr),
                    );
                    self.profiles.insert(profile.addr.clone(), profile);
                    HttpResponse::ok(Vec::new())
                }
                Err(e) => HttpResponse::error(400, e.to_string()),
            },
            "/nnrf-disc/search" => {
                let wanted = String::from_utf8_lossy(&req.body).to_string();
                match self
                    .profiles
                    .values()
                    .find(|p| p.nf_type.to_string() == wanted)
                {
                    Some(p) => HttpResponse::ok(p.addr.clone().into_bytes()),
                    None => HttpResponse::error(404, format!("no {wanted} registered")),
                }
            }
            other => HttpResponse::error(404, format!("no handler for {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_discover() {
        let mut env = Env::new(1);
        let mut nrf = NrfService::new();
        let profile = NfProfile {
            nf_type: NfType::AUSF,
            addr: "ausf.oai".into(),
        };
        let resp = nrf.handle(
            &mut env,
            HttpRequest::post("/nnrf-nfm/register", profile.encode()),
        );
        assert!(resp.is_success());
        let resp = nrf.handle(
            &mut env,
            HttpRequest::post("/nnrf-disc/search", b"AUSF".to_vec()),
        );
        assert_eq!(resp.body, b"ausf.oai");
        assert_eq!(nrf.discover(NfType::AUSF).unwrap().addr, "ausf.oai");
    }

    #[test]
    fn discovery_miss_is_404() {
        let mut env = Env::new(1);
        let mut nrf = NrfService::new();
        let resp = nrf.handle(
            &mut env,
            HttpRequest::post("/nnrf-disc/search", b"UDM".to_vec()),
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn malformed_registration_is_400() {
        let mut env = Env::new(1);
        let mut nrf = NrfService::new();
        let resp = nrf.handle(
            &mut env,
            HttpRequest::post("/nnrf-nfm/register", vec![0xff]),
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn profile_round_trip_all_types() {
        for t in [
            NfType::NRF,
            NfType::UDR,
            NfType::UDM,
            NfType::AUSF,
            NfType::AMF,
            NfType::SMF,
            NfType::UPF,
        ] {
            let p = NfProfile {
                nf_type: t,
                addr: format!("{t}.oai").to_lowercase(),
            };
            assert_eq!(NfProfile::decode(&p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn unknown_path_is_404() {
        let mut env = Env::new(1);
        let mut nrf = NrfService::new();
        assert_eq!(nrf.handle(&mut env, HttpRequest::get("/nope")).status, 404);
    }
}
