//! NAS and NGAP message types with explicit wire encodings.
//!
//! NAS (Non-Access Stratum) messages travel UE ↔ AMF through the gNB;
//! NGAP wraps them on the N2 interface. Encodings use the byte codec so
//! every message has a definite wire size — the radio and backhaul
//! latency models charge per byte.

use shield5g_crypto::ident::{Guti, Plmn, ProtectionScheme, Suci};
use shield5g_crypto::sqn::Auts;
use shield5g_sim::codec::{Reader, Writer};
use shield5g_sim::SimError;

/// How the UE identifies itself in a registration request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UeIdentity {
    /// Concealed permanent identifier (initial registration).
    Suci(Suci),
    /// Temporary identifier from a previous registration.
    Guti(Guti),
}

/// NAS uplink messages (UE → AMF).
#[derive(Clone, Debug, PartialEq)]
pub enum NasUplink {
    /// Registration request with the UE's identity.
    RegistrationRequest {
        /// SUCI or GUTI.
        identity: UeIdentity,
    },
    /// RES* answer to an authentication challenge.
    AuthenticationResponse {
        /// The UE-computed RES*.
        res_star: [u8; 16],
    },
    /// Authentication failure indication.
    AuthenticationFailure {
        /// Why the UE rejected the challenge.
        cause: AuthFailureCause,
    },
    /// Acknowledgement of the security mode command (integrity protected).
    SecurityModeComplete,
    /// Final registration acknowledgement.
    RegistrationComplete,
    /// Request for a data session.
    PduSessionEstablishmentRequest {
        /// UE-chosen session identity (1..15).
        pdu_session_id: u8,
    },
    /// Identity response: the concealed permanent identity, sent when the
    /// network cannot resolve a temporary one (TS 24.501 §5.4.3).
    IdentityResponse {
        /// Fresh SUCI.
        suci: Suci,
    },
    /// UE-initiated deregistration (TS 24.501 §5.5.2).
    DeregistrationRequest {
        /// True when the UE is powering off (no accept expected OTA; the
        /// simulator still responds for its synchronous exchange).
        switch_off: bool,
    },
}

/// Why a UE refused an authentication challenge (TS 24.501 §9.11.3.14).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthFailureCause {
    /// MAC-A verification failed: the network is not genuine.
    MacFailure,
    /// SQN out of range: re-synchronisation required, AUTS attached.
    SynchFailure(Auts),
}

/// NAS downlink messages (AMF → UE).
#[derive(Clone, Debug, PartialEq)]
pub enum NasDownlink {
    /// The 5G-AKA challenge.
    AuthenticationRequest {
        /// Network challenge.
        rand: [u8; 16],
        /// Authentication token.
        autn: [u8; 16],
        /// Anti-bidding-down byte string.
        abba: [u8; 2],
        /// Key set identifier.
        ngksi: u8,
    },
    /// Authentication rejected by the network.
    AuthenticationReject,
    /// Activate NAS security (integrity protected with the new context).
    SecurityModeCommand {
        /// Selected integrity algorithm identifier.
        integrity_alg: u8,
        /// Selected ciphering algorithm identifier.
        ciphering_alg: u8,
    },
    /// Registration accepted; carries the assigned GUTI.
    RegistrationAccept {
        /// The temporary identity for subsequent contacts.
        guti: Guti,
    },
    /// Registration rejected.
    RegistrationReject {
        /// 5GMM cause value.
        cause: u8,
    },
    /// Data session accepted.
    PduSessionEstablishmentAccept {
        /// Session identity echoed back.
        pdu_session_id: u8,
        /// Assigned UE IPv4 address.
        ue_ip: [u8; 4],
    },
    /// Deregistration acknowledged; the GUTI is invalid from here on.
    DeregistrationAccept,
    /// The network asks the UE for its (concealed) permanent identity.
    IdentityRequest,
}

impl NasUplink {
    /// Encodes to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            NasUplink::RegistrationRequest { identity } => {
                w.put_u8(0x41);
                match identity {
                    UeIdentity::Suci(suci) => {
                        w.put_u8(0);
                        w.put_str(suci.plmn.mcc());
                        w.put_str(suci.plmn.mnc());
                        w.put_u16(suci.routing_indicator);
                        w.put_u8(suci.scheme.id());
                        w.put_u8(suci.hn_key_id);
                        w.put_bytes(&suci.scheme_output);
                    }
                    UeIdentity::Guti(guti) => {
                        w.put_u8(1);
                        w.put_u8(guti.amf_region_id);
                        w.put_u16(guti.amf_set_id);
                        w.put_u8(guti.amf_pointer);
                        w.put_u32(guti.tmsi);
                    }
                }
            }
            NasUplink::AuthenticationResponse { res_star } => {
                w.put_u8(0x57);
                w.put_array(res_star);
            }
            NasUplink::AuthenticationFailure { cause } => {
                w.put_u8(0x59);
                match cause {
                    AuthFailureCause::MacFailure => {
                        w.put_u8(20);
                    }
                    AuthFailureCause::SynchFailure(auts) => {
                        w.put_u8(21);
                        w.put_array(&auts.sqn_ms_xor_ak);
                        w.put_array(&auts.mac_s);
                    }
                }
            }
            NasUplink::SecurityModeComplete => {
                w.put_u8(0x5e);
            }
            NasUplink::RegistrationComplete => {
                w.put_u8(0x43);
            }
            NasUplink::PduSessionEstablishmentRequest { pdu_session_id } => {
                w.put_u8(0xc1);
                w.put_u8(*pdu_session_id);
            }
            NasUplink::DeregistrationRequest { switch_off } => {
                w.put_u8(0x45);
                w.put_bool(*switch_off);
            }
            NasUplink::IdentityResponse { suci } => {
                w.put_u8(0x5c);
                w.put_str(suci.plmn.mcc());
                w.put_str(suci.plmn.mnc());
                w.put_u16(suci.routing_indicator);
                w.put_u8(suci.scheme.id());
                w.put_u8(suci.hn_key_id);
                w.put_bytes(&suci.scheme_output);
            }
        }
        w.into_bytes()
    }

    /// Decodes wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedHttp`] on framing violations or an
    /// unknown message type.
    pub fn decode(bytes: &[u8]) -> Result<Self, SimError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            0x41 => match r.u8()? {
                0 => {
                    let mcc = r.str()?;
                    let mnc = r.str()?;
                    let routing_indicator = r.u16()?;
                    let scheme = ProtectionScheme::from_id(r.u8()?)
                        .map_err(|e| SimError::MalformedHttp(e.to_string()))?;
                    let hn_key_id = r.u8()?;
                    let scheme_output = r.bytes()?;
                    let plmn = Plmn::new(&mcc, &mnc)
                        .map_err(|e| SimError::MalformedHttp(e.to_string()))?;
                    NasUplink::RegistrationRequest {
                        identity: UeIdentity::Suci(Suci {
                            plmn,
                            routing_indicator,
                            scheme,
                            hn_key_id,
                            scheme_output,
                        }),
                    }
                }
                1 => NasUplink::RegistrationRequest {
                    identity: UeIdentity::Guti(Guti::new(r.u8()?, r.u16()?, r.u8()?, r.u32()?)),
                },
                other => {
                    return Err(SimError::MalformedHttp(format!(
                        "bad identity discriminant {other}"
                    )))
                }
            },
            0x57 => NasUplink::AuthenticationResponse {
                res_star: r.array()?,
            },
            0x59 => match r.u8()? {
                20 => NasUplink::AuthenticationFailure {
                    cause: AuthFailureCause::MacFailure,
                },
                21 => NasUplink::AuthenticationFailure {
                    cause: AuthFailureCause::SynchFailure(Auts {
                        sqn_ms_xor_ak: r.array()?,
                        mac_s: r.array()?,
                    }),
                },
                other => {
                    return Err(SimError::MalformedHttp(format!(
                        "bad failure cause {other}"
                    )))
                }
            },
            0x5e => NasUplink::SecurityModeComplete,
            0x43 => NasUplink::RegistrationComplete,
            0xc1 => NasUplink::PduSessionEstablishmentRequest {
                pdu_session_id: r.u8()?,
            },
            0x45 => NasUplink::DeregistrationRequest {
                switch_off: r.bool()?,
            },
            0x5c => {
                let mcc = r.str()?;
                let mnc = r.str()?;
                let routing_indicator = r.u16()?;
                let scheme = ProtectionScheme::from_id(r.u8()?)
                    .map_err(|e| SimError::MalformedHttp(e.to_string()))?;
                let hn_key_id = r.u8()?;
                let scheme_output = r.bytes()?;
                NasUplink::IdentityResponse {
                    suci: Suci {
                        plmn: Plmn::new(&mcc, &mnc)
                            .map_err(|e| SimError::MalformedHttp(e.to_string()))?,
                        routing_indicator,
                        scheme,
                        hn_key_id,
                        scheme_output,
                    },
                }
            }
            other => {
                return Err(SimError::MalformedHttp(format!(
                    "unknown NAS uplink type {other:#x}"
                )))
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

impl NasDownlink {
    /// Encodes to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            NasDownlink::AuthenticationRequest {
                rand,
                autn,
                abba,
                ngksi,
            } => {
                w.put_u8(0x56);
                w.put_array(rand);
                w.put_array(autn);
                w.put_array(abba);
                w.put_u8(*ngksi);
            }
            NasDownlink::AuthenticationReject => {
                w.put_u8(0x58);
            }
            NasDownlink::SecurityModeCommand {
                integrity_alg,
                ciphering_alg,
            } => {
                w.put_u8(0x5d);
                w.put_u8(*integrity_alg);
                w.put_u8(*ciphering_alg);
            }
            NasDownlink::RegistrationAccept { guti } => {
                w.put_u8(0x42);
                w.put_u8(guti.amf_region_id);
                w.put_u16(guti.amf_set_id);
                w.put_u8(guti.amf_pointer);
                w.put_u32(guti.tmsi);
            }
            NasDownlink::RegistrationReject { cause } => {
                w.put_u8(0x44);
                w.put_u8(*cause);
            }
            NasDownlink::PduSessionEstablishmentAccept {
                pdu_session_id,
                ue_ip,
            } => {
                w.put_u8(0xc2);
                w.put_u8(*pdu_session_id);
                w.put_array(ue_ip);
            }
            NasDownlink::DeregistrationAccept => {
                w.put_u8(0x46);
            }
            NasDownlink::IdentityRequest => {
                w.put_u8(0x5b);
            }
        }
        w.into_bytes()
    }

    /// Decodes wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedHttp`] on framing violations or an
    /// unknown message type.
    pub fn decode(bytes: &[u8]) -> Result<Self, SimError> {
        let mut r = Reader::new(bytes);
        let msg = match r.u8()? {
            0x56 => NasDownlink::AuthenticationRequest {
                rand: r.array()?,
                autn: r.array()?,
                abba: r.array()?,
                ngksi: r.u8()?,
            },
            0x58 => NasDownlink::AuthenticationReject,
            0x5d => NasDownlink::SecurityModeCommand {
                integrity_alg: r.u8()?,
                ciphering_alg: r.u8()?,
            },
            0x42 => NasDownlink::RegistrationAccept {
                guti: Guti::new(r.u8()?, r.u16()?, r.u8()?, r.u32()?),
            },
            0x44 => NasDownlink::RegistrationReject { cause: r.u8()? },
            0xc2 => NasDownlink::PduSessionEstablishmentAccept {
                pdu_session_id: r.u8()?,
                ue_ip: r.array()?,
            },
            0x46 => NasDownlink::DeregistrationAccept,
            0x5b => NasDownlink::IdentityRequest,
            other => {
                return Err(SimError::MalformedHttp(format!(
                    "unknown NAS downlink type {other:#x}"
                )))
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

/// NGAP messages on N2 (gNB ↔ AMF). NAS payloads are carried opaque —
/// and, after security mode, ciphered — exactly as real NGAP does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ngap {
    /// First uplink NAS from a UE: establishes the UE-association.
    InitialUeMessage {
        /// gNB-assigned RAN UE identifier.
        ran_ue_id: u64,
        /// Encoded (possibly protected) NAS payload.
        nas: Vec<u8>,
    },
    /// Subsequent uplink NAS.
    UplinkNasTransport {
        /// gNB-assigned RAN UE identifier.
        ran_ue_id: u64,
        /// Encoded NAS payload.
        nas: Vec<u8>,
    },
    /// Downlink NAS to the UE.
    DownlinkNasTransport {
        /// gNB-assigned RAN UE identifier.
        ran_ue_id: u64,
        /// Encoded NAS payload.
        nas: Vec<u8>,
    },
    /// Context setup carrying user-plane tunnel information alongside a
    /// NAS payload (PDU session resource setup).
    InitialContextSetup {
        /// gNB-assigned RAN UE identifier.
        ran_ue_id: u64,
        /// Encoded NAS payload.
        nas: Vec<u8>,
        /// UPF tunnel endpoint for the session (0 when none).
        teid: u32,
    },
}

impl Ngap {
    /// Encodes to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let (tag, ran_ue_id, nas, teid) = match self {
            Ngap::InitialUeMessage { ran_ue_id, nas } => (1u8, ran_ue_id, nas, 0),
            Ngap::UplinkNasTransport { ran_ue_id, nas } => (2, ran_ue_id, nas, 0),
            Ngap::DownlinkNasTransport { ran_ue_id, nas } => (3, ran_ue_id, nas, 0),
            Ngap::InitialContextSetup {
                ran_ue_id,
                nas,
                teid,
            } => (4, ran_ue_id, nas, *teid),
        };
        w.put_u8(tag).put_u64(*ran_ue_id).put_bytes(nas);
        if tag == 4 {
            w.put_u32(teid);
        }
        w.into_bytes()
    }

    /// Decodes wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedHttp`] on framing violations.
    pub fn decode(bytes: &[u8]) -> Result<Self, SimError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let ran_ue_id = r.u64()?;
        let nas = r.bytes()?;
        let msg = match tag {
            1 => Ngap::InitialUeMessage { ran_ue_id, nas },
            2 => Ngap::UplinkNasTransport { ran_ue_id, nas },
            3 => Ngap::DownlinkNasTransport { ran_ue_id, nas },
            4 => Ngap::InitialContextSetup {
                ran_ue_id,
                nas,
                teid: r.u32()?,
            },
            other => return Err(SimError::MalformedHttp(format!("unknown NGAP tag {other}"))),
        };
        r.finish()?;
        Ok(msg)
    }

    /// The carried NAS payload.
    #[must_use]
    pub fn nas(&self) -> &[u8] {
        match self {
            Ngap::InitialUeMessage { nas, .. }
            | Ngap::UplinkNasTransport { nas, .. }
            | Ngap::DownlinkNasTransport { nas, .. }
            | Ngap::InitialContextSetup { nas, .. } => nas,
        }
    }

    /// The RAN UE identifier.
    #[must_use]
    pub fn ran_ue_id(&self) -> u64 {
        match self {
            Ngap::InitialUeMessage { ran_ue_id, .. }
            | Ngap::UplinkNasTransport { ran_ue_id, .. }
            | Ngap::DownlinkNasTransport { ran_ue_id, .. }
            | Ngap::InitialContextSetup { ran_ue_id, .. } => *ran_ue_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_crypto::ident::Supi;

    fn suci() -> Suci {
        Supi::new(Plmn::test_network(), "0000000001")
            .unwrap()
            .conceal_null()
    }

    #[test]
    fn registration_request_suci_round_trip() {
        let msg = NasUplink::RegistrationRequest {
            identity: UeIdentity::Suci(suci()),
        };
        assert_eq!(NasUplink::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn registration_request_guti_round_trip() {
        let msg = NasUplink::RegistrationRequest {
            identity: UeIdentity::Guti(Guti::new(1, 0x2ff, 0x3f, 0xdeadbeef)),
        };
        assert_eq!(NasUplink::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn all_uplink_messages_round_trip() {
        let auts = Auts {
            sqn_ms_xor_ak: [1; 6],
            mac_s: [2; 8],
        };
        let messages = vec![
            NasUplink::AuthenticationResponse { res_star: [7; 16] },
            NasUplink::AuthenticationFailure {
                cause: AuthFailureCause::MacFailure,
            },
            NasUplink::AuthenticationFailure {
                cause: AuthFailureCause::SynchFailure(auts),
            },
            NasUplink::SecurityModeComplete,
            NasUplink::RegistrationComplete,
            NasUplink::PduSessionEstablishmentRequest { pdu_session_id: 5 },
            NasUplink::DeregistrationRequest { switch_off: false },
            NasUplink::DeregistrationRequest { switch_off: true },
            NasUplink::IdentityResponse { suci: suci() },
        ];
        for msg in messages {
            assert_eq!(NasUplink::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn all_downlink_messages_round_trip() {
        let messages = vec![
            NasDownlink::AuthenticationRequest {
                rand: [1; 16],
                autn: [2; 16],
                abba: [0, 0],
                ngksi: 3,
            },
            NasDownlink::AuthenticationReject,
            NasDownlink::SecurityModeCommand {
                integrity_alg: 2,
                ciphering_alg: 0,
            },
            NasDownlink::RegistrationAccept {
                guti: Guti::new(9, 1, 2, 42),
            },
            NasDownlink::RegistrationReject { cause: 111 },
            NasDownlink::PduSessionEstablishmentAccept {
                pdu_session_id: 5,
                ue_ip: [10, 0, 0, 2],
            },
            NasDownlink::DeregistrationAccept,
            NasDownlink::IdentityRequest,
        ];
        for msg in messages {
            assert_eq!(NasDownlink::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn ngap_round_trip_all_variants() {
        let nas = NasUplink::SecurityModeComplete.encode();
        let messages = vec![
            Ngap::InitialUeMessage {
                ran_ue_id: 7,
                nas: nas.clone(),
            },
            Ngap::UplinkNasTransport {
                ran_ue_id: 7,
                nas: nas.clone(),
            },
            Ngap::DownlinkNasTransport {
                ran_ue_id: 7,
                nas: nas.clone(),
            },
            Ngap::InitialContextSetup {
                ran_ue_id: 7,
                nas,
                teid: 42,
            },
        ];
        for msg in messages {
            let decoded = Ngap::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(decoded.ran_ue_id(), 7);
        }
    }

    #[test]
    fn decoder_rejects_garbage() {
        assert!(NasUplink::decode(&[0xFF, 0, 0]).is_err());
        assert!(NasDownlink::decode(&[0xFF]).is_err());
        assert!(Ngap::decode(&[9]).is_err());
        assert!(NasUplink::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = NasUplink::SecurityModeComplete.encode();
        bytes.push(0);
        assert!(NasUplink::decode(&bytes).is_err());
    }

    #[test]
    fn suci_scheme_output_size_flows_to_wire() {
        // Profile A output (32 eph + 5 ct + 8 mac) is larger than null (5).
        let supi = Supi::new(Plmn::test_network(), "0000000001").unwrap();
        let hn = shield5g_crypto::ecies::HomeNetworkKeyPair::from_private(1, [5; 32]);
        let null_len = NasUplink::RegistrationRequest {
            identity: UeIdentity::Suci(supi.conceal_null()),
        }
        .encode()
        .len();
        let prof_a = supi.conceal_profile_a(1, hn.public(), &[9; 32]);
        let a_len = NasUplink::RegistrationRequest {
            identity: UeIdentity::Suci(prof_a),
        }
        .encode()
        .len();
        assert!(a_len > null_len + 30);
    }

    proptest::proptest! {
        #[test]
        fn nas_decoder_never_panics(bytes in proptest::collection::vec(0u8.., 0..64)) {
            let _ = NasUplink::decode(&bytes);
            let _ = NasDownlink::decode(&bytes);
            let _ = Ngap::decode(&bytes);
        }
    }
}
