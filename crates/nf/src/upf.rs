//! The User Plane Function: GTP-U anchor for established sessions.
//!
//! Enough user plane to prove the OTA claim end to end: after
//! registration and PDU-session establishment, the UE can push a packet
//! through its tunnel and get the N6-side echo back (the "data session"
//! of paper §V-B6).

use crate::smf::N4Establish;
use crate::NfError;
use shield5g_sim::codec::{Reader, Writer};
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::service::Service;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::collections::BTreeMap;

/// Per-packet forwarding cost (GTP decap + route + N6 handoff).
const FORWARD_NANOS: u64 = 9_000;

/// An uplink user-plane packet in its GTP-U tunnel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GtpPacket {
    /// Tunnel endpoint identifier.
    pub teid: u32,
    /// Inner payload.
    pub payload: Vec<u8>,
}

impl GtpPacket {
    /// Encodes to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.teid).put_bytes(&self.payload);
        w.into_bytes()
    }

    /// Decodes wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NfError::Sim`] on framing violations.
    pub fn decode(bytes: &[u8]) -> Result<Self, NfError> {
        let mut r = Reader::new(bytes);
        let pkt = GtpPacket {
            teid: r.u32()?,
            payload: r.bytes()?,
        };
        r.finish()?;
        Ok(pkt)
    }
}

/// The UPF service.
#[derive(Debug, Default)]
pub struct UpfService {
    sessions: BTreeMap<u32, [u8; 4]>,
    packets_forwarded: u64,
}

impl UpfService {
    /// An empty UPF.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Established tunnel count.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total user-plane packets forwarded.
    #[must_use]
    pub fn packets_forwarded(&self) -> u64 {
        self.packets_forwarded
    }
}

impl Service for UpfService {
    fn handle(&mut self, env: &mut Env, req: HttpRequest) -> HttpResponse {
        match req.path.as_str() {
            "/n4/establish" => match N4Establish::decode(&req.body) {
                Ok(msg) => {
                    env.clock.advance(SimDuration::from_micros(40));
                    self.sessions.insert(msg.teid, msg.ue_ip);
                    HttpResponse::ok(Vec::new())
                }
                Err(e) => HttpResponse::error(400, e.to_string()),
            },
            "/gtp/uplink" => match GtpPacket::decode(&req.body) {
                Ok(pkt) => match self.sessions.get(&pkt.teid) {
                    Some(_ue_ip) => {
                        env.clock.advance(SimDuration::from_nanos(FORWARD_NANOS));
                        self.packets_forwarded += 1;
                        // N6 echo: the payload comes straight back (a
                        // stand-in for the internet-side ping target).
                        HttpResponse::ok(pkt.payload)
                    }
                    None => HttpResponse::error(404, format!("no tunnel {}", pkt.teid)),
                },
                Err(e) => HttpResponse::error(400, e.to_string()),
            },
            other => HttpResponse::error(404, format!("no handler for {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn establish_then_forward() {
        let mut env = Env::new(1);
        let mut upf = UpfService::new();
        let est = N4Establish {
            teid: 7,
            ue_ip: [10, 0, 0, 2],
        }
        .encode();
        assert!(upf
            .handle(&mut env, HttpRequest::post("/n4/establish", est))
            .is_success());
        assert_eq!(upf.session_count(), 1);
        let pkt = GtpPacket {
            teid: 7,
            payload: b"ping".to_vec(),
        }
        .encode();
        let resp = upf.handle(&mut env, HttpRequest::post("/gtp/uplink", pkt));
        assert!(resp.is_success());
        assert_eq!(resp.body, b"ping");
        assert_eq!(upf.packets_forwarded(), 1);
    }

    #[test]
    fn unknown_tunnel_dropped() {
        let mut env = Env::new(1);
        let mut upf = UpfService::new();
        let pkt = GtpPacket {
            teid: 99,
            payload: b"x".to_vec(),
        }
        .encode();
        assert_eq!(
            upf.handle(&mut env, HttpRequest::post("/gtp/uplink", pkt))
                .status,
            404
        );
        assert_eq!(upf.packets_forwarded(), 0);
    }

    #[test]
    fn gtp_wire_round_trip() {
        let pkt = GtpPacket {
            teid: 1,
            payload: vec![1, 2, 3],
        };
        assert_eq!(GtpPacket::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn malformed_bodies_rejected() {
        let mut env = Env::new(1);
        let mut upf = UpfService::new();
        assert_eq!(
            upf.handle(&mut env, HttpRequest::post("/n4/establish", vec![1]))
                .status,
            400
        );
        assert_eq!(
            upf.handle(&mut env, HttpRequest::post("/gtp/uplink", vec![1]))
                .status,
            400
        );
    }
}
