//! The Unified Data Repository: "the credential storage unit for the
//! users" (paper §II-A).
//!
//! The UDR holds each subscriber's OPc, AMF field and the home-network
//! SQN generator. The long-term key `K` deliberately does *not* live here:
//! TS 33.501 requires it to remain in the UDM/ARPF secure environment,
//! which is the backend (and, in the shielded deployment, the enclave).

use crate::sbi::{UdrAuthDataRequest, UdrAuthDataResponse, UdrResyncRequest};
use crate::NfError;
use shield5g_crypto::secret::SecretBytes;
use shield5g_crypto::sqn::SqnGenerator;
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::service::Service;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::collections::BTreeMap;

/// One subscriber's stored authentication subscription data.
#[derive(Clone, Debug)]
struct SubscriberEntry {
    opc: SecretBytes<16>,
    amf_field: [u8; 2],
    sqn: SqnGenerator,
}

/// The UDR service.
#[derive(Debug, Default)]
pub struct UdrService {
    subscribers: BTreeMap<String, SubscriberEntry>,
}

impl UdrService {
    /// An empty repository.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Provisions a subscriber (OPc + AMF field; SQN starts at zero).
    pub fn provision(&mut self, supi: impl Into<String>, opc: [u8; 16], amf_field: [u8; 2]) {
        self.subscribers.insert(
            supi.into(),
            SubscriberEntry {
                opc: SecretBytes::new(opc),
                amf_field,
                sqn: SqnGenerator::new(),
            },
        );
    }

    /// Number of provisioned subscribers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Current SEQ for a subscriber (test/diagnostic use).
    #[must_use]
    pub fn current_seq(&self, supi: &str) -> Option<u64> {
        self.subscribers.get(supi).map(|e| e.sqn.seq())
    }

    fn auth_data(&mut self, supi: &str) -> Result<UdrAuthDataResponse, NfError> {
        let entry = self
            .subscribers
            .get_mut(supi)
            .ok_or_else(|| NfError::SubscriberUnknown(supi.to_owned()))?;
        Ok(UdrAuthDataResponse {
            opc: entry.opc.clone(),
            sqn: entry.sqn.next_sqn(),
            amf_field: entry.amf_field,
        })
    }

    fn resync(&mut self, supi: &str, sqn_ms: &[u8; 6]) -> Result<(), NfError> {
        let entry = self
            .subscribers
            .get_mut(supi)
            .ok_or_else(|| NfError::SubscriberUnknown(supi.to_owned()))?;
        entry.sqn.resynchronise(sqn_ms);
        Ok(())
    }
}

impl Service for UdrService {
    fn handle(&mut self, env: &mut Env, req: HttpRequest) -> HttpResponse {
        // Database lookup + row serialisation.
        env.clock.advance(SimDuration::from_micros(35));
        match req.path.as_str() {
            "/nudr-dr/auth-data" => {
                match UdrAuthDataRequest::decode(&req.body).and_then(|r| self.auth_data(&r.supi)) {
                    Ok(resp) => HttpResponse::ok(resp.encode()),
                    Err(NfError::SubscriberUnknown(s)) => {
                        HttpResponse::error(404, format!("unknown subscriber {s}"))
                    }
                    Err(e) => HttpResponse::error(400, e.to_string()),
                }
            }
            "/nudr-dr/resync" => match UdrResyncRequest::decode(&req.body)
                .and_then(|r| self.resync(&r.supi, &r.sqn_ms))
            {
                Ok(()) => HttpResponse::ok(Vec::new()),
                Err(NfError::SubscriberUnknown(s)) => {
                    HttpResponse::error(404, format!("unknown subscriber {s}"))
                }
                Err(e) => HttpResponse::error(400, e.to_string()),
            },
            other => HttpResponse::error(404, format!("no handler for {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_crypto::sqn::sqn_from_bytes;

    fn udr() -> UdrService {
        let mut udr = UdrService::new();
        udr.provision("imsi-001010000000001", [0xcd; 16], [0x80, 0]);
        udr
    }

    #[test]
    fn auth_data_increments_sqn() {
        let mut env = Env::new(1);
        let mut udr = udr();
        let req = UdrAuthDataRequest {
            supi: "imsi-001010000000001".into(),
        }
        .encode();
        let r1 = udr.handle(
            &mut env,
            HttpRequest::post("/nudr-dr/auth-data", req.clone()),
        );
        let r2 = udr.handle(&mut env, HttpRequest::post("/nudr-dr/auth-data", req));
        let d1 = UdrAuthDataResponse::decode(&r1.body).unwrap();
        let d2 = UdrAuthDataResponse::decode(&r2.body).unwrap();
        assert_eq!(d1.opc, [0xcd; 16]);
        assert!(sqn_from_bytes(&d2.sqn) > sqn_from_bytes(&d1.sqn));
        assert_eq!(udr.current_seq("imsi-001010000000001"), Some(2));
    }

    #[test]
    fn unknown_subscriber_is_404() {
        let mut env = Env::new(1);
        let mut udr = udr();
        let req = UdrAuthDataRequest {
            supi: "imsi-001010000000099".into(),
        }
        .encode();
        assert_eq!(
            udr.handle(&mut env, HttpRequest::post("/nudr-dr/auth-data", req))
                .status,
            404
        );
    }

    #[test]
    fn resync_jumps_generator() {
        let mut env = Env::new(1);
        let mut udr = udr();
        let sqn_ms = shield5g_crypto::sqn::sqn_to_bytes(500 << 5);
        let req = UdrResyncRequest {
            supi: "imsi-001010000000001".into(),
            sqn_ms,
        }
        .encode();
        assert!(udr
            .handle(&mut env, HttpRequest::post("/nudr-dr/resync", req))
            .is_success());
        assert!(udr.current_seq("imsi-001010000000001").unwrap() > 500);
    }

    #[test]
    fn malformed_body_is_400() {
        let mut env = Env::new(1);
        let mut udr = udr();
        assert_eq!(
            udr.handle(&mut env, HttpRequest::post("/nudr-dr/auth-data", vec![1]))
                .status,
            400
        );
    }

    #[test]
    fn provisioning_counts() {
        let mut udr = udr();
        assert_eq!(udr.subscriber_count(), 1);
        udr.provision("imsi-001010000000002", [1; 16], [0x80, 0]);
        assert_eq!(udr.subscriber_count(), 2);
    }
}
