//! §V-B6: the over-the-air feasibility test.

use shield5g_bench::banner;
use shield5g_core::paka::SgxConfig;
use shield5g_core::slice::AkaDeployment;
use shield5g_ran::ota::OtaTestbed;

fn main() {
    banner(
        "OTA feasibility: OnePlus 8 through P-AKA enclaves",
        "paper §V-B6 / Fig. 11",
    );
    let mut testbed = OtaTestbed::assemble(1700, AkaDeployment::Sgx(SgxConfig::default()));
    let cold = testbed.run().expect("OTA run succeeds");
    println!(
        "    registration through isolated AKA:  {}",
        cold.registered
    );
    println!(
        "    PDU session (UE IP 10.0.0.{}):       {}",
        cold.ue_ip[3], cold.session_established
    );
    println!(
        "    user-plane echo:                    {}",
        cold.data_echoed
    );
    println!(
        "    first session setup:                {}",
        cold.session_setup
    );
    let warm = testbed.run().expect("steady run");
    println!(
        "    steady-state session setup:         {}   (paper: 62.38 ms)",
        warm.session_setup
    );
    println!(
        "    P-AKA time within setup:            {} ({:.1}%)",
        warm.paka_time,
        warm.paka_fraction() * 100.0
    );
    println!("\n    Result: Test1-1 → OpenAirInterface — the COTS UE registers and");
    println!("    moves data despite all three AKA modules running in enclaves.");
}
