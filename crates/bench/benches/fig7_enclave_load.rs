//! Figure 7: enclave load time for the P-AKA modules.

use shield5g_bench::{banner, compare, fmt_summary, reps};
use shield5g_core::harness::{fig7_enclave_load, module_image_bytes};

fn main() {
    banner("Enclave load time per P-AKA module", "paper Fig. 7 (§V-B1)");
    let reps = (reps() / 10).max(20);
    println!("    {reps} fresh GSC deployments per module\n");
    let paper = [
        "~59.2 s (0.988 min)",
        "~58.3 s (0.972 min)",
        "~57.6 s (0.960 min)",
    ];
    for ((kind, summary), paper) in fig7_enclave_load(700, reps).into_iter().zip(paper) {
        compare(
            &format!(
                "{} ({} GB trusted root FS)",
                kind.name(),
                module_image_bytes(kind) as f64 / 1e9
            ),
            fmt_summary(&summary),
            paper,
        );
    }
    println!("\n    Mechanism: GSC appends the root FS to the trusted-file list;");
    println!("    verification at ~36 MB/s effective dominates, plus preheating");
    println!("    131,072 heap pages. Load time has no bearing on operational");
    println!("    latency — it matters for slice creation/migration.");
}
