//! Fault-injection recovery sweep: availability versus SBI fault rate
//! against a real sharded eUDM pool (`shield5g-faults`), plus the two
//! whole-instance failure scenarios (replica kill, enclave crash).
//!
//! Every measured configuration also lands as a machine-readable point
//! in `BENCH_fault_sweep.json` in the observability artifact directory.

use shield5g_bench::{banner, emit_bench_json, smoke};
use shield5g_faults::{fault_sweep, FaultConfig, FaultReport, FaultSweepConfig};
use shield5g_obs::export::JsonObj;
use shield5g_scale::avcache::AvCacheConfig;
use shield5g_sim::time::SimDuration;

fn availability(served: u64, arrivals: u64) -> f64 {
    100.0 * served as f64 / arrivals as f64
}

fn point(scenario: &str, rate: f64, report: &FaultReport) -> String {
    JsonObj::new()
        .str("scenario", scenario)
        .f64("sbi_fault_rate", rate)
        .u64("arrivals", report.pool.arrivals)
        .u64("served", report.pool.served)
        .u64("shed", report.pool.shed)
        .f64(
            "availability_pct",
            availability(report.pool.served, report.pool.arrivals),
        )
        .u64("mttr_ns", report.recovery.mttr.as_nanos())
        .u64("mttr_max_ns", report.recovery.mttr_max.as_nanos())
        .f64("goodput_per_sec", report.recovery.goodput_per_sec)
        .f64("retry_amplification", report.recovery.retry_amplification)
        .u64("sbi_drops", report.sbi.drops)
        .u64("sbi_delays", report.sbi.delays)
        .u64("sbi_errors", report.sbi.errors)
        .u64("purged_avs", report.purged_avs as u64)
        .u64("crash_recoveries", report.crash_recoveries)
        .raw("response", &report.pool.response.to_json())
        .render()
}

fn main() {
    banner(
        "Recovery under deterministic fault injection",
        "paper §V key issues 2/8/22 (failure model discussion)",
    );
    let smoke = smoke();
    let mut points = Vec::new();

    // Layer 1: SBI message faults, split evenly across drop / delay /
    // 5xx. Availability should stay near 100% while the supervision
    // retries absorb the loss, then sag once the budget is exhausted.
    let fault_rates: &[f64] = if smoke {
        &[0.06]
    } else {
        &[0.0, 0.02, 0.05, 0.10, 0.20, 0.35]
    };
    println!("    Availability vs SBI fault rate (2 replicas, supervision retries):");
    println!(
        "      {:>6}  {:>7}  {:>10}  {:>10}  {:>6}  {:>12}",
        "rate", "avail", "mttr", "goodput/s", "ampl", "drop/dly/5xx"
    );
    for &rate in fault_rates {
        let report = fault_sweep(
            900,
            &FaultSweepConfig {
                arrivals: if smoke { 80 } else { 240 },
                sbi: FaultConfig {
                    drop_rate: rate / 3.0,
                    delay_rate: rate / 3.0,
                    error_rate: rate / 3.0,
                    ..FaultConfig::default()
                },
                ..FaultSweepConfig::default()
            },
        );
        println!(
            "      {:>5.0}%  {:>6.1}%  {:>10}  {:>10.0}  {:>5.2}x  {:>4}/{}/{}",
            100.0 * rate,
            availability(report.pool.served, report.pool.arrivals),
            report.recovery.mttr,
            report.recovery.goodput_per_sec,
            report.recovery.retry_amplification,
            report.sbi.drops,
            report.sbi.delays,
            report.sbi.errors,
        );
        points.push(point("sbi_fault_rate", rate, &report));
    }

    // Layer 3: kill a replica mid-run; the warm standby takes over and
    // the frontend purges the dead shard's pre-generated AVs.
    println!("\n    Replica death with warm-standby failover (AV cache on):");
    let kill = fault_sweep(
        910,
        &FaultSweepConfig {
            arrivals: if smoke { 80 } else { 220 },
            ues: 12,
            cache: Some(AvCacheConfig {
                batch_size: 8,
                capacity_per_supi: 16,
            }),
            kill_at: Some(if smoke { 30 } else { 110 }),
            ..FaultSweepConfig::default()
        },
    );
    let failover = kill.failover.as_ref().expect("kill_at fired");
    println!(
        "      availability {:.1}%, failover {} (standby promoted: {}), {} AVs purged",
        availability(kill.pool.served, kill.pool.arrivals),
        failover.failover,
        failover.standby_promoted,
        kill.purged_avs,
    );
    println!("      {kill}");
    points.push(point("replica_kill", 0.0, &kill));

    // Layer 2: crash one enclave; exactly one request pays the ~60 s
    // reload (Fig. 7) while the surviving shard keeps serving.
    println!("\n    Enclave crash with AEX storm (reload on next request):");
    let crash = fault_sweep(
        920,
        &FaultSweepConfig {
            arrivals: if smoke { 80 } else { 160 },
            crash_at: Some(if smoke { 20 } else { 40 }),
            aex_storm: 500,
            ..FaultSweepConfig::default()
        },
    );
    println!(
        "      availability {:.1}%, {} crash reload(s), worst response {} \
         (reload visible: {})",
        availability(crash.pool.served, crash.pool.arrivals),
        crash.crash_recoveries,
        crash.pool.response.max,
        crash.pool.response.max > SimDuration::from_secs(30),
    );
    println!("      {crash}");
    points.push(point("enclave_crash", 0.0, &crash));

    println!("\n    Every run is a pure function of its seed: the fault schedule,");
    println!("    workload, and retry jitter come from forked DetRng streams, so");
    println!("    rerunning any row reproduces it byte-for-byte.");

    println!();
    emit_bench_json("fault_sweep", &points);
}
