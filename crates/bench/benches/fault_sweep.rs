//! Fault-injection recovery sweep: availability versus SBI fault rate
//! against a real sharded eUDM pool (`shield5g-faults`), plus the two
//! whole-instance failure scenarios (replica kill, enclave crash).
//!
//! Sweep points run in parallel on the deterministic runner
//! (`SHIELD5G_BENCH_THREADS`); results and observability merge in
//! canonical point order, so the artifact is byte-identical across
//! thread counts (the `"runner"` wall-time line excluded). Every
//! measured configuration lands as a machine-readable point in
//! `BENCH_fault_sweep.json` in the observability artifact directory.

use shield5g_bench::runner::threads;
use shield5g_bench::sweeps::fault_recovery_sweep;
use shield5g_bench::{banner, emit_bench_json_with_runner, smoke};
use shield5g_obs::hub::ObsHandle;

fn main() {
    banner(
        "Recovery under deterministic fault injection",
        "paper §V key issues 2/8/22 (failure model discussion)",
    );
    let hub = ObsHandle::new();
    let run = fault_recovery_sweep(&hub, threads(), smoke());
    for line in &run.lines {
        println!("{line}");
    }
    println!(
        "\n    [runner] {} jobs on {} thread(s): wall {:.2}s, {:.2}x speedup",
        run.stats.jobs,
        run.stats.threads,
        run.stats.wall.as_secs_f64(),
        run.stats.speedup(),
    );

    println!();
    emit_bench_json_with_runner("fault_sweep", &run.points, &run.stats);
}
