//! Figure 9: functional (L_F) and total (L_T) latency of the modules,
//! container vs SGX.

use shield5g_bench::{banner, fmt_summary, reps};
use shield5g_core::harness::fig9_latency;

fn main() {
    banner(
        "Functional and total latency, container vs SGX",
        "paper Fig. 9 + Table II L_F/L_T (§V-B3)",
    );
    let reps = reps();
    println!("    {reps} requests per module per deployment\n");
    println!(
        "    {:7} {:>24} {:>24} {:>6} {:>24} {:>24} {:>6}",
        "module", "L_F container", "L_F SGX", "ratio", "L_T container", "L_T SGX", "ratio"
    );
    let paper_lf = [1.2, 1.3, 1.5];
    let paper_lt = [1.86, 2.15, 2.43];
    for (row, (plf, plt)) in fig9_latency(900, reps)
        .iter()
        .zip(paper_lf.iter().zip(paper_lt))
    {
        println!(
            "    {:7} {:>24} {:>24} {:>5.2}x {:>24} {:>24} {:>5.2}x",
            row.kind.name(),
            fmt_summary(&row.lf_container),
            fmt_summary(&row.lf_sgx),
            row.lf_ratio(),
            fmt_summary(&row.lt_container),
            fmt_summary(&row.lt_sgx),
            row.lt_ratio(),
        );
        println!("    {:7} paper ratios: L_F {plf}x, L_T {plt}x", "");
    }
    println!("\n    Shape: eUDM has the largest function, so its relative SGX cost is");
    println!("    lowest; L_T overheads exceed L_F overheads because network I/O");
    println!("    crosses the enclave boundary (OCALL round trips).");
}
