//! §V-B7: optimisation ablations — exitless OCALLs and a user-level
//! network stack (mTCP-style) inside the enclave.
//!
//! Every measured configuration also lands as a machine-readable point
//! in `BENCH_ablation.json` in the observability artifact directory.

use shield5g_bench::{banner, emit_bench_json, fmt_summary, reps, smoke};
use shield5g_core::harness::ablation_optimizations;
use shield5g_obs::export::JsonObj;
use shield5g_scale::harness::horizontal_scaling;

fn main() {
    banner(
        "Optimisation ablations on eUDM response time",
        "paper §V-B7 discussion",
    );
    let smoke = smoke();
    let reps = if smoke { 1 } else { reps() };
    println!("    {reps} stable requests per configuration\n");
    let mut points = Vec::new();
    let rows = ablation_optimizations(1800, reps);
    let baseline = rows[0].r_stable.median;
    for row in &rows {
        let speedup = baseline.as_nanos() as f64 / row.r_stable.median.as_nanos() as f64;
        println!(
            "    {:24} {:>26}   {:.2}x vs baseline",
            row.label,
            fmt_summary(&row.r_stable),
            speedup
        );
        points.push(
            JsonObj::new()
                .str("scenario", "ablation")
                .str("label", &row.label)
                .f64("speedup_vs_baseline", speedup)
                .raw("r_stable", &row.r_stable.to_json())
                .render(),
        );
    }
    println!("\n    Horizontal scaling (real eUDM replica pool, shield5g-scale):");
    let max_instances = if smoke { 2 } else { 4 };
    for row in horizontal_scaling(1900, (reps / 4).max(10), max_instances) {
        println!(
            "      {} instance(s): stable R {} -> {:.0} authentications/s ({} shed)",
            row.instances, row.stable_response, row.throughput_per_sec, row.shed
        );
        points.push(
            JsonObj::new()
                .str("scenario", "horizontal_scaling")
                .u64("instances", u64::from(row.instances))
                .u64("stable_response_ns", row.stable_response.as_nanos())
                .f64("throughput_per_sec", row.throughput_per_sec)
                .u64("shed", row.shed)
                .render(),
        );
    }
    println!("\n    As §V-B7 argues: exitless OCALLs remove transition costs (but are");
    println!("    'insecure for production usage as of now'); pulling a user-level");
    println!("    TCP stack into the enclave removes the network-I/O OCALLs entirely");
    println!("    at the price of a larger TCB.");

    println!();
    emit_bench_json("ablation", &points);
}
