//! §V-B7: optimisation ablations — exitless OCALLs and a user-level
//! network stack (mTCP-style) inside the enclave.
//!
//! The optimisation ablation and each horizontal-scaling instance count
//! run as independent jobs on the deterministic runner
//! (`SHIELD5G_BENCH_THREADS`); results merge in canonical point order,
//! so the artifact is byte-identical across thread counts (the
//! `"runner"` wall-time line excluded). Every measured configuration
//! lands as a machine-readable point in `BENCH_ablation.json` in the
//! observability artifact directory.

use shield5g_bench::runner::threads;
use shield5g_bench::sweeps::ablation_sweep;
use shield5g_bench::{banner, emit_bench_json_with_runner, reps, smoke};
use shield5g_obs::hub::ObsHandle;

fn main() {
    banner(
        "Optimisation ablations on eUDM response time",
        "paper §V-B7 discussion",
    );
    let smoke = smoke();
    let reps = if smoke { 1 } else { reps() };
    println!("    {reps} stable requests per configuration\n");
    let hub = ObsHandle::new();
    let run = ablation_sweep(&hub, threads(), smoke, reps);
    for line in &run.lines {
        println!("{line}");
    }
    println!("\n    As §V-B7 argues: exitless OCALLs remove transition costs (but are");
    println!("    'insecure for production usage as of now'); pulling a user-level");
    println!("    TCP stack into the enclave removes the network-I/O OCALLs entirely");
    println!("    at the price of a larger TCB.");
    println!(
        "\n    [runner] {} jobs on {} thread(s): wall {:.2}s, {:.2}x speedup",
        run.stats.jobs,
        run.stats.threads,
        run.stats.wall.as_secs_f64(),
        run.stats.speedup(),
    );

    println!();
    emit_bench_json_with_runner("ablation", &run.points, &run.stats);
}
