//! Table I: 5G-AKA functions and parameters loaded into the enclaves.

use shield5g_bench::banner;
use shield5g_core::harness::table1_parameter_sizes;

fn main() {
    banner(
        "Enclave input/output parameters and sizes",
        "paper Table I (§IV)",
    );
    println!(
        "    {:7} {:>12} {:>13}  derive/execute",
        "module", "input bytes", "output bytes"
    );
    let derivations = ["f1, f2345, KAUSF, AUTN", "HXRES*, KSEAF", "KAMF"];
    for (row, derive) in table1_parameter_sizes().iter().zip(derivations) {
        println!(
            "    {:7} {:>12} {:>13}  {derive}",
            row.kind.name(),
            row.input_bytes,
            row.output_bytes
        );
    }
    println!("\n    Paper Table I: eUDM in 40 B (OPc 16, RAND 16, SQN 6, AMF 2),");
    println!("    out 80 B (RAND 16, XRES* 16, KAUSF 32, AUTN 16); eAUSF in 66 B;");
    println!("    eAMF in/out 32 B. Deviation: the paper lists HXRES* as 8 B; we");
    println!("    follow TS 33.501 A.5 (128 bits = 16 B) — noted in EXPERIMENTS.md.");
    println!("    All sizes are enforced by the wire codecs and checked in tests.");
}
