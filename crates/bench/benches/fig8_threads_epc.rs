//! Figure 8: effect of varying `sgx.max_threads` and EPC size on the
//! eUDM P-AKA module.

use shield5g_bench::{banner, fmt_summary, reps};
use shield5g_core::harness::fig8_threads_epc;

fn main() {
    banner(
        "Thread-count / EPC-size sweep on eUDM",
        "paper Fig. 8 (§V-B2)",
    );
    let reps = reps();
    println!("    {reps} requests per configuration\n");
    println!(
        "    {:22} {:>28} {:>28}",
        "configuration", "L_F median [IQR]", "L_T median [IQR]"
    );
    for row in fig8_threads_epc(800, reps) {
        println!(
            "    {:22} {:>28} {:>28}",
            row.label,
            fmt_summary(&row.lf),
            fmt_summary(&row.lt)
        );
    }
    println!("\n    Paper shape: flat in thread count (the server spawns threads only");
    println!("    for new flows); 8 GB EPC degrades and widens the IQR because the");
    println!("    preheated heap over-commits physical EPC and pages (EWB/ELDU);");
    println!("    non-SGX is fastest. Below 4 threads Gramine cannot run the module");
    println!("    (3 helper threads + 1 app thread) — the manifest validator rejects it.");
}
