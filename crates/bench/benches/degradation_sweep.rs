//! Graceful-degradation sweep: per-priority-class availability, goodput,
//! and shed-rate curves as the SBI fault rate ramps against the full
//! overload-control stack — priority-aware admission (emergency
//! headroom), health-gated routing with half-open probes, and the AV
//! cache brownout mode under EPC thrash.
//!
//! Sweep points run in parallel on the deterministic runner
//! (`SHIELD5G_BENCH_THREADS`); results and observability merge in
//! canonical point order, so the artifact is byte-identical across
//! thread counts (the `"runner"` wall-time line excluded). Every
//! measured configuration lands as a machine-readable point in
//! `BENCH_degradation.json` in the observability artifact directory.

use shield5g_bench::runner::threads;
use shield5g_bench::sweeps::degradation_curve_sweep;
use shield5g_bench::{banner, emit_bench_json_with_runner, smoke};
use shield5g_obs::hub::ObsHandle;

fn main() {
    banner(
        "Overload control and graceful degradation",
        "paper §VI (shielded NFs must not make the control plane more fragile)",
    );
    let hub = ObsHandle::new();
    let run = degradation_curve_sweep(&hub, threads(), smoke());
    for line in &run.lines {
        println!("{line}");
    }
    println!(
        "\n    [runner] {} jobs on {} thread(s): wall {:.2}s, {:.2}x speedup",
        run.stats.jobs,
        run.stats.threads,
        run.stats.wall.as_secs_f64(),
        run.stats.speedup(),
    );

    println!();
    emit_bench_json_with_runner("degradation", &run.points, &run.stats);
}
