//! Criterion microbenches for the HMEE simulator: transition accounting,
//! vault crypto, and the full P-AKA serve path (real time, not virtual).

use criterion::{criterion_group, criterion_main, Criterion};
use shield5g_core::harness::{deploy_module, standard_request, ModuleDeployment};
use shield5g_core::paka::{PakaKind, SgxConfig};
use shield5g_hmee::enclave::EnclaveBuilder;
use shield5g_hmee::platform::SgxPlatform;
use shield5g_sim::Env;
use std::hint::black_box;

fn bench_enclave(c: &mut Criterion) {
    c.bench_function("enclave_ocall_roundtrip", |b| {
        let mut env = Env::new(1);
        let platform = SgxPlatform::new(&mut env);
        let mut enclave = EnclaveBuilder::new("bench")
            .heap_bytes(1 << 20)
            .build(&mut env, &platform)
            .unwrap();
        b.iter(|| enclave.ocall(black_box(&mut env), 64));
    });
    c.bench_function("vault_write_read_4KiB", |b| {
        let mut env = Env::new(2);
        let platform = SgxPlatform::new(&mut env);
        let mut enclave = EnclaveBuilder::new("bench")
            .heap_bytes(1 << 20)
            .build(&mut env, &platform)
            .unwrap();
        let secret = vec![0x5a; 4096];
        b.iter(|| {
            enclave.vault_write(&mut env, "slot", black_box(&secret));
            black_box(enclave.vault_read(&mut env, "slot").unwrap());
        });
    });
    c.bench_function("paka_serve_container", |b| {
        let (mut env, mut module) = deploy_module(3, PakaKind::EUdm, ModuleDeployment::Container);
        let req = standard_request(PakaKind::EUdm);
        let _ = module.serve(&mut env, req.clone());
        b.iter(|| black_box(module.serve(&mut env, req.clone())));
    });
    c.bench_function("paka_serve_sgx", |b| {
        let (mut env, mut module) = deploy_module(
            4,
            PakaKind::EUdm,
            ModuleDeployment::Sgx(SgxConfig::default()),
        );
        let req = standard_request(PakaKind::EUdm);
        let _ = module.serve(&mut env, req.clone());
        b.iter(|| black_box(module.serve(&mut env, req.clone())));
    });
}

criterion_group!(benches, bench_enclave);
criterion_main!(benches);
