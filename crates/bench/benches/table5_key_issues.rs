//! Table V: 3GPP TR 33.848 Key Issues and HMEE mitigation, substantiated
//! by attacker runs against the simulated slices.

use shield5g_bench::banner;
use shield5g_core::harness::standard_request;
use shield5g_core::ki::{demonstrate, table5, Resolution};
use shield5g_core::paka::{PakaKind, SgxConfig};
use shield5g_core::slice::{build_slice, AkaDeployment, SliceConfig};
use shield5g_sim::Env;

fn main() {
    banner("Key Issues summary", "paper Table V (§VI)");
    println!("    ● = HMEE-applicable per 3GPP; + = full; ◐ = partial\n");
    for ki in table5() {
        println!(
            "    KI {:2} {} {} {:45} — {}",
            ki.number,
            if ki.hmee_flagged_by_3gpp { "●" } else { " " },
            match ki.resolution {
                Resolution::Full => "+",
                Resolution::Partial => "◐",
            },
            ki.description,
            ki.mechanism
        );
    }

    println!("\n    Demonstrations (the §III attacker against live slices):");
    for deployment in [
        AkaDeployment::Container,
        AkaDeployment::Sgx(SgxConfig::default()),
    ] {
        println!("    --- {} deployment ---", deployment.label());
        let mut env = Env::new(1600);
        env.log.disable();
        let mut slice = build_slice(
            &mut env,
            &SliceConfig {
                deployment,
                subscriber_count: 2,
            },
        )
        .expect("slice deploys");
        if slice.module(PakaKind::EUdm).is_some() {
            let mut client = slice.client_for(PakaKind::EUdm, "udm.oai").expect("client");
            let req = standard_request(PakaKind::EUdm);
            client
                .call(&mut env, &req.path, req.body.clone())
                .expect("AKA round");
        }
        for demo in demonstrate(&mut env, &mut slice) {
            println!(
                "      KI {:2} upheld={} — {}",
                demo.ki, demo.upheld, demo.evidence
            );
        }
    }
}
