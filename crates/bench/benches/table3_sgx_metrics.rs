//! Table III: SGX-specific operational statistics.

use shield5g_bench::banner;
use shield5g_core::harness::{per_registration_delta, table3_sgx_metrics};
use shield5g_core::paka::PakaKind;

fn main() {
    banner(
        "EENTER/EEXIT/AEX per module and UE count",
        "paper Table III (§V-B5)",
    );
    let (rows, empty) = table3_sgx_metrics(1400, 3);
    println!(
        "    {:8} {:>5} {:>8} {:>8} {:>8}",
        "module", "#UEs", "EENTER", "EEXIT", "AEX"
    );
    for row in &rows {
        println!(
            "    {:8} {:>5} {:>8} {:>8} {:>8}",
            row.kind.name(),
            row.ues,
            row.counters.eenter,
            row.counters.eexit,
            row.counters.aex
        );
    }
    println!(
        "    {:8} {:>5} {:>8} {:>8} {:>8}   (paper: 762 / 680 / 49674)",
        "empty", "-", empty.eenter, empty.eexit, empty.aex
    );
    println!("\n    Paper reference rows (1 UE): eUDM 1508/1414/140320,");
    println!("    eAUSF 1539/1445/140380, eAMF 1537/1443/140354.");
    println!("\n    Per-registration transition deltas (paper: \"around 90\"):");
    for kind in PakaKind::all() {
        let d = per_registration_delta(1500, kind);
        println!(
            "      {:6} +{} EENTER, +{} EEXIT, +{} AEX per UE",
            kind.name(),
            d.eenter,
            d.eexit,
            d.aex
        );
    }
    println!("\n    AKA computation itself contributes no OCALLs — the counts come");
    println!("    from network I/O, exactly as §V-B5 observes.");
}
