//! Table IV: testbed hardware and software configuration.

use shield5g_bench::banner;
use shield5g_core::testbed::TestbedConfig;

fn main() {
    banner("Testbed configuration", "paper Table IV (§V-B6)");
    let t = TestbedConfig::paper();
    println!("    Server:   {}", t.server_cpus);
    println!("              {}", t.server_memory);
    println!("              {} / {}", t.server_os, t.server_kernel);
    println!("    Core:     {} + {}", t.core_version, t.gsc_version);
    println!(
        "    Radio:    {} ({} PRBs @ {} GHz)",
        t.gnb_radio, t.prbs, t.frequency_ghz
    );
    println!("    RAN sw:   {}", t.ran_software);
    println!("    UE:       {} on {}", t.ue_model, t.ue_os_build);
    println!(
        "    PLMN:     {} (MCC {}, MNC {})",
        t.plmn_string(),
        t.mcc,
        t.mnc
    );
    println!("\n    The simulation mirrors these: the cost model is anchored at");
    println!("    2.40 GHz, EPC 8 GB/CPU, and the OTA harness refuses to attach a");
    println!("    UE unless its SIM is programmed for PLMN 00101 and the OS build");
    println!("    matches the validated Oxygen release.");
}
