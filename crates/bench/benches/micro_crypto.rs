//! Criterion microbenches for the cryptographic substrate: the primitives
//! the P-AKA enclaves execute per UE registration.

use criterion::{criterion_group, criterion_main, Criterion};
use shield5g_crypto::aes::Aes128;
use shield5g_crypto::keys::{self, ServingNetworkName};
use shield5g_crypto::milenage::Milenage;
use shield5g_crypto::sha256::Sha256;
use shield5g_crypto::x25519::{x25519, x25519_base};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let key = [0x2b; 16];
    let cipher = Aes128::new(&key);
    c.bench_function("aes128_encrypt_block", |b| {
        let mut block = [0x6b; 16];
        b.iter(|| {
            cipher.encrypt_block(black_box(&mut block));
        });
    });
    c.bench_function("aes128_ctr_4096B", |b| {
        let mut page = vec![0u8; 4096];
        let icb = [7u8; 16];
        b.iter(|| cipher.ctr_apply(black_box(&icb), black_box(&mut page)));
    });
    c.bench_function("sha256_1KiB", |b| {
        let data = vec![0xa5u8; 1024];
        b.iter(|| Sha256::digest(black_box(&data)));
    });
    let mil = Milenage::with_op(&[0x46; 16], &[0xcd; 16]);
    c.bench_function("milenage_f2345", |b| {
        b.iter(|| mil.f2345(black_box(&[0x23; 16])));
    });
    let snn = ServingNetworkName::new("001", "01");
    c.bench_function("he_av_generation", |b| {
        // The complete eUDM enclave computation (Table I).
        b.iter(|| {
            keys::generate_he_av(
                &mil,
                black_box(&[0x23; 16]),
                &[0, 0, 0, 0, 0, 1],
                &[0x80, 0],
                &snn,
            )
        });
    });
    c.bench_function("x25519_scalarmult", |b| {
        let scalar = [0x77; 32];
        let point = x25519_base(&[0x42; 32]);
        b.iter(|| x25519(black_box(&scalar), black_box(&point)));
    });
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
