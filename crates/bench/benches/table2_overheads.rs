//! Table II: SGX overhead across the isolated modules, plus the §V-B4
//! session-setup share.

use shield5g_bench::{banner, reps};
use shield5g_core::harness::{fig10_response, fig9_latency};
use shield5g_ran::ota::session_setup_comparison;

fn main() {
    banner("SGX overhead summary", "paper Table II (§V-B3/B4)");
    let reps = reps();
    let lat = fig9_latency(1100, reps);
    let resp = fig10_response(1200, reps, (reps / 10).max(15));
    println!(
        "    {:7} {:>6} {:>6} {:>14} {:>14}",
        "module", "L_F", "L_T", "R_S^SGX/R^C", "R_I/R_S^SGX"
    );
    let paper = [
        (1.2, 1.86, 2.2, 19.04),
        (1.3, 2.15, 2.5, 18.37),
        (1.5, 2.43, 2.9, 21.42),
    ];
    for ((l, r), (plf, plt, prs, pri)) in lat.iter().zip(&resp).zip(paper) {
        println!(
            "    {:7} {:>5.2}x {:>5.2}x {:>13.2}x {:>13.1}x",
            l.kind.name(),
            l.lf_ratio(),
            l.lt_ratio(),
            r.rs_ratio(),
            r.ri_over_rs()
        );
        println!(
            "    {:7} paper: {plf:>4}x {plt:>5}x {prs:>12}x {pri:>12}x",
            ""
        );
    }

    println!("\n    End-to-end session setup (5 full-stack runs per deployment):");
    let cmp = session_setup_comparison(1300, 5);
    println!("      container setup  {}", cmp.container_setup);
    println!(
        "      SGX setup        {}   (paper: 62.38 ms)",
        cmp.sgx_setup
    );
    println!(
        "      SGX-added delay  {} = {:.2}% of setup   (paper: 3.48 ms = 5.58%)",
        cmp.sgx_delta,
        cmp.sgx_share_of_setup() * 100.0
    );
}
