//! Figure 10: stable and initial response times of the P-AKA modules.

use shield5g_bench::{banner, fmt_summary, reps};
use shield5g_core::harness::fig10_response;

fn main() {
    banner(
        "Response time from the VNF: stable and initial",
        "paper Fig. 10 + Table II R columns (§V-B4)",
    );
    let stable = reps();
    let initial = (reps() / 10).max(15);
    println!("    {stable} stable samples; {initial} fresh-deployment initial samples\n");
    let paper = [(2.2, 19.04), (2.5, 18.37), (2.9, 21.42)];
    for (row, (p_rs, p_ri)) in fig10_response(1000, stable, initial).iter().zip(paper) {
        println!("    {} :", row.kind.name());
        println!("      R^C       {:>26}", fmt_summary(&row.r_container));
        println!(
            "      R_S^SGX   {:>26}   ratio {:.2}x (paper {p_rs}x)",
            fmt_summary(&row.r_sgx_stable),
            row.rs_ratio()
        );
        println!(
            "      R_I^SGX   {:>26}   R_I/R_S {:.1}x (paper {p_ri}x)",
            fmt_summary(&row.r_sgx_initial),
            row.ri_over_rs()
        );
    }
    println!("\n    The initial response pays lazy loading of network-stack");
    println!("    dependencies inside the enclave (extra OCALLs + cold page faults");
    println!("    + in-enclave dynamic linking); subsequent requests are cached.");
}
