//! Pool scaling sweep: replica count × offered load against real
//! sharded eUDM enclave pools (`shield5g-scale`), plus the AV
//! pre-generation ablation.

use shield5g_bench::{banner, smoke};
use shield5g_scale::avcache::AvCacheConfig;
use shield5g_scale::harness::{pool_sweep, probe_service_time, SweepConfig};
use shield5g_scale::queue::QueueConfig;
use shield5g_sim::time::SimDuration;

fn main() {
    banner(
        "Sharded P-AKA enclave pool under mass registration",
        "paper §VI scaling discussion",
    );
    let smoke = smoke();
    let service = probe_service_time(4100);
    let per_replica = 1.0 / service.as_secs_f64();
    println!("    single-replica service time {service} (~{per_replica:.0} auth/s capacity)\n");

    let replica_counts: &[u32] = if smoke { &[1] } else { &[1, 2, 4, 8] };
    let load_factors: &[f64] = if smoke { &[0.8] } else { &[0.5, 0.8, 1.2, 2.0] };
    let batch_sizes: &[u32] = if smoke { &[8] } else { &[4, 8, 16] };

    println!("    Throughput sweep (replicas x offered load, cache off):");
    for &replicas in replica_counts {
        for &load_factor in load_factors {
            let report = pool_sweep(
                4200 + u64::from(replicas),
                &SweepConfig {
                    replicas,
                    offered_per_sec: load_factor * per_replica * f64::from(replicas),
                    arrivals: 120 * replicas,
                    ues: 40 * replicas,
                    queue: QueueConfig {
                        capacity: 16,
                        deadline: SimDuration::from_millis(100),
                    },
                    cache: None,
                },
            );
            println!("      rho={load_factor:.1} {report}");
        }
        println!();
    }

    println!("    AV pre-generation ablation (1 replica, repeat subscribers):");
    let base = SweepConfig {
        replicas: 1,
        offered_per_sec: 0.5 * per_replica,
        arrivals: if smoke { 60 } else { 240 },
        ues: 8,
        queue: QueueConfig::default(),
        cache: None,
    };
    let off = pool_sweep(4300, &base);
    println!("      cache off: {off}");
    for &batch_size in batch_sizes {
        let on = pool_sweep(
            4300,
            &SweepConfig {
                cache: Some(AvCacheConfig {
                    batch_size,
                    capacity_per_supi: batch_size as usize * 2,
                }),
                ..base
            },
        );
        let stats = on.cache.expect("cache stats");
        println!(
            "      batch {batch_size:>2}:  {on} (hit rate {:.0}%)",
            100.0 * stats.hit_rate()
        );
    }
    println!("\n    One batched round trip pays the ~91-transition HTTPS choreography");
    println!("    once per batch; cache hits are served VNF-local without entering");
    println!("    the enclave, so EENTER/request falls roughly by the batch factor.");
}
