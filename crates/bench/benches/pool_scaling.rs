//! Pool scaling sweep: replica count × offered load against real
//! sharded eUDM enclave pools (`shield5g-scale`), plus the AV
//! pre-generation ablation.
//!
//! Every measured configuration also lands as a machine-readable point
//! in `BENCH_pool_scaling.json`, and the run's full observability state
//! (metrics registry + span log) is exported to the artifact directory.

use shield5g_bench::{banner, emit_bench_json, export_hub, smoke};
use shield5g_obs::export::JsonObj;
use shield5g_obs::hub::ObsHandle;
use shield5g_scale::avcache::AvCacheConfig;
use shield5g_scale::harness::{pool_sweep, probe_service_time, SweepConfig};
use shield5g_scale::metrics::PoolReport;
use shield5g_scale::queue::QueueConfig;
use shield5g_sim::time::SimDuration;

fn point(scenario: &str, rho: f64, batch: u32, report: &PoolReport) -> String {
    let mut obj = JsonObj::new()
        .str("scenario", scenario)
        .u64("replicas", u64::from(report.replicas))
        .f64("rho", rho)
        .u64("batch", u64::from(batch))
        .f64("offered_per_sec", report.offered_per_sec)
        .u64("arrivals", report.arrivals)
        .u64("served", report.served)
        .u64("shed", report.shed)
        .f64("throughput_per_sec", report.throughput_per_sec)
        .raw("response", &report.response.to_json())
        .raw("queued", &report.queued.to_json());
    if let Some(cache) = &report.cache {
        obj = obj.f64("cache_hit_rate", cache.hit_rate());
    }
    obj.render()
}

fn main() {
    banner(
        "Sharded P-AKA enclave pool under mass registration",
        "paper §VI scaling discussion",
    );
    let hub = ObsHandle::new();
    let _obs = shield5g_obs::hub::scoped(&hub);
    let mut points = Vec::new();

    let smoke = smoke();
    let service = probe_service_time(4100);
    let per_replica = 1.0 / service.as_secs_f64();
    println!("    single-replica service time {service} (~{per_replica:.0} auth/s capacity)\n");

    let replica_counts: &[u32] = if smoke { &[1] } else { &[1, 2, 4, 8] };
    let load_factors: &[f64] = if smoke { &[0.8] } else { &[0.5, 0.8, 1.2, 2.0] };
    let batch_sizes: &[u32] = if smoke { &[8] } else { &[4, 8, 16] };

    println!("    Throughput sweep (replicas x offered load, cache off):");
    for &replicas in replica_counts {
        for &load_factor in load_factors {
            let report = pool_sweep(
                4200 + u64::from(replicas),
                &SweepConfig {
                    replicas,
                    offered_per_sec: load_factor * per_replica * f64::from(replicas),
                    arrivals: 120 * replicas,
                    ues: 40 * replicas,
                    queue: QueueConfig {
                        capacity: 16,
                        deadline: SimDuration::from_millis(100),
                    },
                    cache: None,
                },
            );
            println!("      rho={load_factor:.1} {report}");
            points.push(point("throughput_sweep", load_factor, 0, &report));
        }
        println!();
    }

    println!("    AV pre-generation ablation (1 replica, repeat subscribers):");
    let base = SweepConfig {
        replicas: 1,
        offered_per_sec: 0.5 * per_replica,
        arrivals: if smoke { 60 } else { 240 },
        ues: 8,
        queue: QueueConfig::default(),
        cache: None,
    };
    let off = pool_sweep(4300, &base);
    println!("      cache off: {off}");
    points.push(point("av_ablation", 0.5, 0, &off));
    for &batch_size in batch_sizes {
        let on = pool_sweep(
            4300,
            &SweepConfig {
                cache: Some(AvCacheConfig {
                    batch_size,
                    capacity_per_supi: batch_size as usize * 2,
                }),
                ..base
            },
        );
        let stats = on.cache.expect("cache stats");
        println!(
            "      batch {batch_size:>2}:  {on} (hit rate {:.0}%)",
            100.0 * stats.hit_rate()
        );
        points.push(point("av_ablation", 0.5, batch_size, &on));
    }
    println!("\n    One batched round trip pays the ~91-transition HTTPS choreography");
    println!("    once per batch; cache hits are served VNF-local without entering");
    println!("    the enclave, so EENTER/request falls roughly by the batch factor.");

    println!();
    emit_bench_json("pool_scaling", &points);
    export_hub("pool_scaling", &hub);
}
