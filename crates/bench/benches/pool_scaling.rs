//! Pool scaling sweep: replica count × offered load against real
//! sharded eUDM enclave pools (`shield5g-scale`), plus the AV
//! pre-generation ablation.
//!
//! Sweep points run in parallel on the deterministic runner
//! (`SHIELD5G_BENCH_THREADS`, default: available parallelism); results
//! and observability merge in canonical point order, so every artifact
//! is byte-identical across thread counts (the `"runner"` wall-time
//! line excluded). Every measured configuration lands as a
//! machine-readable point in `BENCH_pool_scaling.json`, and the run's
//! full observability state (metrics registry + span log) is exported
//! to the artifact directory.

use shield5g_bench::runner::threads;
use shield5g_bench::sweeps::pool_scaling_sweep;
use shield5g_bench::{banner, emit_bench_json_with_runner, export_hub, smoke};
use shield5g_obs::hub::ObsHandle;

fn main() {
    banner(
        "Sharded P-AKA enclave pool under mass registration",
        "paper §VI scaling discussion",
    );
    let hub = ObsHandle::new();
    let run = pool_scaling_sweep(&hub, threads(), smoke());
    for line in &run.lines {
        println!("{line}");
    }
    println!(
        "\n    [runner] {} jobs on {} thread(s): wall {:.2}s, {:.2}x speedup",
        run.stats.jobs,
        run.stats.threads,
        run.stats.wall.as_secs_f64(),
        run.stats.speedup(),
    );

    println!();
    emit_bench_json_with_runner("pool_scaling", &run.points, &run.stats);
    export_hub("pool_scaling", &hub);
}
