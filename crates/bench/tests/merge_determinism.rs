//! Thread-count byte-identity: the sweep runner's canonical-order merge
//! makes every bench artifact a pure function of the job list. Running
//! the same smoke sweep on 1, 2, and 4 threads must render
//! byte-identical BENCH points, Prometheus text, metrics JSONL, and
//! span JSONL — only the (masked) `"runner"` wall-time block may vary.

use shield5g_bench::sweeps::{
    ablation_sweep, degradation_curve_sweep, fault_recovery_sweep, pool_scaling_sweep,
};
use shield5g_obs::export;
use shield5g_obs::hub::ObsHandle;

/// Everything a sweep run renders, minus wall-clock state.
#[derive(PartialEq, Eq, Debug)]
struct Rendered {
    lines: Vec<String>,
    bench_json: String,
    prometheus: String,
    metrics_jsonl: String,
    spans_jsonl: String,
}

fn render(name: &str, hub: &ObsHandle, lines: Vec<String>, points: &[String]) -> Rendered {
    hub.with(|o| Rendered {
        lines,
        bench_json: export::bench_json(name, points),
        prometheus: export::prometheus(&o.registry),
        metrics_jsonl: export::metrics_jsonl(&o.registry),
        spans_jsonl: export::spans_jsonl(&o.spans),
    })
}

fn assert_identical(serial: &Rendered, threaded: &Rendered, what: &str) {
    assert_eq!(serial.lines, threaded.lines, "{what}: table lines diverged");
    assert_eq!(
        serial.bench_json, threaded.bench_json,
        "{what}: BENCH points diverged"
    );
    assert_eq!(
        serial.prometheus, threaded.prometheus,
        "{what}: prometheus diverged"
    );
    assert_eq!(
        serial.metrics_jsonl, threaded.metrics_jsonl,
        "{what}: metrics jsonl diverged"
    );
    assert_eq!(
        serial.spans_jsonl, threaded.spans_jsonl,
        "{what}: spans jsonl diverged"
    );
}

#[test]
fn pool_scaling_is_thread_count_invariant() {
    let run_at = |threads: usize| {
        let hub = ObsHandle::new();
        let run = pool_scaling_sweep(&hub, threads, true);
        assert_eq!(run.stats.threads, threads);
        render("pool_scaling", &hub, run.lines, &run.points)
    };
    let serial = run_at(1);
    assert!(!serial.prometheus.is_empty(), "sweep must record metrics");
    assert!(!serial.spans_jsonl.is_empty(), "sweep must record spans");
    assert_identical(&serial, &run_at(2), "pool_scaling 1 vs 2 threads");
    assert_identical(&serial, &run_at(4), "pool_scaling 1 vs 4 threads");
}

#[test]
fn fault_sweep_is_thread_count_invariant() {
    let run_at = |threads: usize| {
        let hub = ObsHandle::new();
        let run = fault_recovery_sweep(&hub, threads, true);
        render("fault_sweep", &hub, run.lines, &run.points)
    };
    let serial = run_at(1);
    assert!(!serial.prometheus.is_empty(), "sweep must record metrics");
    assert_identical(&serial, &run_at(2), "fault_sweep 1 vs 2 threads");
}

#[test]
fn degradation_sweep_is_thread_count_invariant() {
    let run_at = |threads: usize| {
        let hub = ObsHandle::new();
        let run = degradation_curve_sweep(&hub, threads, true);
        render("degradation", &hub, run.lines, &run.points)
    };
    let serial = run_at(1);
    assert!(!serial.prometheus.is_empty(), "sweep must record metrics");
    assert_identical(&serial, &run_at(2), "degradation 1 vs 2 threads");
    assert_identical(&serial, &run_at(4), "degradation 1 vs 4 threads");
}

#[test]
fn ablation_is_thread_count_invariant() {
    let run_at = |threads: usize| {
        let hub = ObsHandle::new();
        let run = ablation_sweep(&hub, threads, true, 1);
        render("ablation", &hub, run.lines, &run.points)
    };
    let serial = run_at(1);
    assert_identical(&serial, &run_at(4), "ablation 1 vs 4 threads");
}

#[test]
fn runner_block_is_excluded_from_the_identity() {
    // The full artifact (with the runner line) masks down to the same
    // document whatever the stats say — the invariant check.sh and CI
    // enforce with `grep -v '"runner"'`.
    let hub = ObsHandle::new();
    let run = fault_recovery_sweep(&hub, 2, true);
    let doc = export::bench_json_with_runner("fault_sweep", &run.points, &run.stats.to_json());
    let masked: Vec<&str> = doc.lines().filter(|l| !l.contains("\"runner\"")).collect();
    assert_eq!(
        masked.len(),
        doc.lines().count() - 1,
        "exactly one runner line to mask"
    );
    assert!(doc.contains("\"threads\":2"));
    assert!(doc.contains("\"wall_time_s\":"));
    assert!(doc.contains("\"speedup\":"));
}

#[test]
fn no_silent_hub_misses_during_a_sweep() {
    // Every job thread installs its own hub: a parallel sweep must not
    // bump the process-global miss counter.
    let before = shield5g_obs::hub::hub_misses();
    let hub = ObsHandle::new();
    let _ = fault_recovery_sweep(&hub, 4, true);
    assert_eq!(
        shield5g_obs::hub::hub_misses(),
        before,
        "sweep jobs dropped recordings on the floor"
    );
}
