//! Benchmark harness support: shared table-printing helpers for the
//! per-figure/per-table bench targets in `benches/`.
//!
//! Each bench target is a plain `main` (no criterion harness) that runs
//! the corresponding experiment from `shield5g-core::harness` /
//! `shield5g-ran` and prints the rows the paper reports, side by side
//! with the published values where the paper gives absolute numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use shield5g_core::stats::Summary;

/// Default repetition count for bench runs. The paper uses 500; the
/// default here keeps `cargo bench` comfortably fast while remaining
/// statistically stable (the simulation is deterministic per seed).
/// Override with the `SHIELD5G_REPS` environment variable.
#[must_use]
pub fn reps() -> u32 {
    std::env::var("SHIELD5G_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// True when `SHIELD5G_BENCH_SMOKE` is set to anything but `0`: CI smoke
/// mode. Bench targets shrink their sweeps to one cheap configuration
/// and a single repetition so the whole binary runs in seconds — the
/// point is catching harness regressions (panics, API drift, degenerate
/// outputs), not producing paper-grade statistics.
#[must_use]
pub fn smoke() -> bool {
    std::env::var("SHIELD5G_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

/// Prints a banner for an experiment.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("    (reproduces {paper_ref})");
}

/// Formats a summary as `median [p25..p75]`.
#[must_use]
pub fn fmt_summary(s: &Summary) -> String {
    format!("{} [{}..{}]", s.median, s.p25, s.p75)
}

/// Prints a `measured vs paper` line.
pub fn compare(label: &str, measured: impl std::fmt::Display, paper: &str) {
    println!("    {label:44} measured {measured:>14}   paper {paper}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_sim::time::SimDuration;

    #[test]
    fn reps_default() {
        if std::env::var("SHIELD5G_REPS").is_err() {
            assert_eq!(reps(), 200);
        }
    }

    #[test]
    fn fmt_summary_contains_median() {
        let s = Summary::of(&[SimDuration::from_micros(47)]);
        assert!(fmt_summary(&s).contains("47"));
    }
}
