//! Benchmark harness support: shared table-printing helpers for the
//! per-figure/per-table bench targets in `benches/`.
//!
//! Each bench target is a plain `main` (no criterion harness) that runs
//! the corresponding experiment from `shield5g-core::harness` /
//! `shield5g-ran` and prints the rows the paper reports, side by side
//! with the published values where the paper gives absolute numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod sweeps;

use shield5g_core::stats::Summary;
use shield5g_obs::export;
use shield5g_obs::hub::ObsHandle;

/// Default repetition count for bench runs. The paper uses 500; the
/// default here keeps `cargo bench` comfortably fast while remaining
/// statistically stable (the simulation is deterministic per seed).
/// Override with the `SHIELD5G_REPS` environment variable.
#[must_use]
pub fn reps() -> u32 {
    std::env::var("SHIELD5G_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// True when `SHIELD5G_BENCH_SMOKE` is set to anything but `0`: CI smoke
/// mode. Bench targets shrink their sweeps to one cheap configuration
/// and a single repetition so the whole binary runs in seconds — the
/// point is catching harness regressions (panics, API drift, degenerate
/// outputs), not producing paper-grade statistics.
#[must_use]
pub fn smoke() -> bool {
    std::env::var("SHIELD5G_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

/// Prints a banner for an experiment.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("    (reproduces {paper_ref})");
}

/// Formats a summary as `median [p25..p75]`.
#[must_use]
pub fn fmt_summary(s: &Summary) -> String {
    format!("{} [{}..{}]", s.median, s.p25, s.p75)
}

/// Prints a `measured vs paper` line.
pub fn compare(label: &str, measured: impl std::fmt::Display, paper: &str) {
    println!("    {label:44} measured {measured:>14}   paper {paper}");
}

/// Writes `contents` as `name` into the observability artifact directory
/// (`$SHIELD5G_OBS_DIR`, default `target/obs`). An empty artifact is an
/// exporter bug: the bench exits non-zero so CI fails the build instead
/// of archiving a hollow file.
pub fn write_obs_artifact(name: &str, contents: &str) {
    match export::write_artifact(&export::obs_dir(), name, contents) {
        Ok(path) => println!("    wrote {}", path.display()),
        Err(e) => {
            eprintln!("obs export failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Emits a machine-readable `BENCH_<name>.json` perf-point document —
/// one object per measured configuration (`points` are pre-rendered JSON
/// objects, e.g. from [`shield5g_obs::export::JsonObj`]).
pub fn emit_bench_json(name: &str, points: &[String]) {
    write_obs_artifact(
        &format!("BENCH_{name}.json"),
        &export::bench_json(name, points),
    );
}

/// Emits a `BENCH_<name>.json` document whose trailing `"runner"` line
/// carries the sweep runner's wall-time/threads/speedup block — the one
/// line excluded from thread-count byte-identity comparisons.
pub fn emit_bench_json_with_runner(name: &str, points: &[String], stats: &runner::RunnerStats) {
    write_obs_artifact(
        &format!("BENCH_{name}.json"),
        &export::bench_json_with_runner(name, points, &stats.to_json()),
    );
}

/// Dumps a recording hub's registry (Prometheus text + JSONL) and span
/// log (JSONL) under `<prefix>_…` in the artifact directory.
pub fn export_hub(prefix: &str, hub: &ObsHandle) {
    hub.with(|o| {
        write_obs_artifact(
            &format!("{prefix}_metrics.prom"),
            &export::prometheus(&o.registry),
        );
        write_obs_artifact(
            &format!("{prefix}_metrics.jsonl"),
            &export::metrics_jsonl(&o.registry),
        );
        write_obs_artifact(
            &format!("{prefix}_spans.jsonl"),
            &export::spans_jsonl(&o.spans),
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_sim::time::SimDuration;

    #[test]
    fn reps_default() {
        if std::env::var("SHIELD5G_REPS").is_err() {
            assert_eq!(reps(), 200);
        }
    }

    #[test]
    fn fmt_summary_contains_median() {
        let s = Summary::of(&[SimDuration::from_micros(47)]);
        assert!(fmt_summary(&s).contains("47"));
    }
}
