//! The deterministic parallel sweep runner.
//!
//! Bench sweeps are embarrassingly parallel: every (sweep-point, seed)
//! engine run is a pure function of its inputs, single-threaded, and
//! independent of every other run. The runner fans a job list out
//! across `std::thread` workers and merges the results — and the
//! observability each job recorded — back in **canonical job order**,
//! so every artifact downstream of the merge is a pure function of the
//! job list: byte-identical whether the sweep ran on 1 thread or 16.
//!
//! The mechanics that make the merge exact:
//!
//! * each worker marks itself strict ([`hub::set_strict`]) and installs
//!   a **fresh hub per job**, so a job's metrics and spans land in its
//!   own context instead of silently no-opping (the pre-runner failure
//!   mode) or interleaving nondeterministically with other workers;
//! * after all jobs finish, the per-job [`Obs`] contexts are folded
//!   into the coordinator's hub in job-index order ([`Obs::merge`]
//!   remaps span ids exactly as a serial run would have assigned them);
//! * jobs always run on spawned workers — never inline on the caller's
//!   thread — so the caller's own ambient hub survives untouched;
//! * wall-clock time is measured but quarantined in [`RunnerStats`],
//!   which renders into the artifacts' one maskable `"runner"` line —
//!   it never touches the hub or the merged results.

use shield5g_obs::export::JsonObj;
use shield5g_obs::hub::{self, Obs, ObsHandle};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// One unit of sweep work: runs on a worker thread with a fresh hub
/// installed, returns its result. Everything it needs is moved in.
pub type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// What the runner measured about a sweep execution. Wall-clock figures
/// live here — and only here — so the merged results stay byte-
/// identical across thread counts while each BENCH artifact still
/// reports how fast the sweep ran.
#[derive(Clone, Copy, Debug)]
pub struct RunnerStats {
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Wall-clock duration from first job queued to last job merged.
    pub wall: Duration,
    /// Summed per-job execution time across all workers — what the
    /// sweep would have cost serially.
    pub busy: Duration,
}

impl RunnerStats {
    /// Effective speedup over a serial run: summed job time divided by
    /// wall time. A 4-thread run of uniform jobs reports close to 4.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / wall
        }
    }

    /// Renders the `"runner"` block for [`bench_json_with_runner`]
    /// (`threads`, `jobs`, `wall_time_s`, `busy_time_s`, `speedup`).
    ///
    /// [`bench_json_with_runner`]: shield5g_obs::export::bench_json_with_runner
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .u64("threads", self.threads as u64)
            .u64("jobs", self.jobs as u64)
            .f64("wall_time_s", self.wall.as_secs_f64())
            .f64("busy_time_s", self.busy.as_secs_f64())
            .f64("speedup", self.speedup())
            .render()
    }
}

/// Worker-thread count for bench sweeps: `SHIELD5G_BENCH_THREADS` when
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 when that is unknowable).
#[must_use]
pub fn threads() -> usize {
    if let Some(n) = std::env::var("SHIELD5G_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `jobs` across `threads` workers and merges results — and the
/// observability every job recorded — back in job order.
///
/// Each worker is strict about recording: a fresh [`ObsHandle`] is
/// installed per job, and the per-job [`Obs`] contexts are folded into
/// `hub` in job-index order after all workers finish, reproducing
/// byte-for-byte what a serial run recording into `hub` would have
/// produced. The returned results vector is index-aligned with `jobs`.
///
/// # Panics
///
/// Propagates the first job panic after all workers stop (a poisoned
/// queue mutex); panics if a worker died without delivering its slot.
#[must_use]
pub fn run_sweep<T: Send>(
    hub: &ObsHandle,
    threads: usize,
    jobs: Vec<Job<T>>,
) -> (Vec<T>, RunnerStats) {
    let threads = threads.max(1);
    let job_count = jobs.len();
    // Wall-clock speedup measurement, quarantined in RunnerStats (the
    // maskable "runner" artifact line). shield5g-lint: allow(DT001)
    let started = std::time::Instant::now();

    let queue: Mutex<VecDeque<(usize, Job<T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Mutex<Vec<Option<(T, Obs, Duration)>>> =
        Mutex::new((0..job_count).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(job_count.max(1)) {
            scope.spawn(|| {
                // A miss on a worker is a runner bug (a job recorded
                // outside its installed hub), not an obs-off run.
                hub::set_strict(true);
                loop {
                    let next = queue.lock().expect("queue poisoned").pop_front();
                    let Some((index, job)) = next else { break };
                    let job_hub = ObsHandle::new();
                    // Per-job busy-time sample for RunnerStats, never
                    // recorded to the hub. shield5g-lint: allow(DT001)
                    let job_started = std::time::Instant::now();
                    let result = {
                        let _scope = hub::scoped(&job_hub);
                        job()
                    };
                    let elapsed = job_started.elapsed();
                    let recorded = job_hub.with(std::mem::take);
                    slots.lock().expect("slots poisoned")[index] =
                        Some((result, recorded, elapsed));
                }
                hub::set_strict(false);
            });
        }
    });

    let mut results = Vec::with_capacity(job_count);
    let mut busy = Duration::ZERO;
    for slot in slots.into_inner().expect("slots poisoned") {
        let (result, recorded, elapsed) = slot.expect("worker died before delivering its job");
        // Canonical-order merge: job 0's spans and metrics land first,
        // then job 1's, … — independent of which worker ran what when.
        hub.with(|o| o.merge(recorded));
        busy += elapsed;
        results.push(result);
    }

    let stats = RunnerStats {
        threads,
        jobs: job_count,
        wall: started.elapsed(),
        busy,
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_list(n: usize) -> Vec<Job<usize>> {
        (0..n)
            .map(|i| {
                Box::new(move || {
                    hub::count("runner-test", "job", "ran", 1);
                    hub::observe("runner-test", "job", "index", i as u64);
                    i * i
                }) as Job<usize>
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_job_order() {
        let hub = ObsHandle::new();
        let (results, stats) = run_sweep(&hub, 4, job_list(9));
        assert_eq!(results, (0..9).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(stats.jobs, 9);
        assert_eq!(stats.threads, 4);
        assert_eq!(
            hub.with(|o| o.registry.counter("runner-test", "job", "ran")),
            9
        );
    }

    #[test]
    fn merged_recording_is_thread_count_invariant() {
        let render = |threads: usize| {
            let hub = ObsHandle::new();
            let (_, _) = run_sweep(&hub, threads, job_list(8));
            hub.with(|o| {
                (
                    shield5g_obs::export::prometheus(&o.registry),
                    shield5g_obs::export::spans_jsonl(&o.spans),
                )
            })
        };
        let serial = render(1);
        assert_eq!(serial, render(2));
        assert_eq!(serial, render(4));
    }

    #[test]
    fn caller_hub_survives_the_sweep() {
        let ambient = ObsHandle::new();
        let _scope = hub::scoped(&ambient);
        hub::count("caller", "main", "before", 1);
        let merged = ObsHandle::new();
        let (_, _) = run_sweep(&merged, 2, job_list(3));
        // Jobs ran on workers: the caller's ambient hub is still
        // installed and still records.
        hub::count("caller", "main", "after", 1);
        assert_eq!(
            ambient.with(|o| o.registry.counter("caller", "main", "before")),
            1
        );
        assert_eq!(
            ambient.with(|o| o.registry.counter("caller", "main", "after")),
            1
        );
        assert_eq!(
            ambient.with(|o| o.registry.counter("runner-test", "job", "ran")),
            0
        );
        assert_eq!(
            merged.with(|o| o.registry.counter("runner-test", "job", "ran")),
            3
        );
    }

    #[test]
    fn empty_job_list_is_fine() {
        let hub = ObsHandle::new();
        let (results, stats) = run_sweep::<u32>(&hub, 4, Vec::new());
        assert!(results.is_empty());
        assert_eq!(stats.jobs, 0);
        assert!(stats.speedup() >= 0.0);
    }

    #[test]
    fn stats_render_a_runner_block() {
        let hub = ObsHandle::new();
        let (_, stats) = run_sweep(&hub, 2, job_list(4));
        let json = stats.to_json();
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"jobs\":4"));
        assert!(json.contains("\"wall_time_s\":"));
        assert!(json.contains("\"speedup\":"));
    }

    #[test]
    fn threads_env_override_parses() {
        // Only exercise the parse path indirectly: threads() must be
        // positive whatever the environment says.
        assert!(threads() >= 1);
    }
}
