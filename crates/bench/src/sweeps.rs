//! Library-level sweep builders for the bench targets.
//!
//! Each builder expands its experiment into independent (sweep-point,
//! seed) jobs, fans them out through [`runner::run_sweep`], and
//! assembles the human-readable table lines and machine-readable BENCH
//! points in **canonical point order** — so both the printed tables and
//! every artifact rendered from the merged hub are byte-identical
//! regardless of `SHIELD5G_BENCH_THREADS`. The bench binaries in
//! `benches/` are thin mains over these functions, and the
//! merge-determinism tests call them directly.

use crate::runner::{self, Job, RunnerStats};
use shield5g_core::harness::ablation_optimizations;
use shield5g_faults::{self as faults, DegradationReport, FaultReport};
use shield5g_obs::export::JsonObj;
use shield5g_obs::hub::{self, ObsHandle};
use shield5g_scale::avcache::AvCacheConfig;
use shield5g_scale::harness::{
    pool_sweep, probe_service_time, run_scaling_point, scaling_points, ScalingRow, SweepConfig,
};
use shield5g_scale::metrics::PoolReport;
use shield5g_scale::queue::QueueConfig;
use shield5g_sim::time::SimDuration;

/// One executed sweep: what to print, what to export, and how fast the
/// runner got it done. `lines` and `points` are in canonical point
/// order; only `stats` (wall-clock) varies with the thread count.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// Human-readable table lines, one `println!` each (empty entries
    /// render blank lines).
    pub lines: Vec<String>,
    /// Pre-rendered BENCH JSON point objects.
    pub points: Vec<String>,
    /// Runner measurements for the artifact's `"runner"` block.
    pub stats: RunnerStats,
}

fn pool_point(scenario: &str, rho: f64, batch: u32, report: &PoolReport) -> String {
    let mut obj = JsonObj::new()
        .str("scenario", scenario)
        .u64("replicas", u64::from(report.replicas))
        .f64("rho", rho)
        .u64("batch", u64::from(batch))
        .f64("offered_per_sec", report.offered_per_sec)
        .u64("arrivals", report.arrivals)
        .u64("served", report.served)
        .u64("shed", report.shed)
        .f64("throughput_per_sec", report.throughput_per_sec)
        .raw("response", &report.response.to_json())
        .raw("queued", &report.queued.to_json());
    if let Some(cache) = &report.cache {
        obj = obj.f64("cache_hit_rate", cache.hit_rate());
    }
    obj.render()
}

/// The pool-scaling sweep: replica count × offered load against real
/// sharded eUDM pools, plus the AV pre-generation ablation. The
/// single-replica capacity probe runs on the calling thread (recording
/// into `hub`); every pool run fans out as an independent job.
#[must_use]
pub fn pool_scaling_sweep(hub: &ObsHandle, threads: usize, smoke: bool) -> SweepRun {
    let _scope = hub::scoped(hub);
    let service = probe_service_time(4100);
    let per_replica = 1.0 / service.as_secs_f64();

    let replica_counts: &[u32] = if smoke { &[1] } else { &[1, 2, 4, 8] };
    let load_factors: &[f64] = if smoke { &[0.8] } else { &[0.5, 0.8, 1.2, 2.0] };
    let batch_sizes: &[u32] = if smoke { &[8] } else { &[4, 8, 16] };

    let mut jobs: Vec<Job<PoolReport>> = Vec::new();
    for &replicas in replica_counts {
        for &load_factor in load_factors {
            let cfg = SweepConfig {
                replicas,
                offered_per_sec: load_factor * per_replica * f64::from(replicas),
                arrivals: 120 * replicas,
                ues: 40 * replicas,
                queue: QueueConfig {
                    capacity: 16,
                    deadline: SimDuration::from_millis(100),
                },
                cache: None,
            };
            let seed = 4200 + u64::from(replicas);
            jobs.push(Box::new(move || pool_sweep(seed, &cfg)));
        }
    }
    let ablation_base = SweepConfig {
        replicas: 1,
        offered_per_sec: 0.5 * per_replica,
        arrivals: if smoke { 60 } else { 240 },
        ues: 8,
        queue: QueueConfig::default(),
        cache: None,
    };
    jobs.push(Box::new(move || pool_sweep(4300, &ablation_base)));
    for &batch_size in batch_sizes {
        let cfg = SweepConfig {
            cache: Some(AvCacheConfig {
                batch_size,
                capacity_per_supi: batch_size as usize * 2,
            }),
            ..ablation_base
        };
        jobs.push(Box::new(move || pool_sweep(4300, &cfg)));
    }

    let (reports, stats) = runner::run_sweep(hub, threads, jobs);

    let mut lines = Vec::new();
    let mut points = Vec::new();
    lines.push(format!(
        "    single-replica service time {service} (~{per_replica:.0} auth/s capacity)"
    ));
    lines.push(String::new());
    lines.push("    Throughput sweep (replicas x offered load, cache off):".to_owned());
    let mut next = reports.iter();
    for &_replicas in replica_counts {
        for &load_factor in load_factors {
            let report = next.next().expect("throughput report");
            lines.push(format!("      rho={load_factor:.1} {report}"));
            points.push(pool_point("throughput_sweep", load_factor, 0, report));
        }
        lines.push(String::new());
    }
    lines.push("    AV pre-generation ablation (1 replica, repeat subscribers):".to_owned());
    let off = next.next().expect("cache-off report");
    lines.push(format!("      cache off: {off}"));
    points.push(pool_point("av_ablation", 0.5, 0, off));
    for &batch_size in batch_sizes {
        let on = next.next().expect("cache-on report");
        let cache = on.cache.as_ref().expect("cache stats");
        lines.push(format!(
            "      batch {batch_size:>2}:  {on} (hit rate {:.0}%)",
            100.0 * cache.hit_rate()
        ));
        points.push(pool_point("av_ablation", 0.5, batch_size, on));
    }
    lines.push(String::new());
    lines.push("    One batched round trip pays the ~91-transition HTTPS choreography".to_owned());
    lines.push("    once per batch; cache hits are served VNF-local without entering".to_owned());
    lines.push("    the enclave, so EENTER/request falls roughly by the batch factor.".to_owned());

    SweepRun {
        lines,
        points,
        stats,
    }
}

fn availability(served: u64, arrivals: u64) -> f64 {
    100.0 * served as f64 / arrivals as f64
}

fn fault_point(scenario: &str, rate: f64, report: &FaultReport) -> String {
    JsonObj::new()
        .str("scenario", scenario)
        .f64("sbi_fault_rate", rate)
        .u64("arrivals", report.pool.arrivals)
        .u64("served", report.pool.served)
        .u64("shed", report.pool.shed)
        .f64(
            "availability_pct",
            availability(report.pool.served, report.pool.arrivals),
        )
        .u64("mttr_ns", report.recovery.mttr.as_nanos())
        .u64("mttr_max_ns", report.recovery.mttr_max.as_nanos())
        .f64("goodput_per_sec", report.recovery.goodput_per_sec)
        .f64("retry_amplification", report.recovery.retry_amplification)
        .u64("sbi_drops", report.sbi.drops)
        .u64("sbi_delays", report.sbi.delays)
        .u64("sbi_errors", report.sbi.errors)
        .u64("purged_avs", report.purged_avs as u64)
        .u64("crash_recoveries", report.crash_recoveries)
        .raw("response", &report.pool.response.to_json())
        .render()
}

/// The fault-injection recovery sweep: the SBI-rate availability curve,
/// a replica kill with warm-standby failover, and an enclave crash with
/// AEX storm — every point an independent job.
///
/// # Panics
///
/// Panics when the replica-kill point reports no failover (its
/// `kill_at` must fire).
#[must_use]
pub fn fault_recovery_sweep(hub: &ObsHandle, threads: usize, smoke: bool) -> SweepRun {
    let _scope = hub::scoped(hub);
    let specs = faults::bench_points(smoke);
    let jobs: Vec<Job<FaultReport>> = specs
        .iter()
        .map(|&spec| Box::new(move || faults::run_point(&spec)) as Job<FaultReport>)
        .collect();
    let (reports, stats) = runner::run_sweep(hub, threads, jobs);

    let mut lines = Vec::new();
    let mut points = Vec::new();
    lines.push("    Availability vs SBI fault rate (2 replicas, supervision retries):".to_owned());
    lines.push(format!(
        "      {:>6}  {:>7}  {:>10}  {:>10}  {:>6}  {:>12}",
        "rate", "avail", "mttr", "goodput/s", "ampl", "drop/dly/5xx"
    ));
    for (spec, report) in specs.iter().zip(&reports) {
        match spec.scenario {
            "sbi_fault_rate" => {
                lines.push(format!(
                    "      {:>5.0}%  {:>6.1}%  {:>10}  {:>10.0}  {:>5.2}x  {:>4}/{}/{}",
                    100.0 * spec.rate,
                    availability(report.pool.served, report.pool.arrivals),
                    report.recovery.mttr,
                    report.recovery.goodput_per_sec,
                    report.recovery.retry_amplification,
                    report.sbi.drops,
                    report.sbi.delays,
                    report.sbi.errors,
                ));
            }
            "replica_kill" => {
                let failover = report.failover.as_ref().expect("kill_at fired");
                lines.push(String::new());
                lines
                    .push("    Replica death with warm-standby failover (AV cache on):".to_owned());
                lines.push(format!(
                    "      availability {:.1}%, failover {} (standby promoted: {}), {} AVs purged",
                    availability(report.pool.served, report.pool.arrivals),
                    failover.failover,
                    failover.standby_promoted,
                    report.purged_avs,
                ));
                lines.push(format!("      {report}"));
            }
            _ => {
                lines.push(String::new());
                lines.push("    Enclave crash with AEX storm (reload on next request):".to_owned());
                lines.push(format!(
                    "      availability {:.1}%, {} crash reload(s), worst response {} \
                     (reload visible: {})",
                    availability(report.pool.served, report.pool.arrivals),
                    report.crash_recoveries,
                    report.pool.response.max,
                    report.pool.response.max > SimDuration::from_secs(30),
                ));
                lines.push(format!("      {report}"));
            }
        }
        points.push(fault_point(spec.scenario, spec.rate, report));
    }
    lines.push(String::new());
    lines.push("    Every run is a pure function of its seed: the fault schedule,".to_owned());
    lines.push("    workload, and retry jitter come from forked DetRng streams, so".to_owned());
    lines.push("    rerunning any row reproduces it byte-for-byte.".to_owned());

    SweepRun {
        lines,
        points,
        stats,
    }
}

fn degradation_point(scenario: &str, rate: f64, report: &DegradationReport) -> String {
    let mut obj = JsonObj::new()
        .str("scenario", scenario)
        .f64("sbi_fault_rate", rate)
        .u64(
            "arrivals",
            report.normal.arrivals + report.emergency.arrivals,
        )
        .u64("normal_arrivals", report.normal.arrivals)
        .u64("normal_served", report.normal.served)
        .u64("normal_lost", report.normal.lost)
        .f64(
            "normal_availability_pct",
            100.0 * report.normal.availability,
        )
        .f64("normal_goodput_per_sec", report.normal.goodput_per_sec)
        .u64("emergency_arrivals", report.emergency.arrivals)
        .u64("emergency_served", report.emergency.served)
        .u64("emergency_lost", report.emergency.lost)
        .f64(
            "emergency_availability_pct",
            100.0 * report.emergency.availability,
        )
        .f64(
            "emergency_goodput_per_sec",
            report.emergency.goodput_per_sec,
        )
        .u64("shed_normal", report.sheds.normal)
        .u64("shed_emergency", report.sheds.emergency)
        .u64("retries", report.retry.retries)
        .u64("sbi_drops", report.sbi.drops)
        .u64("sbi_delays", report.sbi.delays)
        .u64("sbi_errors", report.sbi.errors)
        .u64("ejections", report.ejections)
        .u64("reinstatements", report.reinstatements)
        .u64("probes", report.probes)
        .u64("brownout_entries", report.brownout_entries)
        .u64("brownout_exits", report.brownout_exits)
        .u64("span_ns", report.span.as_nanos());
    if let Some(ewma) = report.latency_ewma_ns {
        obj = obj.f64("latency_ewma_us", ewma / 1_000.0);
    }
    obj.render()
}

/// The graceful-degradation sweep: per-priority-class availability /
/// goodput / shed-rate curves as the SBI fault rate ramps against the
/// full overload-control stack (priority admission, health-gated
/// routing, brownout), plus the cache-brownout scenario — every point
/// an independent job.
#[must_use]
pub fn degradation_curve_sweep(hub: &ObsHandle, threads: usize, smoke: bool) -> SweepRun {
    let _scope = hub::scoped(hub);
    let specs = faults::degradation_points(smoke);
    let jobs: Vec<Job<DegradationReport>> = specs
        .iter()
        .map(|&spec| {
            Box::new(move || faults::run_degradation_point(&spec)) as Job<DegradationReport>
        })
        .collect();
    let (reports, stats) = runner::run_sweep(hub, threads, jobs);

    let mut lines = Vec::new();
    let mut points = Vec::new();
    lines.push(
        "    Availability per priority class vs SBI fault rate (priority admission,".to_owned(),
    );
    lines.push("    health-gated routing, half-open probes):".to_owned());
    lines.push(format!(
        "      {:>6}  {:>8}  {:>8}  {:>9}  {:>11}  {:>8}",
        "rate", "normal", "emerg", "shed n/e", "eject/back", "retries"
    ));
    for (spec, report) in specs.iter().zip(&reports) {
        match spec.scenario {
            "fault_ramp" => {
                lines.push(format!(
                    "      {:>5.0}%  {:>7.1}%  {:>7.1}%  {:>4}/{:<4}  {:>5}/{:<5}  {:>8}",
                    100.0 * spec.rate,
                    100.0 * report.normal.availability,
                    100.0 * report.emergency.availability,
                    report.sheds.normal,
                    report.sheds.emergency,
                    report.ejections,
                    report.reinstatements,
                    report.retry.retries,
                ));
            }
            _ => {
                lines.push(String::new());
                lines.push(
                    "    Cache brownout under EPC thrash (prefetch off, cache-only hits):"
                        .to_owned(),
                );
                lines.push(format!(
                    "      normal {:.1}%, emergency {:.1}%, brownout in/out {}/{}, \
                     latency EWMA {:.0} us",
                    100.0 * report.normal.availability,
                    100.0 * report.emergency.availability,
                    report.brownout_entries,
                    report.brownout_exits,
                    report.latency_ewma_ns.unwrap_or(0.0) / 1_000.0,
                ));
            }
        }
        points.push(degradation_point(spec.scenario, spec.rate, report));
    }
    lines.push(String::new());
    lines.push("    Emergency registrations (TS 23.501 §5.16.4) ride reserved queue".to_owned());
    lines.push("    headroom: as the fault rate ramps, the normal class is shed first".to_owned());
    lines.push("    and emergency availability degrades strictly slower.".to_owned());

    SweepRun {
        lines,
        points,
        stats,
    }
}

/// Output of one ablation-sweep job: either the optimisation-ablation
/// row set or one horizontal-scaling row.
enum AblationOut {
    Rows(Vec<shield5g_core::harness::AblationRow>),
    Scaling(ScalingRow),
}

/// The §V-B7 ablation sweep: the optimisation ablation (one job — its
/// rows share an engine run) plus one job per horizontal-scaling
/// instance count. The single-replica capacity probe runs on the
/// calling thread.
///
/// # Panics
///
/// Panics if the runner returns a job list shape it was not given (an
/// internal error).
#[must_use]
pub fn ablation_sweep(hub: &ObsHandle, threads: usize, smoke: bool, reps: u32) -> SweepRun {
    let _scope = hub::scoped(hub);
    let max_instances = if smoke { 2 } else { 4 };
    let scaling_reps = (reps / 4).max(10);
    let service = probe_service_time(1900);

    let mut jobs: Vec<Job<AblationOut>> = Vec::new();
    jobs.push(Box::new(move || {
        AblationOut::Rows(ablation_optimizations(1800, reps))
    }));
    for point in scaling_points(1900, scaling_reps, max_instances, service) {
        jobs.push(Box::new(move || {
            AblationOut::Scaling(run_scaling_point(&point))
        }));
    }
    let (outputs, stats) = runner::run_sweep(hub, threads, jobs);

    let mut lines = Vec::new();
    let mut points = Vec::new();
    let mut outputs = outputs.into_iter();
    let Some(AblationOut::Rows(rows)) = outputs.next() else {
        panic!("ablation rows must be the first job");
    };
    let baseline = rows[0].r_stable.median;
    for row in &rows {
        let speedup = baseline.as_nanos() as f64 / row.r_stable.median.as_nanos() as f64;
        lines.push(format!(
            "    {:24} {:>26}   {:.2}x vs baseline",
            row.label,
            crate::fmt_summary(&row.r_stable),
            speedup
        ));
        points.push(
            JsonObj::new()
                .str("scenario", "ablation")
                .str("label", &row.label)
                .f64("speedup_vs_baseline", speedup)
                .raw("r_stable", &row.r_stable.to_json())
                .render(),
        );
    }
    lines.push(String::new());
    lines.push("    Horizontal scaling (real eUDM replica pool, shield5g-scale):".to_owned());
    for output in outputs {
        let AblationOut::Scaling(row) = output else {
            panic!("scaling rows must follow the ablation rows");
        };
        lines.push(format!(
            "      {} instance(s): stable R {} -> {:.0} authentications/s ({} shed)",
            row.instances, row.stable_response, row.throughput_per_sec, row.shed
        ));
        points.push(
            JsonObj::new()
                .str("scenario", "horizontal_scaling")
                .u64("instances", u64::from(row.instances))
                .u64("stable_response_ns", row.stable_response.as_nanos())
                .f64("throughput_per_sec", row.throughput_per_sec)
                .u64("shed", row.shed)
                .render(),
        );
    }

    SweepRun {
        lines,
        points,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_points_cover_all_three_layers() {
        let specs = faults::bench_points(true);
        let scenarios: Vec<&str> = specs.iter().map(|s| s.scenario).collect();
        assert_eq!(
            scenarios,
            ["sbi_fault_rate", "replica_kill", "enclave_crash"]
        );
        let full = faults::bench_points(false);
        assert_eq!(full.len(), 8, "6 rates + kill + crash");
    }

    #[test]
    fn degradation_points_cover_ramp_and_brownout() {
        let specs = faults::degradation_points(true);
        assert_eq!(specs.last().map(|s| s.scenario), Some("brownout"));
        assert!(specs.iter().filter(|s| s.scenario == "fault_ramp").count() >= 2);
        let full = faults::degradation_points(false);
        assert_eq!(full.len(), 7, "6 ramp rates + brownout");
    }
}
