//! Slice migration: relocating a P-AKA module to another HMEE-capable
//! host.
//!
//! §V-B1 notes enclave load time "is important to take into account when
//! considering slice creation or migration time", and §VI's KI 11/12
//! require that functions only land on hosts whose security posture is
//! *verified* — "the deployment of NFs should be preceded by a validation
//! process utilizing secure hardware-backed attestation". This module
//! implements that flow:
//!
//! 1. deploy a fresh enclave module on the target host (pays the Fig. 7
//!    load time),
//! 2. remote-attest it (quote over MRENCLAVE/MRSIGNER, verified against
//!    the registered platform),
//! 3. transfer the subscriber keys over an attested secure channel,
//! 4. swap the live traffic to the new instance and retire the old one
//!    (wiping its resources — the KI 5 lifecycle requirement).

use crate::paka::{PakaKind, PakaModule, SgxConfig};
use crate::slice::Slice;
use crate::CoreError;
use shield5g_hmee::attest::{AttestationService, QuotePolicy, Report};
use shield5g_hmee::enclave::Enclave;
use shield5g_infra::host::Host;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;

/// Per-key transfer cost over the attested TLS channel (ECDH-wrapped key
/// blob plus acknowledgement).
const KEY_TRANSFER_NANOS: u64 = 160_000;

/// Outcome of a module migration.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// Time to bring the target enclave up (the Fig. 7 load time plus
    /// server init).
    pub target_load_time: SimDuration,
    /// Whether the target enclave passed attestation before receiving
    /// any key material.
    pub attested: bool,
    /// Subscriber keys re-provisioned.
    pub keys_transferred: usize,
    /// Wall time of the whole migration (deploy + attest + transfer +
    /// swap).
    pub total_time: SimDuration,
}

/// Attests a deployed module's enclave against the vendor policy.
///
/// # Errors
///
/// Returns [`CoreError::Hmee`] when the quote fails verification (wrong
/// platform, forged measurement, or an unregistered host).
pub fn attest_module(
    module: &PakaModule,
    host: &Host,
    service: &AttestationService,
) -> Result<(), CoreError> {
    let platform = host
        .platform()
        .ok_or(shield5g_hmee::HmeeError::AttestationFailed(
            "target host has no SGX platform".into(),
        ))?;
    let container = module.container();
    let container = container.borrow();
    let enclave: &Enclave = container.shielded.as_ref().map(|l| l.enclave()).ok_or(
        shield5g_hmee::HmeeError::AttestationFailed("module is not enclave-shielded".into()),
    )?;
    let report = Report::create(enclave, [0u8; 64]);
    let quote = platform.quote(&report).map_err(CoreError::Hmee)?;
    // Vendor policy: any build signed with the P-AKA signing identity;
    // debug allowed because the paper's stats builds are debug-mode.
    let mut policy = QuotePolicy::signer(*enclave.mrsigner());
    policy.allow_debug = true;
    service.verify(&quote, &policy).map_err(CoreError::Hmee)
}

/// Migrates the `kind` module of `slice` onto `target` host.
///
/// On success the slice's module handle points at the new instance (all
/// wired backends follow automatically) and the old container is removed
/// with its plain memory wiped.
///
/// # Errors
///
/// * [`CoreError::Libos`] when the target cannot boot the enclave.
/// * [`CoreError::Hmee`] when attestation fails — in that case **no key
///   material is transferred** and the old module keeps serving.
/// * [`CoreError::Module`] when the slice has no such module (monolithic
///   deployment).
pub fn migrate_module(
    env: &mut Env,
    slice: &mut Slice,
    kind: PakaKind,
    target: &mut Host,
    service: &AttestationService,
    cfg: SgxConfig,
) -> Result<MigrationReport, CoreError> {
    let module_handle = slice.module(kind).ok_or_else(|| CoreError::Module {
        module: kind.name().to_owned(),
        status: 404,
        detail: "slice has no extracted module (monolithic deployment)".into(),
    })?;
    let t0 = env.clock.now();

    // 1. Deploy on the target (pays enclave load).
    let mut new_module = PakaModule::deploy_sgx(env, target, &slice.registry, kind, cfg)?;
    let target_load_time = new_module
        .boot_report()
        .expect("sgx deployment has boot report")
        .load_time;

    // 2. Attest before any secret leaves the old enclave (KI 11/12).
    attest_module(&new_module, target, service)?;

    // 3. Transfer subscriber keys over the attested channel.
    let slots: Vec<String> = {
        let old = module_handle.borrow();
        let container = old.container();
        let container = container.borrow();
        match container.shielded.as_ref() {
            Some(libos) => libos
                .enclave()
                .vault_slots()
                .into_iter()
                .filter(|s| s.starts_with("k:"))
                .collect(),
            None => Vec::new(),
        }
    };
    let mut keys_transferred = 0;
    for slot in &slots {
        let key_bytes = {
            let old = module_handle.borrow_mut();
            let container = old.container();
            let mut container = container.borrow_mut();
            let libos = container.shielded.as_mut().expect("old module shielded");
            libos
                .enclave_mut()
                .vault_read(env, slot)
                .map_err(CoreError::Hmee)?
        };
        let supi = slot.trim_start_matches("k:");
        let key: [u8; 16] = key_bytes
            .as_slice()
            .try_into()
            .map_err(|_| CoreError::Module {
                module: kind.name().to_owned(),
                status: 500,
                detail: format!("stored key for {supi} has wrong length"),
            })?;
        env.clock
            .advance(SimDuration::from_nanos(KEY_TRANSFER_NANOS));
        new_module.provision_subscriber_key(env, supi, key);
        keys_transferred += 1;
    }

    // 4. Swap live traffic to the new instance; retire and wipe the old.
    let old_module = std::mem::replace(&mut *module_handle.borrow_mut(), new_module);
    let old_container_name = old_module.container().borrow().name.clone();
    drop(old_module);
    slice.host.remove_container(&old_container_name, true).ok();

    env.log.record(
        env.clock.now(),
        "slice",
        format!(
            "migrated {} to host {} ({keys_transferred} keys)",
            kind.name(),
            target.name()
        ),
    );
    Ok(MigrationReport {
        target_load_time,
        attested: true,
        keys_transferred,
        total_time: env.clock.now() - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::standard_request;
    use crate::slice::{build_slice, AkaDeployment, SliceConfig};
    use shield5g_hmee::platform::SgxPlatform;

    fn sgx_slice(seed: u64) -> (Env, Slice) {
        let mut env = Env::new(seed);
        env.log.disable();
        let slice = build_slice(
            &mut env,
            &SliceConfig {
                deployment: AkaDeployment::Sgx(SgxConfig::default()),
                subscriber_count: 3,
            },
        )
        .unwrap();
        (env, slice)
    }

    #[test]
    fn migration_preserves_service() {
        let (mut env, mut slice) = sgx_slice(61);
        // Serve one request pre-migration.
        let mut client = slice.client_for(PakaKind::EUdm, "udm.oai").unwrap();
        let req = standard_request(PakaKind::EUdm);
        let before = client.call(&mut env, &req.path, req.body.clone()).unwrap();

        // Migrate to a fresh host with a registered platform.
        let platform = SgxPlatform::new(&mut env);
        let mut service = AttestationService::new();
        service.register_platform(&platform);
        let mut target = Host::with_sgx("r451", platform);
        let report = migrate_module(
            &mut env,
            &mut slice,
            PakaKind::EUdm,
            &mut target,
            &service,
            SgxConfig::default(),
        )
        .unwrap();
        assert!(report.attested);
        assert_eq!(report.keys_transferred, 3);
        assert!(report.target_load_time > SimDuration::from_secs(50));
        assert!(report.total_time >= report.target_load_time);

        // The same client handle keeps working and produces identical
        // crypto (same subscriber key, same request → same AV).
        let after = client.call(&mut env, &req.path, req.body.clone()).unwrap();
        assert_eq!(before, after);
        // Old container is gone from the source host.
        assert!(!slice
            .host
            .container_names()
            .contains(&PakaKind::EUdm.endpoint().to_owned()));
    }

    #[test]
    fn unattested_target_receives_no_keys() {
        let (mut env, mut slice) = sgx_slice(62);
        let platform = SgxPlatform::new(&mut env);
        let mut target = Host::with_sgx("rogue", platform);
        // The attestation service does NOT know the target platform.
        let service = AttestationService::new();
        let err = migrate_module(
            &mut env,
            &mut slice,
            PakaKind::EUdm,
            &mut target,
            &service,
            SgxConfig::default(),
        );
        assert!(matches!(err, Err(CoreError::Hmee(_))), "{err:?}");
        // The old module keeps serving.
        let mut client = slice.client_for(PakaKind::EUdm, "udm.oai").unwrap();
        let req = standard_request(PakaKind::EUdm);
        client.call(&mut env, &req.path, req.body.clone()).unwrap();
    }

    #[test]
    fn monolithic_slice_has_nothing_to_migrate() {
        let mut env = Env::new(63);
        env.log.disable();
        let mut slice = build_slice(
            &mut env,
            &SliceConfig {
                deployment: AkaDeployment::Monolithic,
                subscriber_count: 1,
            },
        )
        .unwrap();
        let platform = SgxPlatform::new(&mut env);
        let mut service = AttestationService::new();
        service.register_platform(&platform);
        let mut target = Host::with_sgx("r451", platform);
        assert!(matches!(
            migrate_module(
                &mut env,
                &mut slice,
                PakaKind::EUdm,
                &mut target,
                &service,
                SgxConfig::default()
            ),
            Err(CoreError::Module { status: 404, .. })
        ));
    }

    #[test]
    fn attest_module_rejects_container_deployment() {
        let mut env = Env::new(64);
        env.log.disable();
        let slice = build_slice(
            &mut env,
            &SliceConfig {
                deployment: AkaDeployment::Container,
                subscriber_count: 1,
            },
        )
        .unwrap();
        let module = slice.module(PakaKind::EUdm).unwrap();
        let service = AttestationService::new();
        assert!(attest_module(&module.borrow(), &slice.host, &service).is_err());
    }
}
