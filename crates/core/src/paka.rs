//! The P-AKA modules: eUDM-AKA, eAUSF-AKA and eAMF-AKA.
//!
//! Each module is "an HTTPs server … The modules expose REST API
//! endpoints where each AKA function is mapped to an endpoint handler"
//! (paper §IV-A). The server loop is modelled syscall-by-syscall: a fresh
//! TLS connection per request costs 91 syscalls (matching the paper's
//! §V-B5 finding of "around 90" EENTER/EEXIT pairs per UE registration),
//! of which only a handful fall between request receipt and response
//! dispatch — which is why SGX's total-latency overhead (L_T) is much
//! smaller than its response-time overhead (R_S).
//!
//! Deployed in a container, syscalls are native and secrets sit in plain
//! process memory; deployed under GSC (**P-AKA** proper), every syscall is
//! an OCALL and secrets live in the encrypted enclave vault.

use crate::CoreError;
use shield5g_crypto::keys::generate_he_av;
use shield5g_crypto::milenage::Milenage;
use shield5g_crypto::sqn::Auts;
use shield5g_hmee::counters::SgxCounters;
use shield5g_infra::host::{ContainerHandle, Host};
use shield5g_infra::image::{ContainerImage, Registry};
use shield5g_libos::gsc::ImageSpec;
use shield5g_libos::libos::BootReport;
use shield5g_libos::manifest::Manifest;
use shield5g_libos::syscalls::{NativeSyscalls, Syscall, SyscallInterface};
use shield5g_nf::backend::{
    batch_rand, encode_he_av, encode_he_av_batch, sqn_add, AmfAkaRequest, AusfAkaRequest,
    AusfAkaResponse, UdmAkaBatchRequest, UdmAkaRequest, MAX_AV_BATCH,
};
use shield5g_nf::NfError;
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::time::SimDuration;
use shield5g_sim::tls::TlsIdentity;
use shield5g_sim::Env;

/// Non-crypto handler work per request outside the AKA function itself
/// (HTTP parsing, routing, response assembly) — identical code on both
/// deployments.
const PARSE_NANOS: u64 = 17_000;
/// Server-side TLS handshake cryptography (X25519 + KDF + transcript MACs).
const TLS_HANDSHAKE_CRYPTO_NANOS: u64 = 72_000;
/// Per-direction TLS record protection within the request window.
const TLS_RECORD_NANOS: u64 = 4_000;
/// Container-mode first-request lazy initialisation (allocator warmup,
/// OpenSSL context creation).
const CONTAINER_COLD_INIT_NANOS: u64 = 2_000_000;

/// The three extracted modules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PakaKind {
    /// eUDM-AKA: HE AV generation (f1, f2345, K_AUSF, AUTN).
    EUdm,
    /// eAUSF-AKA: HXRES* and K_SEAF derivation.
    EAusf,
    /// eAMF-AKA: K_AMF derivation.
    EAmf,
}

impl PakaKind {
    /// Human-readable module name as used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PakaKind::EUdm => "eUDM",
            PakaKind::EAusf => "eAUSF",
            PakaKind::EAmf => "eAMF",
        }
    }

    /// All three modules in paper order.
    #[must_use]
    pub fn all() -> [PakaKind; 3] {
        [PakaKind::EUdm, PakaKind::EAusf, PakaKind::EAmf]
    }

    /// Container image name.
    #[must_use]
    pub fn image_name(self) -> &'static str {
        match self {
            PakaKind::EUdm => "oai/eudm-paka:v1.5.0",
            PakaKind::EAusf => "oai/eausf-paka:v1.5.0",
            PakaKind::EAmf => "oai/eamf-paka:v1.5.0",
        }
    }

    /// Bus/bridge endpoint name.
    #[must_use]
    pub fn endpoint(self) -> &'static str {
        match self {
            PakaKind::EUdm => "eudm-paka.oai",
            PakaKind::EAusf => "eausf-paka.oai",
            PakaKind::EAmf => "eamf-paka.oai",
        }
    }

    /// Native execution time of the module's AKA function (container-mode
    /// L_F, from `shield5g-nf`'s calibrated constants).
    #[must_use]
    pub fn func_nanos(self) -> u64 {
        match self {
            PakaKind::EUdm => shield5g_nf::backend::UDM_FUNC_NANOS,
            PakaKind::EAusf => shield5g_nf::backend::AUSF_FUNC_NANOS,
            PakaKind::EAmf => shield5g_nf::backend::AMF_FUNC_NANOS,
        }
    }

    /// Additive in-enclave execution overhead beyond the MEE factor
    /// (LLC/TLB pressure on the module's access pattern). Calibrated so
    /// the L_F ratios land in the paper's 1.2/1.3/1.5 bands (Table II).
    fn sgx_func_extra_nanos(self) -> u64 {
        match self {
            PakaKind::EUdm => 8_000,
            PakaKind::EAusf => 10_000,
            PakaKind::EAmf => 14_000,
        }
    }

    /// First-enclave-request lazy-initialisation compute (dynamic linking,
    /// OpenSSL/NSS init under the LibOS), the cause of R_I ≈ 20 × R_S.
    fn cold_init_nanos(self) -> u64 {
        match self {
            PakaKind::EUdm => 20_600_000,
            PakaKind::EAusf => 20_900_000,
            PakaKind::EAmf => 21_300_000,
        }
    }

    /// Extra OCALLs on the first enclave request (dynamic loading of
    /// NSS/TLS dependencies, §V-B4: "the initial request … invokes
    /// several OCALLs and ECALLs to load drivers and other network stack
    /// dependencies").
    fn cold_extra_ocalls(self) -> u32 {
        match self {
            PakaKind::EUdm => 20,
            PakaKind::EAusf => 21,
            PakaKind::EAmf => 22,
        }
    }

    /// Cold code pages faulted on the first request.
    fn cold_pages(self) -> u64 {
        match self {
            PakaKind::EUdm => 288,
            PakaKind::EAusf => 314,
            PakaKind::EAmf => 348,
        }
    }

    /// (total image bytes, shared-library file count, boot working set):
    /// eUDM carries the largest root FS (highest enclave load time,
    /// Fig. 7) while eAUSF/eAMF have slightly more files (their higher
    /// boot OCALL counts in Table III).
    fn image_params(self) -> (u64, u32, u64) {
        match self {
            PakaKind::EUdm => (2_130_000_000, 200, 9_000 * 4096),
            PakaKind::EAusf => (2_080_000_000, 210, 9_100 * 4096),
            PakaKind::EAmf => (2_050_000_000, 209, 9_200 * 4096),
        }
    }
}

/// SGX deployment options (the paper's manifest knobs, §IV-C / §V-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SgxConfig {
    /// `sgx.max_threads`.
    pub max_threads: u32,
    /// Enclave (EPC reservation) size in bytes.
    pub enclave_size_bytes: u64,
    /// `sgx.preheat_enclave`.
    pub preheat: bool,
    /// Gramine exitless OCALLs (§V-B7 ablation).
    pub exitless: bool,
}

impl Default for SgxConfig {
    /// The paper's chosen configuration: 4 threads, 512 MB, preheat on.
    fn default() -> Self {
        SgxConfig {
            max_threads: 4,
            enclave_size_bytes: 512 * 1024 * 1024,
            preheat: true,
            exitless: false,
        }
    }
}

/// Per-request latency metrics as the module reports them (§V-A2
/// experiment 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeMetrics {
    /// L_F: execution time of the AKA function.
    pub functional: SimDuration,
    /// L_T: request receipt → response dispatched (L_F + network I/O).
    pub total: SimDuration,
    /// EPC pages paged in/out during the request (8 GB EPC pathology).
    pub paged: u64,
}

/// A deployed AKA module (container or SGX).
pub struct PakaModule {
    kind: PakaKind,
    shielded: bool,
    container: ContainerHandle,
    native_sys: NativeSyscalls,
    max_threads: u32,
    warm: bool,
    requests_served: u64,
    boot_report: Option<BootReport>,
    userspace_net: bool,
    tls_identity: TlsIdentity,
    crash_recoveries: u64,
}

impl std::fmt::Debug for PakaModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PakaModule")
            .field("kind", &self.kind.name())
            .field("shielded", &self.shielded)
            .field("requests_served", &self.requests_served)
            .finish()
    }
}

/// Builds the module's container image for the registry.
#[must_use]
pub fn paka_image(kind: PakaKind) -> ContainerImage {
    let (bytes, files, working_set) = kind.image_params();
    let spec = ImageSpec::synthetic(
        kind.image_name(),
        format!("/usr/bin/{}-aka-server", kind.name().to_lowercase()),
        bytes,
        files,
    )
    .with_working_set(working_set);
    ContainerImage::new(spec).with_env("PAKA_MODULE", kind.name())
}

/// Pushes all three module images (plus the VNF images) into a registry.
pub fn populate_registry(registry: &mut Registry) {
    for kind in PakaKind::all() {
        registry.push(paka_image(kind));
    }
}

impl PakaModule {
    /// Deploys the module as an unprotected container (the paper's
    /// baseline for every overhead figure).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infra`] when the image is missing or the host
    /// refuses the container.
    pub fn deploy_container(
        env: &mut Env,
        host: &mut Host,
        registry: &Registry,
        kind: PakaKind,
    ) -> Result<Self, CoreError> {
        let container = host.run_plain(env, registry, kind.image_name(), kind.endpoint())?;
        let cost = host
            .platform()
            .map_or_else(shield5g_hmee::cost::CostModel::default, |p| {
                p.cost().clone()
            });
        Ok(PakaModule {
            kind,
            shielded: false,
            container,
            native_sys: NativeSyscalls::new(cost),
            max_threads: 4,
            warm: false,
            requests_served: 0,
            boot_report: None,
            userspace_net: false,
            tls_identity: TlsIdentity::new(kind.endpoint(), env.rng.bytes()),
            crash_recoveries: 0,
        })
    }

    /// Deploys the module inside an SGX enclave via GSC (a **P-AKA**
    /// module proper).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Libos`] for manifest/boot failures (including
    /// hosts without SGX).
    pub fn deploy_sgx(
        env: &mut Env,
        host: &mut Host,
        registry: &Registry,
        kind: PakaKind,
        cfg: SgxConfig,
    ) -> Result<Self, CoreError> {
        let manifest = Manifest::paka_default(format!(
            "/usr/bin/{}-aka-server",
            kind.name().to_lowercase()
        ))
        .with_max_threads(cfg.max_threads)
        .with_enclave_size(cfg.enclave_size_bytes)
        .with_preheat(cfg.preheat)
        .with_exitless(cfg.exitless);
        let container = host.run_shielded(
            env,
            registry,
            kind.image_name(),
            kind.endpoint(),
            manifest,
            &Self::signing_key(),
        )?;
        // Pistache server init inside the enclave: ~650 extra transitions
        // (paper §V-B5: "deploying the Pistache server inside an SGX
        // enclave contributes to around 650 EENTER and EEXIT
        // instructions") plus a few timer-thread event injections.
        let boot_report = {
            let mut c = container.borrow_mut();
            let libos = c.shielded.as_mut().expect("gsc container has libos");
            let server_init_start = env.clock.now();
            for _ in 0..650 {
                libos.enclave_mut().ocall(env, 64);
            }
            for _ in 0..12 {
                libos.inject_event(env);
            }
            // "Enclave load time … for the P-AKA modules to become
            // operational" (§V-B1) covers GSC boot plus server startup.
            let report = BootReport {
                load_time: libos.boot_report().load_time + (env.clock.now() - server_init_start),
                counters: libos.sgx_stats(),
            };
            Some(report)
        };
        let cost = host
            .platform()
            .map_or_else(shield5g_hmee::cost::CostModel::default, |p| {
                p.cost().clone()
            });
        Ok(PakaModule {
            kind,
            shielded: true,
            container,
            native_sys: NativeSyscalls::new(cost),
            max_threads: cfg.max_threads,
            warm: false,
            requests_served: 0,
            boot_report,
            userspace_net: false,
            tls_identity: TlsIdentity::new(kind.endpoint(), env.rng.bytes()),
            crash_recoveries: 0,
        })
    }

    /// The module kind.
    #[must_use]
    pub fn kind(&self) -> PakaKind {
        self.kind
    }

    /// Worker threads available to serve requests. `sgx.max_threads`
    /// budgets the whole Gramine TCS pool; three slots go to the runtime
    /// (IPC helper, async helper, main), leaving the rest for request
    /// handlers — the count the engine uses for the module's endpoint, so
    /// the Fig. 8 thread sweep changes concurrency mechanistically.
    #[must_use]
    pub fn app_threads(&self) -> u32 {
        self.max_threads.saturating_sub(3).max(1)
    }

    /// Whether this deployment is enclave-shielded.
    #[must_use]
    pub fn is_shielded(&self) -> bool {
        self.shielded
    }

    /// Requests served so far.
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// The underlying container handle (attack-surface access).
    #[must_use]
    pub fn container(&self) -> ContainerHandle {
        self.container.clone()
    }

    /// The module's TLS server identity (what clients pin; in the SGX
    /// deployment its key hash is bound into attestation quotes).
    #[must_use]
    pub fn tls_identity(&self) -> &TlsIdentity {
        &self.tls_identity
    }

    /// Produces an attestation quote binding this module's TLS public key
    /// (report_data = SHA-256(tls_pub) ‖ 0³²) — the §VII pattern of
    /// verifying module integrity before provisioning keys or opening TLS
    /// sessions to it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Module`] for container deployments (no
    /// enclave, nothing to quote) and [`CoreError::Hmee`] when the
    /// platform refuses the report.
    pub fn quote_tls_binding(
        &self,
        platform: &shield5g_hmee::platform::SgxPlatform,
    ) -> Result<shield5g_hmee::attest::Quote, CoreError> {
        let c = self.container.borrow();
        let Some(libos) = c.shielded.as_ref() else {
            return Err(CoreError::Module {
                module: self.kind.name().to_owned(),
                status: 501,
                detail: "container deployment cannot produce attestation quotes".into(),
            });
        };
        let mut report_data = [0u8; 64];
        report_data[..32].copy_from_slice(&shield5g_crypto::sha256::Sha256::digest(
            self.tls_identity.public(),
        ));
        let report = shield5g_hmee::attest::Report::create(libos.enclave(), report_data);
        platform.quote(&report).map_err(CoreError::Hmee)
    }

    /// GSC boot metrics (None for container deployments).
    #[must_use]
    pub fn boot_report(&self) -> Option<BootReport> {
        self.boot_report
    }

    /// SGX transition counters (None for container deployments).
    #[must_use]
    pub fn sgx_stats(&self) -> Option<SgxCounters> {
        let c = self.container.borrow();
        c.shielded.as_ref().map(|l| l.sgx_stats())
    }

    /// Provisions a subscriber key delivered as a **sealed blob** — the
    /// KI 27 flow of paper §VI: "an encrypted secret can be provisioned
    /// to the NF image, which can only be unsealed when the enclave
    /// environment can be verified". Only a shielded module holding the
    /// matching identity can open it; container deployments have no seal
    /// key at all.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Module`] when the module is not enclave-shielded.
    /// * [`CoreError::Hmee`] when the blob does not unseal under this
    ///   enclave's identity (wrong signer/build/platform or tampering).
    pub fn provision_sealed_key(
        &mut self,
        env: &mut Env,
        supi: &str,
        blob: &shield5g_hmee::seal::SealedBlob,
    ) -> Result<(), CoreError> {
        let mut c = self.container.borrow_mut();
        let Some(libos) = c.shielded.as_mut() else {
            return Err(CoreError::Module {
                module: self.kind.name().to_owned(),
                status: 501,
                detail: "container deployment holds no sealing key; cannot unseal".into(),
            });
        };
        let k = shield5g_hmee::seal::unseal(libos.enclave(), blob)?;
        libos
            .enclave_mut()
            .vault_write(env, &format!("k:{supi}"), &k);
        Ok(())
    }

    /// The signing identity under which P-AKA modules are built (the
    /// MRSIGNER source for GSC signing and KI 27 sealed provisioning).
    #[must_use]
    pub fn signing_key() -> [u8; 32] {
        [0x5A; 32]
    }

    /// The MRSIGNER value of P-AKA enclaves: GSC derives the signer
    /// identity as SHA-256(signing key), and the enclave measurement
    /// hashes that identity again.
    #[must_use]
    pub fn expected_mrsigner() -> [u8; 32] {
        let signer = shield5g_crypto::sha256::Sha256::digest(&Self::signing_key());
        shield5g_crypto::sha256::Sha256::digest(&signer)
    }

    /// Provisions a subscriber's long-term key into the module's secret
    /// store (enclave vault when shielded; plain memory otherwise).
    pub fn provision_subscriber_key(&mut self, env: &mut Env, supi: &str, k: [u8; 16]) {
        let mut c = self.container.borrow_mut();
        let slot = format!("k:{supi}");
        if let Some(libos) = c.shielded.as_mut() {
            libos.enclave_mut().vault_write(env, &slot, &k);
        } else {
            c.plain_memory.write(slot, k.to_vec());
        }
    }

    fn load_subscriber_key(&self, env: &mut Env, supi: &str) -> Result<[u8; 16], NfError> {
        let mut c = self.container.borrow_mut();
        let slot = format!("k:{supi}");
        let bytes = if let Some(libos) = c.shielded.as_mut() {
            libos
                .enclave_mut()
                .vault_read(env, &slot)
                .map_err(|e| match e {
                    shield5g_hmee::HmeeError::UnknownSlot(_) => {
                        NfError::SubscriberUnknown(supi.to_owned())
                    }
                    other => NfError::Backend(other.to_string()),
                })?
        } else {
            c.plain_memory
                .read(&slot)
                .ok_or_else(|| NfError::SubscriberUnknown(supi.to_owned()))?
                .to_vec()
        };
        bytes
            .try_into()
            .map_err(|_| NfError::Backend("stored key has wrong length".into()))
    }

    fn store_scratch(&self, env: &mut Env, slot: &str, bytes: &[u8]) {
        let mut c = self.container.borrow_mut();
        if let Some(libos) = c.shielded.as_mut() {
            libos.enclave_mut().vault_write(env, slot, bytes);
        } else {
            c.plain_memory.write(slot.to_owned(), bytes.to_vec());
        }
    }

    /// The AKA endpoint handlers (the code "inside" the module).
    fn dispatch(&mut self, env: &mut Env, path: &str, body: &[u8]) -> Result<Vec<u8>, NfError> {
        match (self.kind, path) {
            (PakaKind::EUdm, "/eudm/generate-av") => {
                let req = UdmAkaRequest::decode(body)?;
                let k = self.load_subscriber_key(env, &req.supi)?;
                let mil = Milenage::with_opc(&k, req.opc.expose());
                let av = generate_he_av(&mil, &req.rand, &req.sqn, &req.amf_field, &req.snn);
                self.store_scratch(env, "scratch:kausf", av.kausf.expose());
                Ok(encode_he_av(&av))
            }
            (PakaKind::EUdm, "/eudm/generate-av-batch") => {
                let req = UdmAkaBatchRequest::decode(body)?;
                if req.count == 0 || req.count > MAX_AV_BATCH {
                    return Err(NfError::Protocol(format!(
                        "AV batch count {} outside 1..={MAX_AV_BATCH}",
                        req.count
                    )));
                }
                let k = self.load_subscriber_key(env, &req.supi)?;
                let mil = Milenage::with_opc(&k, req.opc.expose());
                let avs: Vec<_> = (0..req.count)
                    .map(|i| {
                        let sqn = sqn_add(&req.sqn_start, u64::from(i));
                        let rand = batch_rand(&req.rand_seed, &sqn);
                        generate_he_av(&mil, &rand, &sqn, &req.amf_field, &req.snn)
                    })
                    .collect();
                // `serve` charges one AKA-function execution after dispatch;
                // the remaining batch members are extra in-window compute.
                for _ in 1..req.count {
                    let extra = env.rng.jitter(self.kind.func_nanos(), 0.05);
                    self.charge_compute(env, extra);
                }
                self.store_scratch(env, "scratch:kausf", avs[avs.len() - 1].kausf.expose());
                Ok(encode_he_av_batch(&avs))
            }
            (PakaKind::EUdm, "/eudm/resync") => {
                let mut r = shield5g_sim::codec::Reader::new(body);
                let supi = r.str()?;
                let opc: [u8; 16] = r.array()?;
                let rand: [u8; 16] = r.array()?;
                let auts = Auts {
                    sqn_ms_xor_ak: r.array()?,
                    mac_s: r.array()?,
                };
                r.finish()?;
                let k = self.load_subscriber_key(env, &supi)?;
                let mil = Milenage::with_opc(&k, &opc);
                let sqn_ms = auts.verify(&mil, &rand)?;
                Ok(sqn_ms.to_vec())
            }
            (PakaKind::EAusf, "/eausf/derive-se") => {
                let req = AusfAkaRequest::decode(body)?;
                let resp = AusfAkaResponse {
                    hxres_star: shield5g_crypto::keys::derive_hxres_star(&req.rand, &req.xres_star),
                    kseaf: shield5g_crypto::keys::derive_kseaf(req.kausf.expose(), &req.snn).into(),
                };
                self.store_scratch(env, "scratch:kseaf", resp.kseaf.expose());
                Ok(resp.encode())
            }
            (PakaKind::EAmf, "/eamf/derive-kamf") => {
                let req = AmfAkaRequest::decode(body)?;
                let kamf =
                    shield5g_crypto::keys::derive_kamf(req.kseaf.expose(), &req.supi, &req.abba);
                self.store_scratch(env, "scratch:kamf", &kamf);
                Ok(kamf.to_vec())
            }
            _ => Err(NfError::Protocol(format!(
                "module {} has no handler for {path}",
                self.kind.name()
            ))),
        }
    }

    /// **Fault interface**: crashes the enclave instance (host reboot /
    /// OS-issued `EREMOVE`). The next request pays the measured enclave
    /// load time before it can be served ([`PakaModule::serve`] performs
    /// the reload). Returns `false` for container deployments, which have
    /// no enclave to lose at this layer.
    pub fn inject_crash(&mut self, env: &mut Env) -> bool {
        let mut c = self.container.borrow_mut();
        let Some(libos) = c.shielded.as_mut() else {
            return false;
        };
        libos.enclave_mut().mark_lost(env);
        true
    }

    /// **Fault interface**: delivers a burst of asynchronous exits to the
    /// enclave (interrupt storm). No-op for container deployments.
    pub fn inject_aex_storm(&mut self, env: &mut Env, count: u64) {
        let mut c = self.container.borrow_mut();
        if let Some(libos) = c.shielded.as_mut() {
            libos.enclave_mut().aex_storm(env, count);
        }
    }

    /// **Fault interface**: imposes external EPC occupancy (co-resident
    /// enclaves) so requests incur paging; `0` lifts the pressure. No-op
    /// for container deployments.
    pub fn set_epc_thrash(&mut self, pages: u64) {
        let mut c = self.container.borrow_mut();
        if let Some(libos) = c.shielded.as_mut() {
            libos.enclave_mut().set_thrash_pages(pages);
        }
    }

    /// Whether the enclave instance is currently lost (crashed, reload
    /// pending). Always `false` for container deployments.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        let c = self.container.borrow();
        c.shielded.as_ref().is_some_and(|l| l.enclave().is_lost())
    }

    /// How many times the module reloaded its enclave after a crash.
    #[must_use]
    pub fn crash_recoveries(&self) -> u64 {
        self.crash_recoveries
    }

    /// Reloads a lost enclave at the measured load-time cost, restoring
    /// sealed state. Called from [`PakaModule::serve`] so the first request
    /// after a crash pays the recovery; harnesses may also call it
    /// directly to model supervised restarts.
    pub fn recover_from_crash(&mut self, env: &mut Env) -> bool {
        let load_time = self
            .boot_report
            .map_or_else(|| SimDuration::from_secs(60), |r| r.load_time);
        let mut c = self.container.borrow_mut();
        let Some(libos) = c.shielded.as_mut() else {
            return false;
        };
        if !libos.enclave().is_lost() {
            return false;
        }
        libos.enclave_mut().reload(env, load_time);
        drop(c);
        self.crash_recoveries += 1;
        // The rebuilt instance starts cold: first request re-pays warmup.
        self.warm = false;
        true
    }

    /// Serves one HTTPS request end to end, charging the full syscall
    /// choreography, and returns the response plus the module-side
    /// latency metrics.
    pub fn serve(&mut self, env: &mut Env, request: HttpRequest) -> (HttpResponse, ServeMetrics) {
        if self.shielded && self.is_crashed() {
            self.recover_from_crash(env);
        }
        let req_bytes = request.wire_len();
        self.requests_served += 1;
        let first_request = !self.warm;
        self.warm = true;

        // --- Connection phase: accept + TLS handshake + reactor upkeep.
        self.run_syscalls(env, &setup_syscalls());
        let handshake = env.rng.jitter(TLS_HANDSHAKE_CRYPTO_NANOS, 0.05);
        self.charge_compute(env, handshake);
        if first_request {
            self.cold_start(env);
        }

        // --- L_T window opens: request arrives.
        let t_total_start = env.clock.now();
        self.run_syscalls(env, &read_syscalls(req_bytes));
        let parse = env.rng.jitter(TLS_RECORD_NANOS + PARSE_NANOS, 0.06);
        self.charge_compute(env, parse);

        // --- L_F window: the AKA function itself.
        let t_func_start = env.clock.now();
        let mut paged = 0;
        let result = self.dispatch(env, &request.path, &request.body);
        // Handler execution time varies a few percent run to run
        // (allocator, branch history, cache state).
        let func = env.rng.jitter(self.kind.func_nanos(), 0.05);
        self.charge_compute(env, func);
        paged += self.functional_window_effects(env);
        let functional = env.clock.now() - t_func_start;

        // --- Response out; L_T window closes.
        let response = match result {
            Ok(body) => HttpResponse::ok(body),
            Err(NfError::SubscriberUnknown(s)) => {
                HttpResponse::error(404, format!("unknown subscriber {s}"))
            }
            Err(NfError::Crypto(e)) => HttpResponse::error(403, e.to_string()),
            Err(e) => HttpResponse::error(400, e.to_string()),
        };
        self.charge_compute(env, TLS_RECORD_NANOS);
        self.run_syscalls(env, &write_syscalls(response.wire_len()));
        let total = env.clock.now() - t_total_start;

        // --- Teardown (outside the measured windows).
        self.run_syscalls(env, &teardown_syscalls());

        (
            response,
            ServeMetrics {
                functional,
                total,
                paged,
            },
        )
    }

    /// In-enclave side effects charged inside the functional window: MEE
    /// slowdown extras, EPC paging under over-commit, and timer AEX noise
    /// that grows with the configured thread count (Fig. 8).
    fn functional_window_effects(&mut self, env: &mut Env) -> u64 {
        if !self.shielded {
            return 0;
        }
        let mut c = self.container.borrow_mut();
        let libos = c.shielded.as_mut().expect("shielded module");
        let enclave = libos.enclave_mut();
        enclave.compute(
            env,
            SimDuration::from_nanos(self.kind.sgx_func_extra_nanos()),
        );
        let paged = enclave.maybe_page(env);
        // Helper/timer threads interrupt enclave execution occasionally;
        // more TCS slots → more timer bookkeeping → more AEX. The rate is
        // calibrated so AEX-hit requests stay under the paper's "<5%
        // outliers" observation (§V-A2) — runtime AEX is rare, the bulk
        // of the Table III AEX total comes from boot.
        let draws = (self.max_threads / 4).max(1);
        for _ in 0..draws {
            if env.rng.chance(0.03) {
                enclave.aex(env);
            }
        }
        paged
    }

    fn cold_start(&mut self, env: &mut Env) {
        if self.shielded {
            let kind = self.kind;
            let mut c = self.container.borrow_mut();
            let libos = c.shielded.as_mut().expect("shielded module");
            for _ in 0..kind.cold_extra_ocalls() {
                libos.enclave_mut().ocall(env, 256);
            }
            libos.enclave_mut().demand_fault(env, kind.cold_pages());
            let cold = SimDuration::from_nanos(kind.cold_init_nanos());
            libos.enclave_mut().compute(env, cold);
        } else {
            env.clock
                .advance(SimDuration::from_nanos(CONTAINER_COLD_INIT_NANOS));
        }
    }

    /// Enables the §V-B7 user-level network stack ablation: the socket
    /// choreography runs inside the enclave (mTCP-style), so syscalls
    /// become in-enclave work instead of OCALLs.
    pub fn set_userspace_net(&mut self, enabled: bool) {
        self.userspace_net = enabled;
    }

    fn run_syscalls(&mut self, env: &mut Env, calls: &[Syscall]) {
        if self.userspace_net {
            // mTCP/DPDK path: packet processing stays in-process; each
            // former syscall costs a few hundred ns of (enclave) compute.
            let work = SimDuration::from_nanos(260 * calls.len() as u64);
            self.charge_compute(env, work.as_nanos());
            return;
        }
        if self.shielded {
            let mut c = self.container.borrow_mut();
            let libos = c.shielded.as_mut().expect("shielded module");
            for call in calls {
                libos.syscall(env, *call);
            }
        } else {
            for call in calls {
                self.native_sys.syscall(env, *call);
            }
        }
    }

    /// Charges compute either natively or through the enclave (MEE factor).
    fn charge_compute(&mut self, env: &mut Env, nanos: u64) {
        if self.shielded {
            let mut c = self.container.borrow_mut();
            let libos = c.shielded.as_mut().expect("shielded module");
            libos
                .enclave_mut()
                .compute(env, SimDuration::from_nanos(nanos));
        } else {
            env.clock.advance(SimDuration::from_nanos(nanos));
        }
    }
}

/// Connection setup: accept, socket options, TLS handshake I/O, Pistache
/// reactor/timer upkeep — 61 syscalls.
fn setup_syscalls() -> Vec<Syscall> {
    let mut v = Vec::with_capacity(61);
    v.push(Syscall::Accept);
    v.extend([Syscall::Fcntl; 2]);
    v.extend([Syscall::Setsockopt; 3]);
    v.push(Syscall::Getpeername);
    v.extend([Syscall::EpollCtl; 2]);
    // TLS handshake I/O.
    v.extend([Syscall::EpollWait; 4]);
    v.extend([Syscall::Read { bytes: 620 }; 3]);
    v.extend([Syscall::Write { bytes: 810 }; 2]);
    v.extend([Syscall::GetRandom; 2]);
    v.extend([Syscall::ClockGettime; 8]);
    v.extend([Syscall::Futex; 2]);
    // Pistache timer maintenance.
    v.extend([Syscall::ClockGettime; 12]);
    v.extend([Syscall::EpollWait; 4]);
    v.extend([Syscall::Futex; 3]);
    // Reactor bookkeeping.
    v.extend([Syscall::ClockGettime; 8]);
    v.extend([Syscall::Futex; 2]);
    v.extend([Syscall::EpollCtl; 2]);
    debug_assert_eq!(v.len(), 61);
    v
}

/// Request-receipt window: 5 syscalls.
fn read_syscalls(req_bytes: usize) -> Vec<Syscall> {
    vec![
        Syscall::EpollWait,
        Syscall::Read { bytes: req_bytes },
        Syscall::Read { bytes: 0 },
        Syscall::ClockGettime,
        Syscall::ClockGettime,
    ]
}

/// Response-dispatch window: 4 syscalls.
fn write_syscalls(resp_bytes: usize) -> Vec<Syscall> {
    vec![
        Syscall::Write { bytes: resp_bytes },
        Syscall::ClockGettime,
        Syscall::ClockGettime,
        Syscall::EpollWait,
    ]
}

/// Connection teardown: close-notify exchange, epoll cleanup, timers —
/// 21 syscalls (91 total per request).
fn teardown_syscalls() -> Vec<Syscall> {
    let mut v = Vec::with_capacity(21);
    v.push(Syscall::Read { bytes: 24 });
    v.push(Syscall::Write { bytes: 24 });
    v.push(Syscall::Close);
    v.extend([Syscall::EpollCtl; 2]);
    v.extend([Syscall::ClockGettime; 11]);
    v.extend([Syscall::EpollWait; 3]);
    v.extend([Syscall::Futex; 2]);
    debug_assert_eq!(v.len(), 21);
    v
}

/// Total syscalls per served request (what drives the per-registration
/// EENTER/EEXIT delta of ~91 in Table III).
#[must_use]
pub fn syscalls_per_request() -> usize {
    setup_syscalls().len()
        + read_syscalls(0).len()
        + write_syscalls(0).len()
        + teardown_syscalls().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_crypto::keys::ServingNetworkName;
    use shield5g_hmee::platform::SgxPlatform;

    const K: [u8; 16] = [0x46; 16];
    const OPC: [u8; 16] = [0xcd; 16];
    const SUPI: &str = "imsi-001010000000001";

    fn registry() -> Registry {
        let mut reg = Registry::new();
        populate_registry(&mut reg);
        reg
    }

    fn deploy(shielded: bool, kind: PakaKind) -> (Env, PakaModule) {
        let mut env = Env::new(17);
        env.log.disable();
        let reg = registry();
        let platform = SgxPlatform::new(&mut env);
        let mut host = Host::with_sgx("r450", platform);
        let mut module = if shielded {
            PakaModule::deploy_sgx(&mut env, &mut host, &reg, kind, SgxConfig::default()).unwrap()
        } else {
            PakaModule::deploy_container(&mut env, &mut host, &reg, kind).unwrap()
        };
        if kind == PakaKind::EUdm {
            module.provision_subscriber_key(&mut env, SUPI, K);
        }
        (env, module)
    }

    fn udm_request() -> HttpRequest {
        let req = UdmAkaRequest {
            supi: SUPI.into(),
            opc: OPC.into(),
            rand: [0x23; 16],
            sqn: [0, 0, 0, 0, 0, 9],
            amf_field: [0x80, 0],
            snn: ServingNetworkName::new("001", "01"),
        };
        HttpRequest::post("/eudm/generate-av", req.encode())
    }

    #[test]
    fn choreography_totals_91_syscalls() {
        assert_eq!(syscalls_per_request(), 91);
    }

    #[test]
    fn container_module_serves_valid_av() {
        let (mut env, mut module) = deploy(false, PakaKind::EUdm);
        let (resp, metrics) = module.serve(&mut env, udm_request());
        assert!(
            resp.is_success(),
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let av = shield5g_nf::backend::decode_he_av(&resp.body).unwrap();
        // A real USIM accepts the AV.
        let mil = Milenage::with_opc(&K, &OPC);
        let snn = ServingNetworkName::new("001", "01");
        let ue =
            shield5g_crypto::keys::ue_process_challenge(&mil, &av.rand, &av.autn, &snn).unwrap();
        assert_eq!(ue.res_star, av.xres_star);
        // Within jitter of the nominal functional time.
        assert!(
            metrics.functional >= SimDuration::from_nanos(PakaKind::EUdm.func_nanos() * 9 / 10)
        );
        assert!(metrics.total > metrics.functional);
    }

    #[test]
    fn sgx_module_serves_identical_av() {
        let (mut env_c, mut container) = deploy(false, PakaKind::EUdm);
        let (mut env_s, mut sgx) = deploy(true, PakaKind::EUdm);
        let (rc, _) = container.serve(&mut env_c, udm_request());
        let (rs, _) = sgx.serve(&mut env_s, udm_request());
        // Identical inputs → identical AV bytes, regardless of deployment.
        assert_eq!(rc.body, rs.body);
    }

    #[test]
    fn sgx_functional_latency_in_band() {
        for (kind, lo, hi) in [
            (PakaKind::EUdm, 1.10, 1.35),
            (PakaKind::EAusf, 1.20, 1.45),
            (PakaKind::EAmf, 1.35, 1.65),
        ] {
            let (mut env_c, mut container) = deploy(false, kind);
            let (mut env_s, mut sgx) = deploy(true, kind);
            let req = match kind {
                PakaKind::EUdm => udm_request(),
                PakaKind::EAusf => HttpRequest::post(
                    "/eausf/derive-se",
                    AusfAkaRequest {
                        rand: [1; 16],
                        xres_star: [2; 16],
                        kausf: [3; 32].into(),
                        snn: ServingNetworkName::new("001", "01"),
                    }
                    .encode(),
                ),
                PakaKind::EAmf => HttpRequest::post(
                    "/eamf/derive-kamf",
                    AmfAkaRequest {
                        kseaf: [4; 32].into(),
                        supi: SUPI.into(),
                        abba: [0, 0],
                    }
                    .encode(),
                ),
            };
            // Warm both, then measure medians over a few requests.
            let _ = container.serve(&mut env_c, req.clone());
            let _ = sgx.serve(&mut env_s, req.clone());
            let mut lf_c = Vec::new();
            let mut lf_s = Vec::new();
            for _ in 0..30 {
                lf_c.push(container.serve(&mut env_c, req.clone()).1.functional);
                lf_s.push(sgx.serve(&mut env_s, req.clone()).1.functional);
            }
            let c = crate::stats::Summary::of(&lf_c);
            let s = crate::stats::Summary::of(&lf_s);
            let ratio = s.median_ratio_to(&c);
            assert!(
                (lo..hi).contains(&ratio),
                "{} L_F ratio {ratio:.2} outside [{lo}, {hi})",
                kind.name()
            );
        }
    }

    #[test]
    fn per_request_transitions_are_about_91() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        let _ = module.serve(&mut env, udm_request()); // cold
        let before = module.sgx_stats().unwrap();
        let _ = module.serve(&mut env, udm_request());
        let delta = module.sgx_stats().unwrap().delta_since(&before);
        // 91 syscalls + a few vault/AEX events.
        assert!(
            (91..=96).contains(&delta.ocalls),
            "ocalls per request = {}",
            delta.ocalls
        );
        assert_eq!(delta.eenter, delta.ocalls);
        assert_eq!(delta.eexit, delta.ocalls);
    }

    #[test]
    fn first_request_is_much_slower_in_sgx() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        let t0 = env.clock.now();
        let _ = module.serve(&mut env, udm_request());
        let first = env.clock.now() - t0;
        let t1 = env.clock.now();
        let _ = module.serve(&mut env, udm_request());
        let second = env.clock.now() - t1;
        let ratio = first.as_nanos() as f64 / second.as_nanos() as f64;
        assert!(ratio > 10.0, "initial/stable ratio {ratio:.1}");
    }

    #[test]
    fn shielded_secrets_invisible_to_introspection() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        let _ = module.serve(&mut env, udm_request());
        let c = module.container();
        let c = c.borrow();
        let snap = c.shielded.as_ref().unwrap().enclave().epc_snapshot();
        assert!(!snap.contains_plaintext(&K));
        assert!(!c.plain_memory.contains(&K));
    }

    #[test]
    fn container_secrets_visible_to_introspection() {
        let (mut env, mut module) = deploy(false, PakaKind::EUdm);
        let (resp, _) = module.serve(&mut env, udm_request());
        assert!(resp.is_success());
        let c = module.container();
        let c = c.borrow();
        assert!(c.plain_memory.contains(&K), "long-term key in plain memory");
        assert!(
            c.plain_memory.read("scratch:kausf").is_some(),
            "derived key in plain memory"
        );
    }

    #[test]
    fn unknown_subscriber_404() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        let mut req = UdmAkaRequest {
            supi: "imsi-001010000000777".into(),
            opc: OPC.into(),
            rand: [0; 16],
            sqn: [0; 6],
            amf_field: [0x80, 0],
            snn: ServingNetworkName::new("001", "01"),
        };
        req.supi = "imsi-001010000000777".into();
        let (resp, _) = module.serve(
            &mut env,
            HttpRequest::post("/eudm/generate-av", req.encode()),
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn wrong_endpoint_400() {
        let (mut env, mut module) = deploy(false, PakaKind::EAmf);
        let (resp, _) = module.serve(&mut env, HttpRequest::post("/eudm/generate-av", vec![]));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn eausf_serves_se_parameters() {
        let (mut env, mut module) = deploy(true, PakaKind::EAusf);
        let req = AusfAkaRequest {
            rand: [1; 16],
            xres_star: [2; 16],
            kausf: [3; 32].into(),
            snn: ServingNetworkName::new("001", "01"),
        };
        let (resp, _) = module.serve(
            &mut env,
            HttpRequest::post("/eausf/derive-se", req.encode()),
        );
        assert!(resp.is_success());
        let se = AusfAkaResponse::decode(&resp.body).unwrap();
        assert_eq!(
            se.hxres_star,
            shield5g_crypto::keys::derive_hxres_star(&[1; 16], &[2; 16])
        );
    }

    #[test]
    fn eamf_serves_kamf() {
        let (mut env, mut module) = deploy(false, PakaKind::EAmf);
        let req = AmfAkaRequest {
            kseaf: [4; 32].into(),
            supi: SUPI.into(),
            abba: [0, 0],
        };
        let (resp, _) = module.serve(
            &mut env,
            HttpRequest::post("/eamf/derive-kamf", req.encode()),
        );
        assert!(resp.is_success());
        assert_eq!(
            resp.body,
            shield5g_crypto::keys::derive_kamf(&[4; 32], SUPI, &[0, 0]).to_vec()
        );
    }

    #[test]
    fn eudm_batch_serves_verifiable_avs_for_one_choreography() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        let _ = module.serve(&mut env, udm_request()); // warm
        let req = UdmAkaBatchRequest {
            supi: SUPI.into(),
            opc: OPC.into(),
            rand_seed: [0x77; 16],
            sqn_start: [0, 0, 0, 0, 1, 0],
            amf_field: [0x80, 0],
            snn: ServingNetworkName::new("001", "01"),
            count: 8,
        };
        let before = module.sgx_stats().unwrap();
        let (resp, metrics) = module.serve(
            &mut env,
            HttpRequest::post("/eudm/generate-av-batch", req.encode()),
        );
        assert!(resp.is_success());
        let avs = shield5g_nf::backend::decode_he_av_batch(&resp.body).unwrap();
        assert_eq!(avs.len(), 8);
        // Every AV in the batch passes USIM verification.
        let mil = Milenage::with_opc(&K, &OPC);
        let snn = ServingNetworkName::new("001", "01");
        for av in &avs {
            let ue = shield5g_crypto::keys::ue_process_challenge(&mil, &av.rand, &av.autn, &snn)
                .unwrap();
            assert_eq!(ue.res_star, av.xres_star);
        }
        // The batch still costs a single connection choreography...
        let delta = module.sgx_stats().unwrap().delta_since(&before);
        assert!((91..=96).contains(&delta.ocalls), "{}", delta.ocalls);
        // ...while functional time scales with the batch size.
        assert!(metrics.functional > SimDuration::from_nanos(PakaKind::EUdm.func_nanos() * 6));
    }

    #[test]
    fn eudm_batch_count_bounds_enforced() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        for count in [0, MAX_AV_BATCH + 1] {
            let req = UdmAkaBatchRequest {
                supi: SUPI.into(),
                opc: OPC.into(),
                rand_seed: [0; 16],
                sqn_start: [0; 6],
                amf_field: [0x80, 0],
                snn: ServingNetworkName::new("001", "01"),
                count,
            };
            let (resp, _) = module.serve(
                &mut env,
                HttpRequest::post("/eudm/generate-av-batch", req.encode()),
            );
            assert_eq!(resp.status, 400, "count {count}");
        }
    }

    #[test]
    fn eudm_resync_verifies_auts() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        let mil = Milenage::with_opc(&K, &OPC);
        let rand = [0x23; 16];
        let sqn_ms = [0, 0, 0, 0, 2, 5];
        let auts = Auts::generate(&mil, &rand, &sqn_ms);
        let mut w = shield5g_sim::codec::Writer::new();
        w.put_str(SUPI)
            .put_array(&OPC)
            .put_array(&rand)
            .put_array(&auts.sqn_ms_xor_ak)
            .put_array(&auts.mac_s);
        let (resp, _) = module.serve(&mut env, HttpRequest::post("/eudm/resync", w.into_bytes()));
        assert!(resp.is_success());
        assert_eq!(resp.body, sqn_ms.to_vec());
    }

    #[test]
    fn enclave_load_time_close_to_a_minute() {
        let (_env, module) = deploy(true, PakaKind::EUdm);
        let load = module.boot_report().unwrap().load_time;
        assert!(load > SimDuration::from_secs(50), "{load}");
        assert!(load < SimDuration::from_secs(70), "{load}");
    }

    #[test]
    fn crash_forces_reload_at_load_time_cost() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        // Warm the module so the recovery delta is not confused with
        // first-request cold start.
        let (resp, _) = module.serve(&mut env, udm_request());
        assert!(resp.is_success());
        let load = module.boot_report().unwrap().load_time;

        assert!(module.inject_crash(&mut env));
        assert!(module.is_crashed());
        let t0 = env.clock.now();
        let (resp, _) = module.serve(&mut env, udm_request());
        assert!(
            resp.is_success(),
            "post-crash request must succeed after reload: {:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert!(!module.is_crashed());
        assert_eq!(module.crash_recoveries(), 1);
        assert!(
            env.clock.now() - t0 >= load,
            "first post-crash request pays at least the enclave load time"
        );
    }

    #[test]
    fn crash_is_a_noop_for_container_deployments() {
        let (mut env, mut module) = deploy(false, PakaKind::EUdm);
        assert!(!module.inject_crash(&mut env));
        assert!(!module.is_crashed());
        assert!(!module.recover_from_crash(&mut env));
        let (resp, _) = module.serve(&mut env, udm_request());
        assert!(resp.is_success());
        assert_eq!(module.crash_recoveries(), 0);
    }

    #[test]
    fn aex_storm_and_epc_thrash_degrade_without_breaking() {
        let (mut env, mut module) = deploy(true, PakaKind::EUdm);
        let (resp, baseline) = module.serve(&mut env, udm_request());
        assert!(resp.is_success());
        assert_eq!(baseline.paged, 0, "no paging without pressure");

        let before = module.sgx_stats().unwrap();
        module.inject_aex_storm(&mut env, 1000);
        assert_eq!(module.sgx_stats().unwrap().aex, before.aex + 1000);

        // 512 MiB heap on a default platform: thrash well past physical.
        module.set_epc_thrash(4 * 1024 * 1024);
        let mut paged = 0;
        for _ in 0..20 {
            let (resp, m) = module.serve(&mut env, udm_request());
            assert!(resp.is_success(), "thrashed module still serves");
            paged += m.paged;
        }
        assert!(paged > 0, "EPC thrash must surface as paging");
        module.set_epc_thrash(0);
        let (resp, after) = module.serve(&mut env, udm_request());
        assert!(resp.is_success());
        assert_eq!(after.paged, 0, "lifting thrash restores residence");
    }
}
