//! The §V characterization harness: every module-level experiment the
//! paper reports, as reusable functions over the simulated testbed.
//!
//! Each experiment builds fresh deterministic worlds from a base seed,
//! deploys the module(s) under test, runs the workload, and returns
//! [`Summary`] statistics matching the paper's box plots and tables. The
//! end-to-end and OTA experiments (which need the RAN) live in
//! `shield5g-ran`.

use crate::paka::{paka_image, populate_registry, PakaKind, PakaModule, SgxConfig};
use crate::stats::Summary;
use shield5g_crypto::keys::ServingNetworkName;
use shield5g_hmee::counters::SgxCounters;
use shield5g_hmee::platform::SgxPlatform;
use shield5g_infra::host::Host;
use shield5g_infra::image::Registry;
use shield5g_libos::gsc::{transform, ImageSpec};
use shield5g_libos::libos::GramineLibos;
use shield5g_libos::manifest::Manifest;
use shield5g_nf::backend::{AmfAkaRequest, AusfAkaRequest, UdmAkaRequest};
use shield5g_sim::http::HttpRequest;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;

const SUPI: &str = "imsi-001010000000001";
const K: [u8; 16] = [0x46; 16];
const OPC: [u8; 16] = [0xcd; 16];

/// Deployment flavour for a single-module experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModuleDeployment {
    /// Plain container baseline.
    Container,
    /// SGX enclave with the given configuration.
    Sgx(SgxConfig),
}

/// The standard AKA request for a module (Table I inputs).
#[must_use]
pub fn standard_request(kind: PakaKind) -> HttpRequest {
    let snn = ServingNetworkName::new("001", "01");
    match kind {
        PakaKind::EUdm => HttpRequest::post(
            "/eudm/generate-av",
            UdmAkaRequest {
                supi: SUPI.into(),
                opc: OPC.into(),
                rand: [0x23; 16],
                sqn: [0, 0, 0, 0, 0, 1],
                amf_field: [0x80, 0],
                snn,
            }
            .encode(),
        ),
        PakaKind::EAusf => HttpRequest::post(
            "/eausf/derive-se",
            AusfAkaRequest {
                rand: [0x23; 16],
                xres_star: [0x5a; 16],
                kausf: [0x11; 32].into(),
                snn,
            }
            .encode(),
        ),
        PakaKind::EAmf => HttpRequest::post(
            "/eamf/derive-kamf",
            AmfAkaRequest {
                kseaf: [0x22; 32].into(),
                supi: SUPI.into(),
                abba: [0, 0],
            }
            .encode(),
        ),
    }
}

/// Deploys one module in a fresh world.
///
/// # Panics
///
/// Panics when deployment fails — the harness controls all inputs, so a
/// failure is a harness bug.
#[must_use]
pub fn deploy_module(seed: u64, kind: PakaKind, deployment: ModuleDeployment) -> (Env, PakaModule) {
    let mut env = Env::new(seed);
    env.log.disable();
    let mut registry = Registry::new();
    populate_registry(&mut registry);
    let platform = SgxPlatform::new(&mut env);
    let mut host = Host::with_sgx("r450", platform);
    let mut module = match deployment {
        ModuleDeployment::Container => {
            PakaModule::deploy_container(&mut env, &mut host, &registry, kind)
                .expect("container deploy")
        }
        ModuleDeployment::Sgx(cfg) => {
            PakaModule::deploy_sgx(&mut env, &mut host, &registry, kind, cfg).expect("sgx deploy")
        }
    };
    if kind == PakaKind::EUdm {
        module.provision_subscriber_key(&mut env, SUPI, K);
    }
    (env, module)
}

/// **Figure 7**: enclave load time per P-AKA module.
///
/// Each repetition deploys a fresh enclave (slice creation / migration,
/// §V-B1) and records the time until the module is operational.
#[must_use]
pub fn fig7_enclave_load(base_seed: u64, reps: u32) -> Vec<(PakaKind, Summary)> {
    PakaKind::all()
        .into_iter()
        .map(|kind| {
            let samples: Vec<SimDuration> = (0..reps)
                .map(|i| {
                    let (_env, module) = deploy_module(
                        base_seed + u64::from(i),
                        kind,
                        ModuleDeployment::Sgx(SgxConfig::default()),
                    );
                    module.boot_report().expect("sgx boot report").load_time
                })
                .collect();
            (kind, Summary::of(&samples))
        })
        .collect()
}

/// One configuration row of the Figure 8 sweep.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Row label, e.g. `"threads=4 epc=512M"` or `"non-SGX"`.
    pub label: String,
    /// Functional latency summary.
    pub lf: Summary,
    /// Total latency summary.
    pub lt: Summary,
}

/// **Figure 8**: eUDM L_F/L_T under varying `sgx.max_threads` and EPC
/// size, plus the non-SGX baseline.
#[must_use]
pub fn fig8_threads_epc(base_seed: u64, reps: u32) -> Vec<Fig8Row> {
    let gib = 1024 * 1024 * 1024;
    let configs: [(String, Option<SgxConfig>); 5] = [
        (
            "threads=4 epc=512M".into(),
            Some(SgxConfig {
                max_threads: 4,
                enclave_size_bytes: 512 * 1024 * 1024,
                preheat: true,
                exitless: false,
            }),
        ),
        (
            "threads=10 epc=512M".into(),
            Some(SgxConfig {
                max_threads: 10,
                enclave_size_bytes: 512 * 1024 * 1024,
                preheat: true,
                exitless: false,
            }),
        ),
        // §V-B2: "Increasing the EPC size from 512MB to 2GB does not have
        // any effect on the performance of the modules."
        (
            "threads=10 epc=2G".into(),
            Some(SgxConfig {
                max_threads: 10,
                enclave_size_bytes: 2 * gib,
                preheat: true,
                exitless: false,
            }),
        ),
        (
            "threads=50 epc=8G".into(),
            Some(SgxConfig {
                max_threads: 50,
                enclave_size_bytes: 8 * gib,
                preheat: true,
                exitless: false,
            }),
        ),
        ("non-SGX".into(), None),
    ];
    configs
        .into_iter()
        .map(|(label, cfg)| {
            let deployment = match cfg {
                Some(c) => ModuleDeployment::Sgx(c),
                None => ModuleDeployment::Container,
            };
            let (lf, lt) = measure_lf_lt(base_seed, PakaKind::EUdm, deployment, reps);
            Fig8Row { label, lf, lt }
        })
        .collect()
}

/// Serves `reps` requests after warmup and summarises L_F / L_T.
#[must_use]
pub fn measure_lf_lt(
    seed: u64,
    kind: PakaKind,
    deployment: ModuleDeployment,
    reps: u32,
) -> (Summary, Summary) {
    let (mut env, mut module) = deploy_module(seed, kind, deployment);
    let request = standard_request(kind);
    let _ = module.serve(&mut env, request.clone()); // warm-up / initial
    let mut lf = Vec::with_capacity(reps as usize);
    let mut lt = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let (_resp, m) = module.serve(&mut env, request.clone());
        lf.push(m.functional);
        lt.push(m.total);
    }
    (Summary::of(&lf), Summary::of(&lt))
}

/// One module row of Figure 9 (and the L_F/L_T columns of Table II).
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// The module.
    pub kind: PakaKind,
    /// Container-mode functional latency.
    pub lf_container: Summary,
    /// SGX functional latency.
    pub lf_sgx: Summary,
    /// Container-mode total latency.
    pub lt_container: Summary,
    /// SGX total latency.
    pub lt_sgx: Summary,
}

impl Fig9Row {
    /// L_F overhead ratio (Table II column `L_F`).
    #[must_use]
    pub fn lf_ratio(&self) -> f64 {
        self.lf_sgx.median_ratio_to(&self.lf_container)
    }

    /// L_T overhead ratio (Table II column `L_T`).
    #[must_use]
    pub fn lt_ratio(&self) -> f64 {
        self.lt_sgx.median_ratio_to(&self.lt_container)
    }
}

/// **Figure 9**: functional and total latency, container vs SGX, for all
/// three modules.
#[must_use]
pub fn fig9_latency(base_seed: u64, reps: u32) -> Vec<Fig9Row> {
    PakaKind::all()
        .into_iter()
        .map(|kind| {
            let (lf_container, lt_container) =
                measure_lf_lt(base_seed, kind, ModuleDeployment::Container, reps);
            let (lf_sgx, lt_sgx) = measure_lf_lt(
                base_seed + 1000,
                kind,
                ModuleDeployment::Sgx(SgxConfig::default()),
                reps,
            );
            Fig9Row {
                kind,
                lf_container,
                lf_sgx,
                lt_container,
                lt_sgx,
            }
        })
        .collect()
}

/// One module row of Figure 10 (and the R columns of Table II).
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// The module.
    pub kind: PakaKind,
    /// Container-mode stable response time R^C.
    pub r_container: Summary,
    /// SGX stable response time R_S^SGX.
    pub r_sgx_stable: Summary,
    /// SGX initial response time R_I^SGX (first request after deploy).
    pub r_sgx_initial: Summary,
}

impl Fig10Row {
    /// R_S^SGX / R^C (Table II).
    #[must_use]
    pub fn rs_ratio(&self) -> f64 {
        self.r_sgx_stable.median_ratio_to(&self.r_container)
    }

    /// R_I^SGX / R_S^SGX (Table II).
    #[must_use]
    pub fn ri_over_rs(&self) -> f64 {
        self.r_sgx_initial.median_ratio_to(&self.r_sgx_stable)
    }
}

/// Measures VNF-side response times for one deployment; the first-request
/// sample is returned separately (the initial response, §V-B4).
#[must_use]
pub fn measure_response_times(
    seed: u64,
    kind: PakaKind,
    deployment: ModuleDeployment,
    reps: u32,
) -> (SimDuration, Vec<SimDuration>) {
    let (mut env, module) = deploy_module(seed, kind, deployment);
    let bridge = std::rc::Rc::new(std::cell::RefCell::new(
        shield5g_infra::bridge::BridgeNetwork::new("br-oai"),
    ));
    let mut client = crate::remote::PakaClient::new(
        std::rc::Rc::new(std::cell::RefCell::new(module)),
        bridge,
        "vnf.oai",
    );
    let request = standard_request(kind);
    for _ in 0..=reps {
        client
            .call(&mut env, &request.path, request.body.clone())
            .expect("module call");
    }
    let metrics = client.metrics();
    let m = metrics.borrow();
    let initial = m.response_times[0];
    (initial, m.response_times[1..].to_vec())
}

/// **Figure 10**: stable and initial response times of the P-AKA modules,
/// with the container baseline for Table II's ratios.
#[must_use]
pub fn fig10_response(base_seed: u64, stable_reps: u32, initial_reps: u32) -> Vec<Fig10Row> {
    PakaKind::all()
        .into_iter()
        .map(|kind| {
            let (_, rc) =
                measure_response_times(base_seed, kind, ModuleDeployment::Container, stable_reps);
            let (_, rs) = measure_response_times(
                base_seed + 2000,
                kind,
                ModuleDeployment::Sgx(SgxConfig::default()),
                stable_reps,
            );
            // Initial responses need fresh deployments per sample.
            let initials: Vec<SimDuration> = (0..initial_reps)
                .map(|i| {
                    let (initial, _) = measure_response_times(
                        base_seed + 3000 + u64::from(i),
                        kind,
                        ModuleDeployment::Sgx(SgxConfig::default()),
                        1,
                    );
                    initial
                })
                .collect();
            Fig10Row {
                kind,
                r_container: Summary::of(&rc),
                r_sgx_stable: Summary::of(&rs),
                r_sgx_initial: Summary::of(&initials),
            }
        })
        .collect()
}

/// One (module, UE count) row of Table III.
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// The module.
    pub kind: PakaKind,
    /// UEs registered.
    pub ues: u32,
    /// Counter totals after the registrations.
    pub counters: SgxCounters,
}

/// **Table III**: SGX-specific operational statistics. Registers `1..=
/// max_ues` UEs against fresh module deployments and reports the counter
/// totals, plus the empty-workload (bare GSC) baseline.
#[must_use]
pub fn table3_sgx_metrics(base_seed: u64, max_ues: u32) -> (Vec<Table3Row>, SgxCounters) {
    let mut rows = Vec::new();
    for kind in PakaKind::all() {
        for ues in 1..=max_ues {
            let (mut env, mut module) = deploy_module(
                base_seed + u64::from(ues),
                kind,
                ModuleDeployment::Sgx(SgxConfig::default()),
            );
            let request = standard_request(kind);
            for _ in 0..ues {
                let (resp, _) = module.serve(&mut env, request.clone());
                assert!(resp.is_success(), "module request failed");
            }
            rows.push(Table3Row {
                kind,
                ues,
                counters: module.sgx_stats().expect("sgx counters"),
            });
        }
    }
    (rows, empty_workload_counters(base_seed))
}

/// Boots the bare GSC base image ("Empty workload" row of Table III).
#[must_use]
pub fn empty_workload_counters(seed: u64) -> SgxCounters {
    let mut env = Env::new(seed);
    env.log.disable();
    let platform = SgxPlatform::new(&mut env);
    let image = ImageSpec::synthetic("empty-workload", "/gramine/app", 1_900_000_000, 209)
        .with_working_set(2 * 1024 * 1024);
    let manifest = Manifest::paka_default("x").with_enclave_size(192 * 1024 * 1024);
    let shielded = transform(&image, manifest, &[9; 32]).expect("gsc transform");
    let libos = GramineLibos::boot(&mut env, &shielded, &platform).expect("boot");
    libos.sgx_stats()
}

/// Per-UE-registration transition delta for a module (§V-B5: "around 90").
#[must_use]
pub fn per_registration_delta(seed: u64, kind: PakaKind) -> SgxCounters {
    let (mut env, mut module) =
        deploy_module(seed, kind, ModuleDeployment::Sgx(SgxConfig::default()));
    let request = standard_request(kind);
    let _ = module.serve(&mut env, request.clone());
    let before = module.sgx_stats().expect("counters");
    let _ = module.serve(&mut env, request);
    module.sgx_stats().expect("counters").delta_since(&before)
}

/// §V-B7 ablation result: stable response times under optimisations.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Stable response-time summary.
    pub r_stable: Summary,
}

/// **§V-B7 ablations**: baseline SGX vs Gramine exitless OCALLs vs a
/// user-level network stack inside the enclave (mTCP-style), on eUDM.
#[must_use]
pub fn ablation_optimizations(base_seed: u64, reps: u32) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    // Baseline.
    let (_, rs) = measure_response_times(
        base_seed,
        PakaKind::EUdm,
        ModuleDeployment::Sgx(SgxConfig::default()),
        reps,
    );
    rows.push(AblationRow {
        label: "sgx baseline".into(),
        r_stable: Summary::of(&rs),
    });
    // Exitless.
    let (_, rs) = measure_response_times(
        base_seed + 1,
        PakaKind::EUdm,
        ModuleDeployment::Sgx(SgxConfig {
            exitless: true,
            ..SgxConfig::default()
        }),
        reps,
    );
    rows.push(AblationRow {
        label: "exitless ocalls".into(),
        r_stable: Summary::of(&rs),
    });
    // User-level TCP (mTCP/DPDK-style): syscall choreography handled
    // in-enclave.
    let (mut env, mut module) = deploy_module(
        base_seed + 2,
        PakaKind::EUdm,
        ModuleDeployment::Sgx(SgxConfig::default()),
    );
    module.set_userspace_net(true);
    let bridge = std::rc::Rc::new(std::cell::RefCell::new(
        shield5g_infra::bridge::BridgeNetwork::new("br-oai"),
    ));
    let mut client = crate::remote::PakaClient::new(
        std::rc::Rc::new(std::cell::RefCell::new(module)),
        bridge,
        "vnf.oai",
    );
    let request = standard_request(PakaKind::EUdm);
    for _ in 0..=reps {
        client
            .call(&mut env, &request.path, request.body.clone())
            .expect("call");
    }
    let metrics = client.metrics();
    let samples = metrics.borrow().response_times[1..].to_vec();
    rows.push(AblationRow {
        label: "user-level tcp (mtcp)".into(),
        r_stable: Summary::of(&samples),
    });
    rows
}

/// One row of the concurrency sweep.
#[derive(Clone, Debug)]
pub struct ConcurrencyRow {
    /// Concurrent UE registration flows hitting the module.
    pub concurrent_clients: u32,
    /// `sgx.max_threads` configured.
    pub max_threads: u32,
    /// Mean response time across the batch (queueing included).
    pub mean_response: SimDuration,
}

/// Registers a freshly deployed module as a discrete-event endpoint on
/// its own engine (worker count = the module's serving-thread budget) and
/// returns `(env, engine)` ready for scheduled arrivals.
#[must_use]
pub fn module_engine(
    seed: u64,
    kind: PakaKind,
    deployment: ModuleDeployment,
) -> (Env, shield5g_sim::engine::Engine) {
    let (mut env, mut module) = deploy_module(seed, kind, deployment);
    let _ = module.serve(&mut env, standard_request(kind)); // warm
    let workers = module.app_threads();
    let bridge = std::rc::Rc::new(std::cell::RefCell::new(
        shield5g_infra::bridge::BridgeNetwork::new("br-oai"),
    ));
    let client = crate::remote::PakaClient::new(
        std::rc::Rc::new(std::cell::RefCell::new(module)),
        bridge,
        "vnf.oai",
    );
    let mut engine = shield5g_sim::engine::Engine::new();
    engine.register(
        kind.endpoint(),
        workers,
        shield5g_sim::engine::Engine::leaf(shield5g_sim::service::service_handle(
            client.endpoint(),
        )),
    );
    (env, engine)
}

/// **§V-B2 extension**: the paper notes that "increasing the number of
/// concurrent clients without impacting the performance of the modules
/// would require changing the maximum allowed number of threads" —
/// Gramine reserves 3 helper threads, so a module with `max_threads = T`
/// serves `T − 3` flows in parallel and queues the rest. This sweep fires
/// `clients` simultaneous arrivals at the module's engine endpoint under
/// each thread budget: queueing and overlap fall out of event ordering
/// (busy workers hold their slot for the full service time), not from an
/// analytic schedule.
#[must_use]
pub fn concurrency_sweep(
    base_seed: u64,
    clients: &[u32],
    thread_configs: &[u32],
) -> Vec<ConcurrencyRow> {
    let mut rows = Vec::new();
    for &max_threads in thread_configs {
        for &n in clients {
            let cfg = SgxConfig {
                max_threads,
                ..SgxConfig::default()
            };
            let (mut env, mut engine) = module_engine(
                base_seed + u64::from(max_threads),
                PakaKind::EUdm,
                ModuleDeployment::Sgx(cfg),
            );
            let request = standard_request(PakaKind::EUdm);
            let t0 = env.clock.now();
            for _ in 0..n {
                engine.schedule_request(t0, PakaKind::EUdm.endpoint(), request.clone());
            }
            let done = engine.run_until_idle(&mut env);
            assert_eq!(done.len(), n as usize, "all flows must complete");
            let total = done
                .iter()
                .fold(SimDuration::ZERO, |acc, c| acc + (c.finished - c.submitted));
            rows.push(ConcurrencyRow {
                concurrent_clients: n,
                max_threads,
                mean_response: total / u64::from(n),
            });
        }
    }
    rows
}

// The §V-B7 horizontal-scaling experiment lives in `shield5g-scale`
// (`shield5g_scale::harness::horizontal_scaling`), which drives real
// replica pools instead of extrapolating from a single instance.

/// Verification that the Table I parameter sizes hold on the wire.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    /// The module.
    pub kind: PakaKind,
    /// Cryptographic input bytes (Table I "Enclave Input" total).
    pub input_bytes: usize,
    /// Cryptographic output bytes (Table I "Enclave Output" total).
    pub output_bytes: usize,
}

/// **Table I**: the enclave I/O parameter sizes.
#[must_use]
pub fn table1_parameter_sizes() -> Vec<Table1Row> {
    vec![
        // eUDM in: OPc 16 + RAND 16 + SQN 6 + AMF 2 = 40;
        //      out: RAND 16 + XRES* 16 + KAUSF 32 + AUTN 16 = 80.
        Table1Row {
            kind: PakaKind::EUdm,
            input_bytes: 16 + 16 + 6 + 2,
            output_bytes: 16 + 16 + 32 + 16,
        },
        // eAUSF in: RAND 16 + XRES* 16 + SNN 2(id) + KAUSF 32 = 66;
        //       out: KSEAF 32 + HXRES* 16 = 48 (the paper lists HXRES* as
        //       8 bytes; TS 33.501 A.5 defines 128 bits — we follow the
        //       spec and note the deviation in EXPERIMENTS.md).
        Table1Row {
            kind: PakaKind::EAusf,
            input_bytes: 16 + 16 + 2 + 32,
            output_bytes: 32 + 16,
        },
        // eAMF in: KSEAF 32; out: KAMF 32.
        Table1Row {
            kind: PakaKind::EAmf,
            input_bytes: 32,
            output_bytes: 32,
        },
    ]
}

/// Fig. 7 supporting detail: image bytes hashed per module (why eUDM
/// loads slowest).
#[must_use]
pub fn module_image_bytes(kind: PakaKind) -> u64 {
    paka_image(kind).spec.total_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_loads_are_about_a_minute_and_ordered() {
        let rows = fig7_enclave_load(100, 3);
        assert_eq!(rows.len(), 3);
        for (kind, s) in &rows {
            assert!(
                s.median > SimDuration::from_secs(50) && s.median < SimDuration::from_secs(70),
                "{} load {}",
                kind.name(),
                s.median
            );
        }
        // eUDM (largest image) slowest.
        assert!(rows[0].1.median > rows[1].1.median);
        assert!(rows[1].1.median > rows[2].1.median);
    }

    #[test]
    fn fig9_ratios_in_paper_bands() {
        let rows = fig9_latency(200, 40);
        let expected = [(1.1, 1.35), (1.2, 1.45), (1.3, 1.65)];
        for (row, (lo, hi)) in rows.iter().zip(expected) {
            let r = row.lf_ratio();
            assert!(r >= lo && r < hi, "{} L_F ratio {r:.2}", row.kind.name());
            let lt = row.lt_ratio();
            assert!(
                lt > 1.6 && lt < 3.0,
                "{} L_T ratio {lt:.2}",
                row.kind.name()
            );
        }
        // L_T overhead grows as the function shrinks (paper Table II).
        assert!(rows[2].lt_ratio() > rows[0].lt_ratio());
    }

    #[test]
    fn fig10_shapes() {
        let rows = fig10_response(300, 30, 3);
        for row in &rows {
            let rs = row.rs_ratio();
            assert!(
                rs > 1.9 && rs < 3.3,
                "{} R_S ratio {rs:.2}",
                row.kind.name()
            );
            let ri = row.ri_over_rs();
            assert!(
                ri > 12.0 && ri < 30.0,
                "{} R_I/R_S {ri:.1}",
                row.kind.name()
            );
        }
    }

    #[test]
    fn fig8_sweep_shapes() {
        let rows = fig8_threads_epc(400, 25);
        assert_eq!(rows.len(), 5);
        let base = &rows[0];
        let two_gig = &rows[2];
        let big_epc = &rows[3];
        let native = &rows[4];
        // Non-SGX is fastest; 8G EPC (over-committed) is slowest/noisiest.
        assert!(native.lf.median < base.lf.median);
        assert!(big_epc.lf.median >= base.lf.median);
        assert!(
            big_epc.lf.iqr() > base.lf.iqr(),
            "paging should widen the IQR"
        );
        // §V-B2: 2 GB EPC performs like 512 MB (within 5%).
        let drift = two_gig.lf.median.as_nanos() as f64 / base.lf.median.as_nanos() as f64;
        assert!((0.95..1.05).contains(&drift), "2G vs 512M drift {drift:.3}");
    }

    #[test]
    fn table3_shape_matches_paper() {
        let (rows, empty) = table3_sgx_metrics(500, 2);
        // Empty workload: exactly the paper's 762/680/49674.
        assert_eq!(empty.eenter, 762);
        assert_eq!(empty.eexit, 680);
        assert_eq!(empty.aex, 49_674);
        for pair in rows.chunks(2) {
            let one = &pair[0];
            let two = &pair[1];
            // EENTER/EEXIT grow ~91/UE; AEX stays flat.
            let d_enter = two.counters.eenter - one.counters.eenter;
            assert!((85..=100).contains(&d_enter), "{d_enter} eenter/UE");
            let aex_diff = two.counters.aex.abs_diff(one.counters.aex);
            assert!(aex_diff < 200, "AEX drift {aex_diff}");
            // Totals in the paper's 1400-1800 band at 1-2 UEs.
            assert!(
                (1300..=1900).contains(&one.counters.eenter),
                "{}",
                one.counters.eenter
            );
            // EENTER exceeds EEXIT by a near-constant (~94).
            let gap = one.counters.eenter - one.counters.eexit;
            assert!((80..=110).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn per_registration_delta_is_about_91() {
        let d = per_registration_delta(600, PakaKind::EAusf);
        assert!((88..=96).contains(&d.eenter), "{}", d.eenter);
        assert_eq!(d.eenter, d.eexit);
    }

    #[test]
    fn ablations_improve_response_time() {
        let rows = ablation_optimizations(700, 15);
        assert_eq!(rows.len(), 3);
        let baseline = rows[0].r_stable.median;
        assert!(
            rows[1].r_stable.median < baseline,
            "exitless should be faster"
        );
        assert!(rows[2].r_stable.median < baseline, "mtcp should be faster");
    }

    #[test]
    fn concurrency_needs_threads() {
        // With 4 threads (1 app thread), 8 concurrent flows queue up;
        // with 12 threads (9 app threads) they nearly do not.
        let rows = concurrency_sweep(950, &[1, 8], &[4, 12]);
        let find = |threads: u32, clients: u32| {
            rows.iter()
                .find(|r| r.max_threads == threads && r.concurrent_clients == clients)
                .unwrap()
                .mean_response
        };
        let single_4 = find(4, 1);
        let loaded_4 = find(4, 8);
        let loaded_12 = find(12, 8);
        assert!(
            loaded_4 > single_4 * 3,
            "queueing must dominate: {loaded_4} vs {single_4}"
        );
        assert!(
            loaded_12 < loaded_4 / 2,
            "more threads must relieve queueing"
        );
    }

    #[test]
    fn simultaneous_arrivals_queue_monotonically_then_overlap_with_workers() {
        const K: u32 = 6;
        let run = |max_threads: u32| {
            let cfg = SgxConfig {
                max_threads,
                ..SgxConfig::default()
            };
            let (mut env, mut engine) =
                module_engine(952, PakaKind::EUdm, ModuleDeployment::Sgx(cfg));
            let request = standard_request(PakaKind::EUdm);
            let t0 = env.clock.now();
            for _ in 0..K {
                engine.schedule_request(t0, PakaKind::EUdm.endpoint(), request.clone());
            }
            let mut done = engine.run_until_idle(&mut env);
            assert_eq!(done.len(), K as usize);
            done.sort_by_key(|c| c.finished);
            done
        };

        // 1 app worker: FIFO service, so each of the K simultaneous
        // arrivals waits behind all earlier ones — response times are
        // strictly increasing in completion order.
        let queued = run(4);
        let lone = queued[0].finished - queued[0].submitted;
        for pair in queued.windows(2) {
            assert!(
                pair[1].finished - pair[1].submitted > pair[0].finished - pair[0].submitted,
                "queueing must grow monotonically"
            );
        }

        // ≥K app workers: every flow gets a worker at t0 and completes
        // within a constant factor of a lone request.
        let overlapped = run(K + 3);
        for c in &overlapped {
            assert_eq!(c.queued, SimDuration::ZERO);
            assert!(
                c.finished - c.submitted < lone * 2,
                "with {K} workers a flow took {} vs lone {lone}",
                c.finished - c.submitted
            );
        }
    }

    #[test]
    fn near_simultaneous_arrivals_serialize_or_overlap_by_thread_budget() {
        // Two registrations 1 µs apart: a 1-app-thread eUDM (max_threads=4)
        // must serve them back-to-back (second waits in queue), while a
        // 4-app-thread eUDM (max_threads=7) serves them concurrently — the
        // second flow never queues. This is pure event ordering: nothing
        // in the harness computes a schedule.
        let run = |max_threads: u32| {
            let cfg = SgxConfig {
                max_threads,
                ..SgxConfig::default()
            };
            let (mut env, mut engine) =
                module_engine(951, PakaKind::EUdm, ModuleDeployment::Sgx(cfg));
            let request = standard_request(PakaKind::EUdm);
            let t0 = env.clock.now();
            engine.schedule_request(t0, PakaKind::EUdm.endpoint(), request.clone());
            engine.schedule_request(
                t0 + SimDuration::from_micros(1),
                PakaKind::EUdm.endpoint(),
                request,
            );
            let mut done = engine.run_until_idle(&mut env);
            assert_eq!(done.len(), 2);
            done.sort_by_key(|c| c.submitted);
            done
        };

        let serialized = run(4);
        assert!(
            serialized[1].queued > SimDuration::ZERO,
            "1 app thread: second arrival must wait for the first"
        );
        assert!(serialized[1].finished >= serialized[0].finished);

        let overlapped = run(7);
        assert_eq!(
            overlapped[1].queued,
            SimDuration::ZERO,
            "4 app threads: second arrival must start immediately"
        );
        let second_latency = overlapped[1].finished - overlapped[1].submitted;
        let second_serialized = serialized[1].finished - serialized[1].submitted;
        assert!(
            second_latency < second_serialized * 2 / 3,
            "overlap must beat queueing: {second_latency} vs {second_serialized}"
        );
    }

    #[test]
    fn latency_outlier_fraction_is_small() {
        // §V-A2: "We noted less than 5% outliers in our measurements."
        let (mut env, mut module) = deploy_module(
            990,
            PakaKind::EUdm,
            ModuleDeployment::Sgx(SgxConfig::default()),
        );
        let request = standard_request(PakaKind::EUdm);
        let _ = module.serve(&mut env, request.clone());
        let samples: Vec<_> = (0..200)
            .map(|_| module.serve(&mut env, request.clone()).1.total)
            .collect();
        let frac = crate::stats::Summary::outlier_fraction(&samples);
        assert!(frac < 0.05, "outlier fraction {frac:.3}");
    }

    #[test]
    fn table1_sizes() {
        let rows = table1_parameter_sizes();
        assert_eq!(rows[0].input_bytes, 40);
        assert_eq!(rows[0].output_bytes, 80);
        assert_eq!(rows[2].input_bytes, 32);
    }

    #[test]
    fn image_bytes_ordering_drives_fig7() {
        assert!(module_image_bytes(PakaKind::EUdm) > module_image_bytes(PakaKind::EAusf));
        assert!(module_image_bytes(PakaKind::EAusf) > module_image_bytes(PakaKind::EAmf));
    }
}
