//! The §VI Key-Issue analysis (Table V).
//!
//! 3GPP TR 33.848 lists Key Issues arising from virtualisation; the paper
//! marks four as HMEE-applicable per 3GPP (KI 6, 7, 15, 25) and argues
//! HMEE fully or partially mitigates nine more. This module encodes that
//! matrix *and substantiates it*: [`demonstrate`] runs the §III attacker
//! against a deployed slice and checks that each demonstrable claim
//! actually holds in the simulation (plaintext harvest succeeds against
//! containers, fails against enclaves; tampering is detected; sealed
//! image secrets stay sealed; attestation distinguishes hosts).

use crate::paka::PakaKind;
use crate::slice::{AkaDeployment, Slice};
use shield5g_hmee::attest::{AttestationService, QuotePolicy, Report};
use shield5g_infra::attacker::Attacker;
use shield5g_sim::Env;

/// How far HMEE goes on a Key Issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Fully mitigated by HMEE properties (Table V "+").
    Full,
    /// Partially mitigated (Table V "half moon").
    Partial,
}

/// One row of Table V.
#[derive(Clone, Debug)]
pub struct KeyIssue {
    /// TR 33.848 Key Issue number.
    pub number: u8,
    /// Short description (Table V wording).
    pub description: &'static str,
    /// Whether 3GPP itself lists HMEE as a solution (Table V "●").
    pub hmee_flagged_by_3gpp: bool,
    /// The paper's assessed resolution.
    pub resolution: Resolution,
    /// Which SGX attribute carries the mitigation.
    pub mechanism: &'static str,
}

/// The full Table V matrix.
#[must_use]
pub fn table5() -> Vec<KeyIssue> {
    vec![
        KeyIssue {
            number: 2,
            description: "Confidentiality of sensitive data",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Full,
            mechanism: "EPC encryption of data in use",
        },
        KeyIssue {
            number: 5,
            description: "Data location and lifecycle",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Partial,
            mechanism: "encryption at rest in EPC; cache flush on teardown",
        },
        KeyIssue {
            number: 6,
            description: "Function isolation",
            hmee_flagged_by_3gpp: true,
            resolution: Resolution::Full,
            mechanism: "hardware memory isolation between enclaves",
        },
        KeyIssue {
            number: 7,
            description: "Memory introspection",
            hmee_flagged_by_3gpp: true,
            resolution: Resolution::Full,
            mechanism: "EPC readable only inside the CPU package",
        },
        KeyIssue {
            number: 11,
            description: "Where are my keys and confidential data",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Partial,
            mechanism: "attested in-enclave key storage",
        },
        KeyIssue {
            number: 12,
            description: "Where is my function",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Partial,
            mechanism: "host posture verified via attestation before deployment",
        },
        KeyIssue {
            number: 13,
            description: "Attestation at 3GPP function level",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Full,
            mechanism: "hardware-rooted quotes over MRENCLAVE",
        },
        KeyIssue {
            number: 15,
            description: "Encrypted data processing",
            hmee_flagged_by_3gpp: true,
            resolution: Resolution::Full,
            mechanism: "data in use stays encrypted outside the LLC",
        },
        KeyIssue {
            number: 20,
            description: "3rd party hosting environments",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Partial,
            mechanism: "confidentiality on untrusted hosts, verified by quotes",
        },
        KeyIssue {
            number: 21,
            description: "VM and hypervisor breakout",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Partial,
            mechanism: "breach impact limited: enclave contents stay protected",
        },
        KeyIssue {
            number: 25,
            description: "Container security",
            hmee_flagged_by_3gpp: true,
            resolution: Resolution::Full,
            mechanism: "hardware isolation for containerised functions (GSC)",
        },
        KeyIssue {
            number: 26,
            description: "Container breakout",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Partial,
            mechanism: "escaped attacker still reads only EPC ciphertext",
        },
        KeyIssue {
            number: 27,
            description: "Secrets in NF container images",
            hmee_flagged_by_3gpp: false,
            resolution: Resolution::Full,
            mechanism: "secret sealing bound to enclave identity",
        },
    ]
}

/// Outcome of one demonstrated claim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Demonstration {
    /// Key Issue the claim supports.
    pub ki: u8,
    /// What was attempted.
    pub claim: &'static str,
    /// Whether the simulation upheld the paper's argument.
    pub upheld: bool,
    /// One-line evidence.
    pub evidence: String,
}

/// Runs the §III attack chain against a deployed slice and reports which
/// Table V claims the simulation substantiates.
///
/// The attacker gains co-residency and host root (the §III premise), then
/// attempts the KI 7/15 memory sweep, the KI 21/26 tamper, and the KI 13
/// attestation forgery. Against an SGX slice every attempt must fail;
/// against container/monolithic slices the sweep must *succeed* — that
/// contrast is Table V's content.
#[must_use]
pub fn demonstrate(env: &mut Env, slice: &mut Slice) -> Vec<Demonstration> {
    let mut out = Vec::new();
    let mut attacker = Attacker::new("co-tenant");
    // The §III premise (≈90% success; retry until placed).
    while attacker.gain_co_residency(env, &slice.host).is_err() {}
    attacker
        .escape_to_host(env, &slice.host)
        .expect("vulnerable engine");

    // KI 7/15: memory introspection for the subscriber's long-term key.
    let k = slice.subscribers[0].k;
    let findings = attacker
        .introspect_memory(env, &slice.host, &k)
        .expect("root attacker can introspect");
    let leaked = findings.iter().any(|f| f.found_plaintext);
    let shielded = matches!(slice.deployment, AkaDeployment::Sgx(_));
    out.push(Demonstration {
        ki: 7,
        claim: "memory introspection recovers the long-term key K",
        upheld: if shielded { !leaked } else { leaked },
        evidence: format!(
            "{} deployment: K {} in a memory sweep of {} containers",
            slice.deployment.label(),
            if leaked { "recovered" } else { "not recovered" },
            findings.len()
        ),
    });

    // KI 21/26: integrity attack on the AKA state.
    let (tampered, detected) = match slice.module(PakaKind::EUdm) {
        Some(module) => {
            let landed = attacker
                .tamper_container(
                    &slice.host,
                    PakaKind::EUdm.endpoint(),
                    "k:imsi-001010000000001",
                )
                .unwrap_or(false);
            // Detection: the module fails closed on next key use.
            let mut m = module.borrow_mut();
            let req = crate::harness::standard_request(PakaKind::EUdm);
            let (resp, _) = m.serve(env, req);
            (landed, !resp.is_success())
        }
        None => {
            let landed = attacker
                .tamper_container(&slice.host, "udm.oai", "k:imsi-001010000000001")
                .unwrap_or(false);
            (landed, false) // plain memory: corruption goes unnoticed
        }
    };
    out.push(Demonstration {
        ki: 26,
        claim: "post-breakout tampering with AKA state goes undetected",
        upheld: if shielded {
            tampered && detected
        } else {
            tampered && !detected
        },
        evidence: format!(
            "tamper {}, {}",
            if tampered { "landed" } else { "blocked" },
            if detected {
                "detected on next access"
            } else {
                "silent"
            }
        ),
    });

    // KI 13: attestation cannot be forged from outside the platform.
    if let Some(platform) = slice.host.platform() {
        let mut svc = AttestationService::new();
        svc.register_platform(platform);
        if let Some(module) = slice.module(PakaKind::EUdm) {
            let m = module.borrow();
            let c = m.container();
            let c = c.borrow();
            let enclave = c.shielded.as_ref().map(|l| l.enclave());
            if let Some(enclave) = enclave {
                let report = Report::create(enclave, [0x42; 64]);
                let quote = platform.quote(&report).expect("honest quote");
                let mut policy = QuotePolicy::exact(*enclave.mrenclave());
                policy.allow_debug = true; // stats builds are debug-mode
                let genuine_ok = svc.verify(&quote, &policy).is_ok();
                let mut forged = quote.clone();
                forged.mrenclave[0] ^= 1;
                let forgery_rejected = svc
                    .verify(
                        &forged,
                        &QuotePolicy {
                            mrenclave: Some(forged.mrenclave),
                            mrsigner: None,
                            allow_debug: true,
                        },
                    )
                    .is_err();
                out.push(Demonstration {
                    ki: 13,
                    claim: "function-level attestation verifies and resists forgery",
                    upheld: genuine_ok && forgery_rejected,
                    evidence: format!(
                        "genuine quote ok={genuine_ok}, forged quote rejected={forgery_rejected}"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paka::SgxConfig;
    use crate::slice::{build_slice, SliceConfig};

    fn run(deployment: AkaDeployment) -> Vec<Demonstration> {
        let mut env = Env::new(37);
        env.log.disable();
        let mut slice = build_slice(
            &mut env,
            &SliceConfig {
                deployment,
                subscriber_count: 2,
            },
        )
        .unwrap();
        // Exercise the slice so derived keys exist in module memory.
        if slice.module(PakaKind::EUdm).is_some() {
            let mut client = slice.client_for(PakaKind::EUdm, "udm.oai").unwrap();
            let req = crate::harness::standard_request(PakaKind::EUdm);
            client.call(&mut env, &req.path, req.body.clone()).unwrap();
        }
        demonstrate(&mut env, &mut slice)
    }

    #[test]
    fn matrix_matches_table5() {
        let m = table5();
        assert_eq!(m.len(), 13);
        // The four KIs 3GPP itself marks HMEE-applicable.
        let flagged: Vec<u8> = m
            .iter()
            .filter(|k| k.hmee_flagged_by_3gpp)
            .map(|k| k.number)
            .collect();
        assert_eq!(flagged, vec![6, 7, 15, 25]);
        // Full vs partial split per Table V.
        let full: Vec<u8> = m
            .iter()
            .filter(|k| k.resolution == Resolution::Full)
            .map(|k| k.number)
            .collect();
        assert_eq!(full, vec![2, 6, 7, 13, 15, 25, 27]);
        let partial = m.len() - full.len();
        assert_eq!(partial, 6);
    }

    #[test]
    fn sgx_slice_upholds_all_claims() {
        let demos = run(AkaDeployment::Sgx(SgxConfig::default()));
        assert!(demos.len() >= 3);
        for d in &demos {
            assert!(d.upheld, "KI {} claim not upheld: {}", d.ki, d.evidence);
        }
    }

    #[test]
    fn container_slice_shows_the_vulnerabilities() {
        let demos = run(AkaDeployment::Container);
        let ki7 = demos.iter().find(|d| d.ki == 7).unwrap();
        assert!(
            ki7.upheld,
            "container deployment must leak the key: {}",
            ki7.evidence
        );
        let ki26 = demos.iter().find(|d| d.ki == 26).unwrap();
        assert!(
            ki26.upheld,
            "container tampering must be silent: {}",
            ki26.evidence
        );
    }

    #[test]
    fn monolithic_slice_leaks_from_the_vnf() {
        let demos = run(AkaDeployment::Monolithic);
        let ki7 = demos.iter().find(|d| d.ki == 7).unwrap();
        assert!(
            ki7.upheld,
            "monolithic UDM must leak the key: {}",
            ki7.evidence
        );
    }
}
