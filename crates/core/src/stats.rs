//! Sample statistics for the characterization experiments.
//!
//! The paper reports box plots (median, interquartile range, whiskers)
//! over 500 repetitions (§V-A2); [`Summary`] carries exactly those
//! figures plus mean/stddev for the tables.

use shield5g_sim::time::SimDuration;

/// Summary statistics over a set of duration samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: SimDuration,
    /// First quartile.
    pub p25: SimDuration,
    /// Median.
    pub median: SimDuration,
    /// Third quartile.
    pub p75: SimDuration,
    /// 95th percentile (tail latency under load).
    pub p95: SimDuration,
    /// 99th percentile (tail latency under load).
    pub p99: SimDuration,
    /// Maximum.
    pub max: SimDuration,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Population standard deviation.
    pub stddev: SimDuration,
}

impl Summary {
    /// The summary of zero samples: `count == 0`, every statistic zero.
    /// Fault runs can shed 100% of requests, so the empty set is a
    /// reachable, legitimate input — not a caller bug.
    pub const EMPTY: Summary = Summary {
        count: 0,
        min: SimDuration::ZERO,
        p25: SimDuration::ZERO,
        median: SimDuration::ZERO,
        p75: SimDuration::ZERO,
        p95: SimDuration::ZERO,
        p99: SimDuration::ZERO,
        max: SimDuration::ZERO,
        mean: SimDuration::ZERO,
        stddev: SimDuration::ZERO,
    };

    /// Whether this summary covers zero samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Summarises a set of samples; the empty set yields
    /// [`Summary::EMPTY`].
    #[must_use]
    pub fn of(samples: &[SimDuration]) -> Summary {
        if samples.is_empty() {
            return Summary::EMPTY;
        }
        let mut sorted: Vec<u64> = samples.iter().map(|d| d.as_nanos()).collect();
        sorted.sort_unstable();
        let count = sorted.len();
        let pct = |p: f64| -> u64 {
            // Linear interpolation between the two closest ranks (the
            // "linear"/type-7 method of NumPy and R) — NOT nearest-rank:
            // p95 of [1..5] µs is 4.8 µs, not 5 µs. Pinned by
            // `percentile_semantics_are_linear_interpolation` below; the
            // shield5g-obs exporters rely on these exact semantics.
            let idx = p * (count - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = idx - lo as f64;
                (sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac).round() as u64
            }
        };
        let mean = sorted.iter().sum::<u64>() as f64 / count as f64;
        let var = sorted
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / count as f64;
        Summary {
            count,
            min: SimDuration::from_nanos(sorted[0]),
            p25: SimDuration::from_nanos(pct(0.25)),
            median: SimDuration::from_nanos(pct(0.5)),
            p75: SimDuration::from_nanos(pct(0.75)),
            p95: SimDuration::from_nanos(pct(0.95)),
            p99: SimDuration::from_nanos(pct(0.99)),
            max: SimDuration::from_nanos(sorted[count - 1]),
            mean: SimDuration::from_nanos(mean.round() as u64),
            stddev: SimDuration::from_nanos(var.sqrt().round() as u64),
        }
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> SimDuration {
        self.p75 - self.p25
    }

    /// Renders the summary as a JSON object with integer nanosecond
    /// fields — the form the shield5g-obs exporters and the
    /// `BENCH_*.json` emitters embed verbatim.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"min_ns\":{},\"p25_ns\":{},\"p50_ns\":{},\"p75_ns\":{},\
             \"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"stddev_ns\":{}}}",
            self.count,
            self.min.as_nanos(),
            self.p25.as_nanos(),
            self.median.as_nanos(),
            self.p75.as_nanos(),
            self.p95.as_nanos(),
            self.p99.as_nanos(),
            self.max.as_nanos(),
            self.mean.as_nanos(),
            self.stddev.as_nanos(),
        )
    }

    /// Ratio of this summary's median to another's (the paper's "×"
    /// overhead figures). Zero when either side is empty.
    #[must_use]
    pub fn median_ratio_to(&self, baseline: &Summary) -> f64 {
        if baseline.median.as_nanos() == 0 {
            return 0.0;
        }
        self.median.as_nanos() as f64 / baseline.median.as_nanos() as f64
    }

    /// Fraction of samples outside 1.5 IQR whiskers (the paper notes
    /// "less than 5% outliers", §V-A2). Zero for the empty set.
    #[must_use]
    pub fn outlier_fraction(samples: &[SimDuration]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let s = Summary::of(samples);
        let iqr = s.iqr().as_nanos() as f64;
        let lo = s.p25.as_nanos() as f64 - 1.5 * iqr;
        let hi = s.p75.as_nanos() as f64 + 1.5 * iqr;
        let n = samples
            .iter()
            .filter(|d| (d.as_nanos() as f64) < lo || (d.as_nanos() as f64) > hi)
            .count();
        n as f64 / samples.len() as f64
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {} [p25 {}, p75 {}] mean {} (n={})",
            self.median, self.p25, self.p75, self.mean, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn summary_of_known_samples() {
        let samples: Vec<SimDuration> = (1..=5).map(us).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, us(1));
        assert_eq!(s.median, us(3));
        assert_eq!(s.max, us(5));
        assert_eq!(s.mean, us(3));
        assert_eq!(s.p25, us(2));
        assert_eq!(s.p75, us(4));
        assert_eq!(s.iqr(), us(2));
        // Interpolated tail quantiles: index 0.95·4 = 3.8 → 4.8 µs.
        assert_eq!(s.p95, SimDuration::from_nanos(4_800));
        assert_eq!(s.p99, SimDuration::from_nanos(4_960));
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[us(7)]);
        assert_eq!(s.median, us(7));
        assert_eq!(s.min, s.max);
        assert_eq!(s.stddev, SimDuration::ZERO);
    }

    #[test]
    fn empty_is_safe() {
        // Regression: used to panic — reachable once fault injection
        // sheds 100% of a run.
        let s = Summary::of(&[]);
        assert!(s.is_empty());
        assert_eq!(s, Summary::EMPTY);
        assert_eq!(s.count, 0);
        assert_eq!(s.median, SimDuration::ZERO);
        assert_eq!(s.iqr(), SimDuration::ZERO);
        assert_eq!(Summary::outlier_fraction(&[]), 0.0);
        let nonempty = Summary::of(&[us(7)]);
        assert_eq!(nonempty.median_ratio_to(&s), 0.0);
    }

    #[test]
    fn median_ratio() {
        let sgx = Summary::of(&[us(120), us(130), us(140)]);
        let container = Summary::of(&[us(60), us(65), us(70)]);
        let ratio = sgx.median_ratio_to(&container);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn outlier_fraction_flags_tails() {
        let mut samples: Vec<SimDuration> = (0..99).map(|_| us(50)).collect();
        samples.push(us(5_000));
        let frac = Summary::outlier_fraction(&samples);
        assert!((frac - 0.01).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_handled() {
        let s = Summary::of(&[us(9), us(1), us(5)]);
        assert_eq!(s.min, us(1));
        assert_eq!(s.median, us(5));
        assert_eq!(s.max, us(9));
    }

    #[test]
    fn display_mentions_median() {
        let s = Summary::of(&[us(3)]);
        assert!(s.to_string().contains("median"));
    }

    #[test]
    fn percentile_semantics_are_linear_interpolation() {
        // Pins the quantile method: linear interpolation between closest
        // ranks, not nearest-rank. Under nearest-rank, p95 of [1..5] µs
        // would be 5 µs and p50 of [1..4] µs would be 2 or 3 µs; the
        // interpolated values differ and exporters depend on them.
        let five: Vec<SimDuration> = (1..=5).map(us).collect();
        let s = Summary::of(&five);
        assert_eq!(s.p95, SimDuration::from_nanos(4_800));
        let four: Vec<SimDuration> = (1..=4).map(us).collect();
        let s = Summary::of(&four);
        assert_eq!(s.median, SimDuration::from_nanos(2_500));
        assert_eq!(s.p25, SimDuration::from_nanos(1_750));
    }

    #[test]
    fn to_json_embeds_every_field_in_nanos() {
        let s = Summary::of(&(1..=5).map(us).collect::<Vec<_>>());
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"count\":5"));
        assert!(json.contains("\"min_ns\":1000"));
        assert!(json.contains("\"p50_ns\":3000"));
        assert!(json.contains("\"p95_ns\":4800"));
        assert!(json.contains("\"max_ns\":5000"));
        assert!(json.contains("\"stddev_ns\":"));
        let empty = Summary::EMPTY.to_json();
        assert!(empty.contains("\"count\":0"));
    }

    proptest::proptest! {
        #[test]
        fn quantiles_are_ordered(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let d: Vec<SimDuration> = samples.iter().map(|&n| SimDuration::from_nanos(n)).collect();
            let s = Summary::of(&d);
            proptest::prop_assert!(s.min <= s.p25);
            proptest::prop_assert!(s.p25 <= s.median);
            proptest::prop_assert!(s.median <= s.p75);
            proptest::prop_assert!(s.p75 <= s.p95);
            proptest::prop_assert!(s.p95 <= s.p99);
            proptest::prop_assert!(s.p99 <= s.max);
            proptest::prop_assert!(s.mean >= s.min && s.mean <= s.max);
        }

        #[test]
        fn summary_is_permutation_invariant(samples in proptest::collection::vec(0u64..1_000_000, 1..50)) {
            let d: Vec<SimDuration> = samples.iter().map(|&n| SimDuration::from_nanos(n)).collect();
            let mut reversed = d.clone();
            reversed.reverse();
            proptest::prop_assert_eq!(Summary::of(&d), Summary::of(&reversed));
        }
    }
}
