//! Network-slice assembly: the testbed of paper Figure 4.
//!
//! A slice is the full control-plane service chain (NRF, UDR, UDM, AUSF,
//! AMF, SMF, UPF) on a host, with the sensitive AKA functions in one of
//! three deployments:
//!
//! * [`AkaDeployment::Monolithic`] — AKA inside the VNFs (stock OAI),
//! * [`AkaDeployment::Container`] — extracted modules in plain containers,
//! * [`AkaDeployment::Sgx`] — extracted modules inside SGX enclaves
//!   (the paper's P-AKA deployment).
//!
//! The builder also provisions subscribers end to end: UDR records, the
//! module/backend key tables, and [`Subscriber`] credentials for USIMs.

use crate::paka::{populate_registry, PakaKind, PakaModule, SgxConfig};
use crate::remote::{ModuleMetricsLog, PakaClient, RemoteAmfAka, RemoteAusfAka, RemoteUdmAka};
use crate::CoreError;
use shield5g_crypto::ecies::HomeNetworkKeyPair;
use shield5g_crypto::ident::{Plmn, Supi};
use shield5g_hmee::platform::SgxPlatform;
use shield5g_infra::bridge::BridgeNetwork;
use shield5g_infra::host::Host;
use shield5g_infra::image::{ContainerImage, Registry};
use shield5g_libos::gsc::ImageSpec;
use shield5g_mw::{
    BreakerLayer, BreakerPolicy, FaultLayer, FaultSwitch, ObsCoreHandle, ObsLayer, Stack,
};
use shield5g_nf::amf::AmfService;
use shield5g_nf::ausf::AusfService;
use shield5g_nf::backend::{LocalAmfAka, LocalAusfAka, LocalUdmAka};
use shield5g_nf::nrf::{NfProfile, NrfService};
use shield5g_nf::sbi::SbiClient;
use shield5g_nf::smf::SmfService;
use shield5g_nf::udm::UdmService;
use shield5g_nf::udr::UdrService;
use shield5g_nf::upf::UpfService;
use shield5g_nf::{addr, NfType};
use shield5g_sim::engine::{Engine, EngineServiceHandle};
use shield5g_sim::http::HttpRequest;
use shield5g_sim::service::service_handle;
use shield5g_sim::Env;
use std::cell::RefCell;
use std::rc::Rc;

/// Worker threads per leaf service (UDR/UPF/NRF): effectively unbounded —
/// these stores are not the contended resources under study.
const LEAF_WORKERS: u32 = 64;

/// Worker threads per OAI VNF (UDM/AUSF/AMF/SMF): the OAI HTTP servers
/// run a small thread pool per NF.
const VNF_WORKERS: u32 = 16;

/// Where the sensitive AKA functions execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AkaDeployment {
    /// In-process inside the monolithic VNFs.
    Monolithic,
    /// Extracted modules in unprotected containers.
    Container,
    /// Extracted modules inside SGX enclaves (P-AKA).
    Sgx(SgxConfig),
}

impl AkaDeployment {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AkaDeployment::Monolithic => "monolithic",
            AkaDeployment::Container => "container",
            AkaDeployment::Sgx(_) => "sgx",
        }
    }
}

/// A provisioned subscriber: what the USIM and the home network share.
#[derive(Clone, Debug)]
pub struct Subscriber {
    /// Permanent identity.
    pub supi: Supi,
    /// Long-term key K.
    pub k: [u8; 16],
    /// Operator variant constant OPc.
    pub opc: [u8; 16],
}

impl Subscriber {
    /// The `i`-th test subscriber on PLMN 001/01 (credentials derived
    /// from the TS 35.208 test-set constants).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 10^10` (MSIN space exhausted) — unreachable in
    /// practice.
    #[must_use]
    pub fn test(i: u32) -> Self {
        let msin = format!("{:010}", u64::from(i) + 1);
        let supi = Supi::new(Plmn::test_network(), &msin).expect("valid test msin");
        let mut k = shield5g_crypto::hex::decode_array::<16>("465b5ce8b199b49faa5f0a2ee238a6bc")
            .expect("valid hex");
        k[12..16].copy_from_slice(&i.to_be_bytes());
        let opc = shield5g_crypto::hex::decode_array::<16>("cd63cb71954a9f4e48a5994e37a02baf")
            .expect("valid hex");
        Subscriber { supi, k, opc }
    }
}

/// Slice build options.
#[derive(Clone, Debug)]
pub struct SliceConfig {
    /// AKA deployment flavour.
    pub deployment: AkaDeployment,
    /// Number of test subscribers to provision.
    pub subscriber_count: u32,
}

impl Default for SliceConfig {
    fn default() -> Self {
        SliceConfig {
            deployment: AkaDeployment::Sgx(SgxConfig::default()),
            subscriber_count: 10,
        }
    }
}

/// A deployed slice.
pub struct Slice {
    /// The shared discrete-event engine (the "network").
    pub engine: Rc<RefCell<Engine>>,
    /// The physical host everything runs on.
    pub host: Host,
    /// The OAI docker bridge between VNFs and modules.
    pub bridge: Rc<RefCell<BridgeNetwork>>,
    /// The image registry used for deployment.
    pub registry: Registry,
    /// Deployment flavour in effect.
    pub deployment: AkaDeployment,
    /// Provisioned subscribers.
    pub subscribers: Vec<Subscriber>,
    /// Home-network ECIES public key (for USIM provisioning).
    pub hn_public: [u8; 32],
    /// Home-network key identifier.
    pub hn_key_id: u8,
    /// Typed AMF handle (it is also registered on the engine).
    pub amf: Rc<RefCell<AmfService>>,
    /// Typed NRF handle.
    pub nrf: Rc<RefCell<NrfService>>,
    /// Arms/disarms fault injection across every slice endpoint at once
    /// (each endpoint's [`FaultLayer`] holds a clone; fault plans install
    /// through this switch after the slice is built).
    pub fault_switch: FaultSwitch,
    /// The slice-wide circuit-breaker core shared by every endpoint's
    /// [`BreakerLayer`] — one circuit table per peer address, readable
    /// after runs (states, failure EWMAs, trip counters).
    pub breaker: shield5g_mw::BreakerHandle,
    modules: Vec<(PakaKind, Rc<RefCell<PakaModule>>)>,
    backend_metrics: Vec<(PakaKind, Rc<RefCell<ModuleMetricsLog>>)>,
}

impl std::fmt::Debug for Slice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slice")
            .field("deployment", &self.deployment.label())
            .field("subscribers", &self.subscribers.len())
            .field("modules", &self.modules.len())
            .finish()
    }
}

impl Slice {
    /// The module of the given kind (None for monolithic slices).
    #[must_use]
    pub fn module(&self, kind: PakaKind) -> Option<Rc<RefCell<PakaModule>>> {
        self.modules
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m.clone())
    }

    /// The in-slice backend metric log for a module (R/L_F/L_T samples
    /// collected from real registrations flowing through the slice).
    #[must_use]
    pub fn backend_metrics(&self, kind: PakaKind) -> Option<Rc<RefCell<ModuleMetricsLog>>> {
        self.backend_metrics
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m.clone())
    }

    /// Builds a fresh [`PakaClient`] against a deployed module — the
    /// harness uses these for direct module characterization.
    #[must_use]
    pub fn client_for(&self, kind: PakaKind, vnf_name: &str) -> Option<PakaClient> {
        self.module(kind)
            .map(|m| PakaClient::new(m, self.bridge.clone(), vnf_name))
    }
}

/// The operator's long-term SIDF private key (Curve25519 scalar).
const HN_SIDF_PRIVATE_KEY: [u8; 32] = [
    0x8f, 0x40, 0xc5, 0xad, 0xb6, 0x8f, 0x25, 0x62, 0x4a, 0xe5, 0xb2, 0x14, 0xea, 0x76, 0x7a, 0x6e,
    0xc9, 0x4d, 0x82, 0x9d, 0x3d, 0x7b, 0x5e, 0x1a, 0xd1, 0xba, 0x6f, 0x3e, 0x21, 0x38, 0x28, 0x5f,
];

/// VNF images for the host's container view (the attack surface of the
/// monolithic deployment).
fn vnf_image(name: &str) -> ContainerImage {
    ContainerImage::new(ImageSpec::synthetic(
        format!("oai/{name}:v1.5.0"),
        format!("/usr/bin/oai-{name}"),
        900_000_000,
        120,
    ))
}

/// Builds and wires a complete slice on a fresh SGX-capable host.
///
/// # Errors
///
/// Returns [`CoreError`] when module deployment fails (e.g. invalid SGX
/// configuration).
pub fn build_slice(env: &mut Env, config: &SliceConfig) -> Result<Slice, CoreError> {
    let platform = SgxPlatform::new(env);
    let mut host = Host::with_sgx("r450", platform);
    let mut registry = Registry::new();
    populate_registry(&mut registry);
    for vnf in ["udm", "ausf", "amf", "udr", "smf", "upf", "nrf"] {
        registry.push(vnf_image(vnf));
    }
    let bridge = Rc::new(RefCell::new(BridgeNetwork::new("br-oai")));
    let engine = Rc::new(RefCell::new(Engine::new()));
    // One span table and one fault switch per slice, shared by every
    // endpoint's middleware stack (canonical order: Obs outermost, then
    // Breaker, then Fault — admission/retry layers are added by
    // harnesses that need them). The breaker only acts on sustained
    // outbound failures, so a fault-free slice traces byte-identically
    // to one without it.
    let obs_core: ObsCoreHandle = ObsLayer::core();
    let fault_switch = FaultSwitch::new();
    let breaker = BreakerLayer::new(BreakerPolicy::default()).core();
    let stacked = |svc: EngineServiceHandle| -> EngineServiceHandle {
        Stack::new(svc)
            .with(ObsLayer::new(obs_core.clone()))
            .with(BreakerLayer::with_core(breaker.clone()))
            .with(FaultLayer::new(fault_switch.clone()))
            .into_handle()
    };

    // Subscribers.
    let subscribers: Vec<Subscriber> = (0..config.subscriber_count).map(Subscriber::test).collect();

    // The home-network SIDF key pair. This is the *operator's* long-term
    // key: it is stable across deployments (a USIM provisioned once must
    // keep working when the core is redeployed), so it is a fixed
    // constant rather than a per-world random draw.
    let hn_key = HomeNetworkKeyPair::from_private(1, HN_SIDF_PRIVATE_KEY);

    // UDR with subscription data.
    let mut udr = UdrService::new();
    for sub in &subscribers {
        udr.provision(sub.supi.to_string(), sub.opc, [0x80, 0]);
    }

    // VNF containers on the host (attack surface bookkeeping).
    for vnf in ["udm", "ausf", "amf"] {
        host.run_plain(
            env,
            &registry,
            &format!("oai/{vnf}:v1.5.0"),
            format!("{vnf}.oai"),
        )?;
    }

    // AKA backends per deployment.
    let mut modules = Vec::new();
    let mut backend_metrics = Vec::new();
    let (udm_backend, ausf_backend, amf_backend): (
        Box<dyn shield5g_nf::backend::UdmAkaBackend>,
        Box<dyn shield5g_nf::backend::AusfAkaBackend>,
        Box<dyn shield5g_nf::backend::AmfAkaBackend>,
    ) = match config.deployment {
        AkaDeployment::Monolithic => {
            let mut local = LocalUdmAka::new();
            for sub in &subscribers {
                local.provision(sub.supi.to_string(), sub.k);
            }
            // Monolithic VNF process memory holds the raw keys — mirror
            // them into the UDM container so introspection sees what a
            // memory dump of the OAI UDM would contain.
            if let Some(udm_container) = host.container("udm.oai") {
                let mut c = udm_container.borrow_mut();
                for sub in &subscribers {
                    c.plain_memory
                        .write(format!("k:{}", sub.supi), sub.k.to_vec());
                }
            }
            (
                Box::new(local),
                Box::new(LocalAusfAka::new()),
                Box::new(LocalAmfAka::new()),
            )
        }
        AkaDeployment::Container | AkaDeployment::Sgx(_) => {
            let mut deployed = Vec::new();
            for kind in PakaKind::all() {
                let mut module = match config.deployment {
                    AkaDeployment::Container => {
                        PakaModule::deploy_container(env, &mut host, &registry, kind)?
                    }
                    AkaDeployment::Sgx(cfg) => {
                        PakaModule::deploy_sgx(env, &mut host, &registry, kind, cfg)?
                    }
                    AkaDeployment::Monolithic => unreachable!("outer match"),
                };
                if kind == PakaKind::EUdm {
                    for sub in &subscribers {
                        module.provision_subscriber_key(env, &sub.supi.to_string(), sub.k);
                    }
                }
                deployed.push((kind, Rc::new(RefCell::new(module))));
            }
            let client = |kind: PakaKind, vnf: &str| {
                let module = deployed
                    .iter()
                    .find(|(k, _)| *k == kind)
                    .map(|(_, m)| m.clone())
                    .expect("all kinds deployed");
                PakaClient::new(module, bridge.clone(), vnf)
            };
            let udm_client = client(PakaKind::EUdm, "udm.oai");
            let ausf_client = client(PakaKind::EAusf, "ausf.oai");
            let amf_client = client(PakaKind::EAmf, "amf.oai");
            backend_metrics.push((PakaKind::EUdm, udm_client.metrics()));
            backend_metrics.push((PakaKind::EAusf, ausf_client.metrics()));
            backend_metrics.push((PakaKind::EAmf, amf_client.metrics()));
            // Each module is an engine endpoint whose worker count is the
            // enclave's serving-thread budget: module concurrency (and the
            // Fig. 8 thread-sweep knee) comes from event ordering.
            {
                let mut e = engine.borrow_mut();
                for c in [&udm_client, &ausf_client, &amf_client] {
                    let module = c.module();
                    let (endpoint_addr, workers) = {
                        let m = module.borrow();
                        (m.kind().endpoint(), m.app_threads())
                    };
                    e.register(
                        endpoint_addr,
                        workers,
                        stacked(Engine::leaf(service_handle(c.endpoint()))),
                    );
                }
            }
            modules = deployed;
            (
                Box::new(RemoteUdmAka::new(udm_client)),
                Box::new(RemoteAusfAka::new(ausf_client)),
                Box::new(RemoteAmfAka::new(amf_client)),
            )
        }
    };

    // The VNF service chain.
    let udm = UdmService::new(hn_key.clone(), SbiClient::new(), addr::UDR, udm_backend);
    let ausf = AusfService::new(SbiClient::new(), addr::UDM, ausf_backend);
    let amf = Rc::new(RefCell::new(AmfService::new(
        SbiClient::new(),
        addr::AUSF,
        addr::SMF,
        amf_backend,
        "001",
        "01",
    )));
    let smf = SmfService::new(SbiClient::new(), addr::UPF);
    let upf = UpfService::new();
    let nrf = Rc::new(RefCell::new(NrfService::new()));

    {
        let mut e = engine.borrow_mut();
        e.register(
            addr::UDR,
            LEAF_WORKERS,
            stacked(Engine::leaf(service_handle(udr))),
        );
        e.register(addr::UDM, VNF_WORKERS, stacked(Rc::new(RefCell::new(udm))));
        e.register(
            addr::AUSF,
            VNF_WORKERS,
            stacked(Rc::new(RefCell::new(ausf))),
        );
        e.register(addr::AMF, VNF_WORKERS, stacked(amf.clone()));
        e.register(addr::SMF, VNF_WORKERS, stacked(Rc::new(RefCell::new(smf))));
        e.register(
            addr::UPF,
            LEAF_WORKERS,
            stacked(Engine::leaf(service_handle(upf))),
        );
        e.register(addr::NRF, LEAF_WORKERS, stacked(Engine::leaf(nrf.clone())));
    }

    // NRF registrations (mutual discovery, paper Fig. 2).
    for (nf_type, a) in [
        (NfType::UDR, addr::UDR),
        (NfType::UDM, addr::UDM),
        (NfType::AUSF, addr::AUSF),
        (NfType::AMF, addr::AMF),
        (NfType::SMF, addr::SMF),
        (NfType::UPF, addr::UPF),
    ] {
        engine
            .borrow_mut()
            .dispatch_ok(
                env,
                addr::NRF,
                HttpRequest::post(
                    "/nnrf-nfm/register",
                    NfProfile {
                        nf_type,
                        addr: a.to_owned(),
                    }
                    .encode(),
                ),
            )
            .map_err(|e| CoreError::Nf(shield5g_nf::NfError::Sim(e)))?;
    }

    env.log.record(
        env.clock.now(),
        "slice",
        format!(
            "slice deployed ({}) with {} subscribers",
            config.deployment.label(),
            subscribers.len()
        ),
    );

    Ok(Slice {
        engine,
        host,
        bridge,
        registry,
        deployment: config.deployment,
        subscribers,
        hn_public: *hn_key.public(),
        hn_key_id: hn_key.id(),
        amf,
        nrf,
        fault_switch,
        breaker,
        modules,
        backend_metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_crypto::keys::ServingNetworkName;
    use shield5g_nf::messages::UeIdentity;
    use shield5g_nf::sbi::{AuthenticateRequest, AuthenticateResponse};
    use shield5g_sim::http::HttpRequest;

    fn build(deployment: AkaDeployment) -> (Env, Slice) {
        let mut env = Env::new(29);
        env.log.disable();
        let slice = build_slice(
            &mut env,
            &SliceConfig {
                deployment,
                subscriber_count: 3,
            },
        )
        .unwrap();
        (env, slice)
    }

    /// Runs the SBI-level authentication (AMF → AUSF → UDM → backend) for
    /// subscriber 0 and checks the SE AV against the USIM-side crypto.
    fn authenticate_and_check(env: &mut Env, slice: &Slice) {
        let sub = &slice.subscribers[0];
        let eph: [u8; 32] = env.rng.bytes();
        let suci = sub
            .supi
            .conceal_profile_a(slice.hn_key_id, &slice.hn_public, &eph);
        let req = AuthenticateRequest {
            identity: UeIdentity::Suci(suci),
            known_supi: String::new(),
            snn_mcc: "001".into(),
            snn_mnc: "01".into(),
        };
        let body = slice
            .engine
            .borrow_mut()
            .dispatch_ok(
                env,
                addr::AUSF,
                HttpRequest::post("/nausf-auth/authenticate", req.encode()),
            )
            .unwrap()
            .body;
        let resp = AuthenticateResponse::decode(&body).unwrap();
        let mil = shield5g_crypto::milenage::Milenage::with_opc(&sub.k, &sub.opc);
        let snn = ServingNetworkName::new("001", "01");
        let ue = shield5g_crypto::keys::ue_process_challenge(
            &mil,
            &resp.se_av.rand,
            &resp.se_av.autn,
            &snn,
        )
        .unwrap();
        assert_eq!(
            shield5g_crypto::keys::derive_hxres_star(&resp.se_av.rand, &ue.res_star),
            resp.se_av.hxres_star
        );
    }

    #[test]
    fn monolithic_slice_authenticates() {
        let (mut env, slice) = build(AkaDeployment::Monolithic);
        assert!(slice.module(PakaKind::EUdm).is_none());
        authenticate_and_check(&mut env, &slice);
    }

    #[test]
    fn container_slice_authenticates() {
        let (mut env, slice) = build(AkaDeployment::Container);
        assert!(slice.module(PakaKind::EUdm).is_some());
        assert!(!slice.module(PakaKind::EUdm).unwrap().borrow().is_shielded());
        authenticate_and_check(&mut env, &slice);
        // The backend metric log captured the module round trips.
        let m = slice.backend_metrics(PakaKind::EUdm).unwrap();
        assert_eq!(m.borrow().response_times.len(), 1);
    }

    #[test]
    fn sgx_slice_authenticates() {
        let (mut env, slice) = build(AkaDeployment::Sgx(SgxConfig::default()));
        assert!(slice.module(PakaKind::EUdm).unwrap().borrow().is_shielded());
        authenticate_and_check(&mut env, &slice);
    }

    #[test]
    fn all_deployments_produce_identical_crypto() {
        // The flow is byte-identical across deployments (paper §IV-B goal):
        // same subscriber + same RAND → same XRES*. RANDs differ per world,
        // so compare via the USIM check in each deployment instead.
        for d in [
            AkaDeployment::Monolithic,
            AkaDeployment::Container,
            AkaDeployment::Sgx(SgxConfig::default()),
        ] {
            let (mut env, slice) = build(d);
            authenticate_and_check(&mut env, &slice);
        }
    }

    #[test]
    fn nrf_knows_all_functions() {
        let (_env, slice) = build(AkaDeployment::Monolithic);
        let nrf = slice.nrf.borrow();
        for t in [
            NfType::UDR,
            NfType::UDM,
            NfType::AUSF,
            NfType::AMF,
            NfType::SMF,
            NfType::UPF,
        ] {
            assert!(nrf.discover(t).is_some(), "{t} not registered");
        }
    }

    #[test]
    fn subscribers_have_distinct_keys() {
        let a = Subscriber::test(0);
        let b = Subscriber::test(1);
        assert_ne!(a.k, b.k);
        assert_ne!(a.supi, b.supi);
        assert_eq!(a.supi.to_string(), "imsi-001010000000001");
    }

    #[test]
    fn sgx_slice_deploys_three_enclaves() {
        let (_env, slice) = build(AkaDeployment::Sgx(SgxConfig::default()));
        for kind in PakaKind::all() {
            let m = slice.module(kind).unwrap();
            assert!(m.borrow().is_shielded());
            assert!(m.borrow().boot_report().is_some());
        }
    }

    #[test]
    fn host_sees_vnf_and_module_containers() {
        let (_env, slice) = build(AkaDeployment::Sgx(SgxConfig::default()));
        let names = slice.host.container_names();
        assert!(names.iter().any(|n| n == "udm.oai"));
        assert!(names.iter().any(|n| n == "eudm-paka.oai"));
        assert_eq!(names.len(), 6);
    }
}
