//! The paper's primary contribution: HMEE-shielded 5G control-plane
//! functions.
//!
//! *"Towards Shielding 5G Control Plane Functions"* (DSN 2024) extracts
//! the sensitive 5G-AKA computations out of the monolithic UDM, AUSF and
//! AMF into three microservices — the **P-AKA modules** — and deploys
//! them inside SGX enclaves via Gramine/GSC. This crate implements that
//! system over the workspace substrates:
//!
//! * [`paka`] — the eUDM/eAUSF/eAMF modules as HTTPS microservices with a
//!   syscall-accurate request choreography; deployable in a plain
//!   container or inside an SGX enclave (**P-AKA** proper), with the
//!   exact Table I enclave I/O.
//! * [`remote`] — implementations of the `shield5g-nf` backend traits
//!   that offload to a P-AKA module over TLS through the OAI bridge
//!   (paper Fig. 4/5), measuring response times as the VNF sees them.
//! * [`slice`] — the network-slice builder: provisions subscribers,
//!   deploys the core VNFs and P-AKA modules on a host in a chosen
//!   [`slice::AkaDeployment`], and wires everything together.
//! * [`stats`] — sample summaries (median/quartiles) matching the paper's
//!   box plots.
//! * [`harness`] — the §V experiments: enclave load time, thread/EPC
//!   sweeps, functional/total latency, response times, SGX metrics.
//! * [`ki`] — the §VI 3GPP Key Issue analysis (Table V), substantiated by
//!   attacker scenarios run against the simulated infrastructure.
//! * [`testbed`] — the Table IV testbed configuration descriptor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod ki;
pub mod migration;
pub mod paka;
pub mod remote;
pub mod slice;
pub mod stats;
pub mod testbed;

use std::error::Error;
use std::fmt;

/// Errors from the shielding layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Deployment failed at the infrastructure layer.
    Infra(shield5g_infra::InfraError),
    /// Deployment failed at the LibOS layer.
    Libos(shield5g_libos::LibosError),
    /// An enclave operation failed (sealing, attestation, vault).
    Hmee(shield5g_hmee::HmeeError),
    /// A network-function error surfaced during slice operation.
    Nf(shield5g_nf::NfError),
    /// A module served an error response.
    Module {
        /// Module name.
        module: String,
        /// HTTP status returned.
        status: u16,
        /// Body text.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Infra(e) => write!(f, "infrastructure failure: {e}"),
            CoreError::Libos(e) => write!(f, "libos failure: {e}"),
            CoreError::Hmee(e) => write!(f, "enclave failure: {e}"),
            CoreError::Nf(e) => write!(f, "network function failure: {e}"),
            CoreError::Module {
                module,
                status,
                detail,
            } => {
                write!(f, "module {module} returned {status}: {detail}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Infra(e) => Some(e),
            CoreError::Libos(e) => Some(e),
            CoreError::Hmee(e) => Some(e),
            CoreError::Nf(e) => Some(e),
            CoreError::Module { .. } => None,
        }
    }
}

impl From<shield5g_infra::InfraError> for CoreError {
    fn from(e: shield5g_infra::InfraError) -> Self {
        CoreError::Infra(e)
    }
}

impl From<shield5g_libos::LibosError> for CoreError {
    fn from(e: shield5g_libos::LibosError) -> Self {
        CoreError::Libos(e)
    }
}

impl From<shield5g_hmee::HmeeError> for CoreError {
    fn from(e: shield5g_hmee::HmeeError) -> Self {
        CoreError::Hmee(e)
    }
}

impl From<shield5g_nf::NfError> for CoreError {
    fn from(e: shield5g_nf::NfError) -> Self {
        CoreError::Nf(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_sources() {
        let e: CoreError = shield5g_nf::NfError::Protocol("x".into()).into();
        assert!(e.to_string().contains("network function"));
        assert!(Error::source(&e).is_some());
        let m = CoreError::Module {
            module: "eudm".into(),
            status: 500,
            detail: "boom".into(),
        };
        assert!(m.to_string().contains("eudm"));
        assert!(Error::source(&m).is_none());
    }
}
