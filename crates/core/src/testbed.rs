//! The Table IV testbed configuration descriptor.
//!
//! Static facts about the hardware and software the paper's testbed used
//! and their simulation counterparts — printed by the `table4_testbed`
//! bench target and consumed by the RAN's OTA configuration checks.

use serde::{Deserialize, Serialize};

/// Table IV: hardware and software used for the testbed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Server CPU description.
    pub server_cpus: &'static str,
    /// Server memory / EPC.
    pub server_memory: &'static str,
    /// Operating system.
    pub server_os: &'static str,
    /// Kernel version.
    pub server_kernel: &'static str,
    /// Mobile country code.
    pub mcc: &'static str,
    /// Mobile network code.
    pub mnc: &'static str,
    /// Physical resource blocks.
    pub prbs: u32,
    /// Carrier frequency in GHz.
    pub frequency_ghz: f64,
    /// gNB radio unit.
    pub gnb_radio: &'static str,
    /// RAN software.
    pub ran_software: &'static str,
    /// COTS UE model.
    pub ue_model: &'static str,
    /// UE OS build required for attach (§V-B6).
    pub ue_os_build: &'static str,
    /// 5G core software version.
    pub core_version: &'static str,
    /// GSC version used for the P-AKA builds.
    pub gsc_version: &'static str,
}

impl TestbedConfig {
    /// The paper's testbed (Table IV + §IV-C/§V-A1).
    #[must_use]
    pub fn paper() -> Self {
        TestbedConfig {
            server_cpus: "2 x Intel Xeon Silver 4314 (SGXv2, 32 cores, 2.40 GHz)",
            server_memory: "512 GB DDR4, 16 GB combined EPC",
            server_os: "Ubuntu 20.04",
            server_kernel: "5.15.0-67-generic (in-kernel SGX driver)",
            mcc: "001",
            mnc: "01",
            prbs: 106,
            frequency_ghz: 3.6192,
            gnb_radio: "USRP x310",
            ran_software: "OAI develop branch",
            ue_model: "OnePlus 8 (Android 11)",
            ue_os_build: "Oxygen 11.0.11.11.IN21DA",
            core_version: "OAI 5G core v1.5.0",
            gsc_version: "GSC v1.4-1-ga60a499 (preheat, 4 threads, 512MB EPC)",
        }
    }

    /// The test PLMN string ("00101").
    #[must_use]
    pub fn plmn_string(&self) -> String {
        format!("{}{}", self.mcc, self.mnc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_facts() {
        let t = TestbedConfig::paper();
        assert_eq!(t.plmn_string(), "00101");
        assert_eq!(t.prbs, 106);
        assert!(t.server_cpus.contains("4314"));
        assert!(t.ue_model.contains("OnePlus 8"));
        assert!((t.frequency_ghz - 3.6192).abs() < 1e-9);
    }
}
