//! Offload backends: the VNF side of the P-AKA split.
//!
//! Paper §IV-A: "the VNFs offload the sensitive functionality to their
//! respective external AKA modules", communicating "over TLS using REST
//! APIs via the OAI Docker bridge". [`PakaClient`] is that path: it
//! charges the VNF-side connection work, carries genuinely TLS-encrypted
//! records across the (tappable) bridge, and measures the response time
//! `R` exactly as §V-A2 experiment 4 defines it — "from when a request is
//! sent to the P-AKA module (i.e., from the OAI VNF) until the reception
//! of a response".

use crate::paka::{PakaKind, PakaModule, ServeMetrics};
use crate::CoreError;
use shield5g_crypto::keys::HeAv;
use shield5g_crypto::secret::SecretBytes;
use shield5g_crypto::sqn::Auts;
use shield5g_infra::bridge::BridgeNetwork;
use shield5g_nf::backend::BackendOp;
use shield5g_nf::backend::{
    decode_he_av, AmfAkaBackend, AmfAkaRequest, AusfAkaBackend, AusfAkaRequest, AusfAkaResponse,
    UdmAkaBackend, UdmAkaRequest,
};
use shield5g_nf::NfError;
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::service::Service;
use shield5g_sim::time::{SimDuration, SimTime};
use shield5g_sim::tls::{establish, TlsIdentity, TlsSession};
use shield5g_sim::Env;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

/// VNF-side client work per offload call (TLS client handshake crypto,
/// connection setup syscalls, serialisation on the OAI C++ path).
/// Calibrated per parent VNF against the paper's container-mode stable
/// response times (R^C): the UDM's client path is the heaviest.
fn vnf_client_overhead_nanos(kind: PakaKind) -> u64 {
    match kind {
        PakaKind::EUdm => 310_000,
        PakaKind::EAusf => 200_000,
        PakaKind::EAmf => 110_000,
    }
}

/// TCP + TLS handshake frames exchanged on the bridge before the request
/// (SYN/SYN-ACK/ACK + hellos/finished).
const HANDSHAKE_FRAMES: [usize; 7] = [74, 74, 66, 517, 1290, 324, 280];

/// Latency samples collected at the VNF for one module.
#[derive(Clone, Debug, Default)]
pub struct ModuleMetricsLog {
    /// Response times (R) as seen by the VNF.
    pub response_times: Vec<SimDuration>,
    /// Module-reported functional latencies (L_F).
    pub functional: Vec<SimDuration>,
    /// Module-reported total latencies (L_T).
    pub total: Vec<SimDuration>,
    /// EPC pages paged during requests.
    pub paged: u64,
}

impl ModuleMetricsLog {
    /// Clears all samples (between experiment phases).
    pub fn reset(&mut self) {
        self.response_times.clear();
        self.functional.clear();
        self.total.clear();
        self.paged = 0;
    }
}

/// Continuation token for a split [`PakaClient::begin_call`] /
/// [`PakaClient::finish_call`] pair.
#[derive(Clone, Copy, Debug)]
pub struct CallToken {
    /// When the VNF issued the request (anchors the R measurement).
    t0: SimTime,
}

/// The module side of the offload path as a discrete-event endpoint: a
/// leaf service the engine schedules like any other, so module worker
/// occupancy (the `sgx.max_threads` ceiling) is enforced by event
/// ordering rather than assumed. Serves requests straight into the
/// wrapped [`PakaModule`] and publishes L_F/L_T/paging samples to the
/// shared metric log.
pub struct PakaEndpoint {
    module: Rc<RefCell<PakaModule>>,
    metrics: Rc<RefCell<ModuleMetricsLog>>,
}

impl std::fmt::Debug for PakaEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PakaEndpoint")
            .field("module", &self.module.borrow().kind().name())
            .finish()
    }
}

impl Service for PakaEndpoint {
    fn handle(&mut self, env: &mut Env, req: HttpRequest) -> HttpResponse {
        let (resp, serve_metrics) = self.module.borrow_mut().serve(env, req);
        let mut m = self.metrics.borrow_mut();
        m.functional.push(serve_metrics.functional);
        m.total.push(serve_metrics.total);
        m.paged += serve_metrics.paged;
        resp
    }
}

/// The VNF-side client for one P-AKA module.
pub struct PakaClient {
    module: Rc<RefCell<PakaModule>>,
    bridge: Rc<RefCell<BridgeNetwork>>,
    vnf_name: String,
    sessions: Option<(TlsSession, TlsSession)>,
    metrics: Rc<RefCell<ModuleMetricsLog>>,
}

impl std::fmt::Debug for PakaClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PakaClient")
            .field("vnf", &self.vnf_name)
            .finish()
    }
}

impl PakaClient {
    /// Creates the client used by `vnf_name` to reach `module` over
    /// `bridge`.
    #[must_use]
    pub fn new(
        module: Rc<RefCell<PakaModule>>,
        bridge: Rc<RefCell<BridgeNetwork>>,
        vnf_name: impl Into<String>,
    ) -> Self {
        PakaClient {
            module,
            bridge,
            vnf_name: vnf_name.into(),
            sessions: None,
            metrics: Rc::new(RefCell::new(ModuleMetricsLog::default())),
        }
    }

    /// The shared metrics log (read by the characterization harness).
    #[must_use]
    pub fn metrics(&self) -> Rc<RefCell<ModuleMetricsLog>> {
        self.metrics.clone()
    }

    /// The module handle.
    #[must_use]
    pub fn module(&self) -> Rc<RefCell<PakaModule>> {
        self.module.clone()
    }

    /// Builds the engine-side endpoint for this client's module, sharing
    /// the metric log so L_F/L_T land next to the R samples.
    #[must_use]
    pub fn endpoint(&self) -> PakaEndpoint {
        PakaEndpoint {
            module: self.module.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Lazily establishes the *cryptographic* session once. The per-call
    /// handshake cost is charged virtually on every request (the modules
    /// negotiate a fresh connection per request, as their 91-syscall
    /// choreography reflects); reusing the cipher state just avoids
    /// re-running real X25519 500× per experiment.
    fn sessions(&mut self, env: &mut Env) -> &mut (TlsSession, TlsSession) {
        if self.sessions.is_none() {
            let client_id = TlsIdentity::new(self.vnf_name.clone(), env.rng.bytes());
            let server_id = self.module.borrow().tls_identity().clone();
            let (c, s, _info) = establish(&client_id, &server_id, env.rng.bytes(), env.rng.bytes())
                .expect("honest local handshake cannot fail");
            self.sessions = Some((c, s));
        }
        self.sessions.as_mut().expect("just initialised")
    }

    /// Attests the module before trusting its TLS identity (the paper's
    /// §VII remote-attestation pattern for "key provisioning and TLS
    /// session establishment"): verifies a quote whose report data binds
    /// the module's TLS public key, against the verifier `service` and a
    /// vendor policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Module`]/[`CoreError::Hmee`] when the module
    /// cannot quote, the quote fails verification, or the TLS binding does
    /// not match the identity the client would pin.
    pub fn attest_and_pin(
        &mut self,
        platform: &shield5g_hmee::platform::SgxPlatform,
        service: &shield5g_hmee::attest::AttestationService,
    ) -> Result<(), CoreError> {
        let module = self.module.borrow();
        let quote = module.quote_tls_binding(platform)?;
        let mut policy = shield5g_hmee::attest::QuotePolicy::signer(
            crate::paka::PakaModule::expected_mrsigner(),
        );
        policy.allow_debug = true; // stats builds are debug-mode
        service.verify(&quote, &policy).map_err(CoreError::Hmee)?;
        let expected = shield5g_crypto::sha256::Sha256::digest(module.tls_identity().public());
        if quote.report_data[..32] != expected {
            return Err(CoreError::Module {
                module: module.kind().name().to_owned(),
                status: 495,
                detail: "attestation quote does not bind the presented TLS key".into(),
            });
        }
        Ok(())
    }

    /// First half of an offloaded call: charges the VNF-side client work,
    /// carries the handshake and the sealed request record across the
    /// bridge, and returns the engine destination, the request to yield as
    /// a `CallOut`, and the [`CallToken`] the matching [`Self::finish_call`]
    /// needs.
    pub fn begin_call(
        &mut self,
        env: &mut Env,
        path: &str,
        body: Vec<u8>,
    ) -> (String, HttpRequest, CallToken) {
        let kind = self.module.borrow().kind();
        let t0 = env.clock.now();

        // VNF-side client work (TLS handshake crypto, socket setup).
        env.clock
            .advance(SimDuration::from_nanos(vnf_client_overhead_nanos(kind)));

        // TCP + TLS handshake frames on the bridge.
        let endpoint = kind.endpoint();
        for bytes in HANDSHAKE_FRAMES {
            let dummy = vec![0u8; bytes];
            self.bridge
                .borrow_mut()
                .carry(env, &self.vnf_name, endpoint, &dummy);
        }

        // The request record: genuinely encrypted on the wire.
        let request = HttpRequest::post(path, body);
        let request_bytes = request.to_bytes();
        let record = {
            let (client_sess, _) = self.sessions(env);
            client_sess.seal(&request_bytes)
        };
        self.bridge
            .borrow_mut()
            .carry(env, &self.vnf_name, endpoint, &record);

        (endpoint.to_owned(), request, CallToken { t0 })
    }

    /// Second half of an offloaded call: carries the sealed response record
    /// back across the bridge, charges the client-side read path, logs the
    /// response time R, and maps module failures.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Module`] for non-2xx module responses.
    pub fn finish_call(
        &mut self,
        env: &mut Env,
        resp: HttpResponse,
        token: CallToken,
    ) -> Result<Vec<u8>, CoreError> {
        let kind = self.module.borrow().kind();
        let endpoint = kind.endpoint();

        // Response record back across the bridge.
        let resp_bytes = resp.to_bytes();
        let resp_record = {
            let (_, server_sess) = self.sessions(env);
            server_sess.seal(&resp_bytes)
        };
        self.bridge
            .borrow_mut()
            .carry(env, endpoint, &self.vnf_name, &resp_record);

        // Client-side record decrypt + read path.
        env.clock.advance(SimDuration::from_micros(9));

        self.metrics
            .borrow_mut()
            .response_times
            .push(env.clock.now() - token.t0);
        if resp.is_success() {
            Ok(resp.body)
        } else {
            Err(CoreError::Module {
                module: kind.name().to_owned(),
                status: resp.status,
                detail: String::from_utf8_lossy(&resp.body).into_owned(),
            })
        }
    }

    /// One offloaded call: returns the response body and logs R/L_F/L_T.
    /// The synchronous form used by the direct-characterization harness
    /// (§V-A2 experiments 1–3 measure the module in isolation, with no
    /// engine contention in the path).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Module`] for non-2xx module responses.
    pub fn call(&mut self, env: &mut Env, path: &str, body: Vec<u8>) -> Result<Vec<u8>, CoreError> {
        let (_dest, request, token) = self.begin_call(env, path, body);

        // Module serves inline (its own choreography charges the clock).
        let (resp, serve_metrics) = self.module.borrow_mut().serve(env, request);
        {
            let mut m = self.metrics.borrow_mut();
            m.functional.push(serve_metrics.functional);
            m.total.push(serve_metrics.total);
            m.paged += serve_metrics.paged;
        }

        self.finish_call(env, resp, token)
    }

    /// Last serve metrics convenience (None before any call).
    #[must_use]
    pub fn last_serve_metrics(&self) -> Option<ServeMetrics> {
        let m = self.metrics.borrow();
        match (m.functional.last(), m.total.last()) {
            (Some(&functional), Some(&total)) => Some(ServeMetrics {
                functional,
                total,
                paged: 0,
            }),
            _ => None,
        }
    }
}

fn downcast_token(token: Box<dyn Any>) -> Result<CallToken, NfError> {
    token
        .downcast::<CallToken>()
        .map(|t| *t)
        .map_err(|_| NfError::Backend("foreign backend continuation token".into()))
}

fn to_nf_error(e: CoreError) -> NfError {
    match e {
        CoreError::Module {
            module,
            status,
            detail,
        } => {
            if status == 404 {
                NfError::SubscriberUnknown(detail)
            } else if status == 403 {
                NfError::Crypto(shield5g_crypto::CryptoError::MacMismatch)
            } else {
                NfError::Backend(format!("{module}: {status} {detail}"))
            }
        }
        other => NfError::Backend(other.to_string()),
    }
}

/// UDM backend that offloads to the eUDM P-AKA module.
pub struct RemoteUdmAka {
    client: PakaClient,
}

impl RemoteUdmAka {
    /// Wraps a client pointed at an eUDM module.
    #[must_use]
    pub fn new(client: PakaClient) -> Self {
        RemoteUdmAka { client }
    }

    /// The underlying client's metric log.
    #[must_use]
    pub fn metrics(&self) -> Rc<RefCell<ModuleMetricsLog>> {
        self.client.metrics()
    }
}

impl UdmAkaBackend for RemoteUdmAka {
    fn generate_av(&mut self, env: &mut Env, req: &UdmAkaRequest) -> Result<HeAv, NfError> {
        let body = self
            .client
            .call(env, "/eudm/generate-av", req.encode())
            .map_err(to_nf_error)?;
        decode_he_av(&body)
    }

    fn resynchronise(
        &mut self,
        env: &mut Env,
        supi: &str,
        opc: &[u8; 16],
        rand: &[u8; 16],
        auts: &Auts,
    ) -> Result<[u8; 6], NfError> {
        let mut w = shield5g_sim::codec::Writer::new();
        w.put_str(supi)
            .put_array(opc)
            .put_array(rand)
            .put_array(&auts.sqn_ms_xor_ak)
            .put_array(&auts.mac_s);
        let body = self
            .client
            .call(env, "/eudm/resync", w.into_bytes())
            .map_err(to_nf_error)?;
        body.try_into()
            .map_err(|_| NfError::Backend("bad resync response length".into()))
    }

    fn begin_generate_av(&mut self, env: &mut Env, req: &UdmAkaRequest) -> BackendOp<HeAv> {
        let (dest, request, token) = self
            .client
            .begin_call(env, "/eudm/generate-av", req.encode());
        BackendOp::Call {
            dest,
            req: request,
            token: Box::new(token),
        }
    }

    fn finish_generate_av(
        &mut self,
        env: &mut Env,
        token: Box<dyn Any>,
        resp: HttpResponse,
    ) -> Result<HeAv, NfError> {
        let token = downcast_token(token)?;
        let body = self
            .client
            .finish_call(env, resp, token)
            .map_err(to_nf_error)?;
        decode_he_av(&body)
    }

    fn begin_resynchronise(
        &mut self,
        env: &mut Env,
        supi: &str,
        opc: &[u8; 16],
        rand: &[u8; 16],
        auts: &Auts,
    ) -> BackendOp<[u8; 6]> {
        let mut w = shield5g_sim::codec::Writer::new();
        w.put_str(supi)
            .put_array(opc)
            .put_array(rand)
            .put_array(&auts.sqn_ms_xor_ak)
            .put_array(&auts.mac_s);
        let (dest, request, token) = self.client.begin_call(env, "/eudm/resync", w.into_bytes());
        BackendOp::Call {
            dest,
            req: request,
            token: Box::new(token),
        }
    }

    fn finish_resynchronise(
        &mut self,
        env: &mut Env,
        token: Box<dyn Any>,
        resp: HttpResponse,
    ) -> Result<[u8; 6], NfError> {
        let token = downcast_token(token)?;
        let body = self
            .client
            .finish_call(env, resp, token)
            .map_err(to_nf_error)?;
        body.try_into()
            .map_err(|_| NfError::Backend("bad resync response length".into()))
    }
}

/// AUSF backend that offloads to the eAUSF P-AKA module.
pub struct RemoteAusfAka {
    client: PakaClient,
}

impl RemoteAusfAka {
    /// Wraps a client pointed at an eAUSF module.
    #[must_use]
    pub fn new(client: PakaClient) -> Self {
        RemoteAusfAka { client }
    }

    /// The underlying client's metric log.
    #[must_use]
    pub fn metrics(&self) -> Rc<RefCell<ModuleMetricsLog>> {
        self.client.metrics()
    }
}

impl AusfAkaBackend for RemoteAusfAka {
    fn derive_se(
        &mut self,
        env: &mut Env,
        req: &AusfAkaRequest,
    ) -> Result<AusfAkaResponse, NfError> {
        let body = self
            .client
            .call(env, "/eausf/derive-se", req.encode())
            .map_err(to_nf_error)?;
        AusfAkaResponse::decode(&body)
    }

    fn begin_derive_se(
        &mut self,
        env: &mut Env,
        req: &AusfAkaRequest,
    ) -> BackendOp<AusfAkaResponse> {
        let (dest, request, token) = self
            .client
            .begin_call(env, "/eausf/derive-se", req.encode());
        BackendOp::Call {
            dest,
            req: request,
            token: Box::new(token),
        }
    }

    fn finish_derive_se(
        &mut self,
        env: &mut Env,
        token: Box<dyn Any>,
        resp: HttpResponse,
    ) -> Result<AusfAkaResponse, NfError> {
        let token = downcast_token(token)?;
        let body = self
            .client
            .finish_call(env, resp, token)
            .map_err(to_nf_error)?;
        AusfAkaResponse::decode(&body)
    }
}

/// AMF backend that offloads to the eAMF P-AKA module.
pub struct RemoteAmfAka {
    client: PakaClient,
}

impl RemoteAmfAka {
    /// Wraps a client pointed at an eAMF module.
    #[must_use]
    pub fn new(client: PakaClient) -> Self {
        RemoteAmfAka { client }
    }

    /// The underlying client's metric log.
    #[must_use]
    pub fn metrics(&self) -> Rc<RefCell<ModuleMetricsLog>> {
        self.client.metrics()
    }
}

impl AmfAkaBackend for RemoteAmfAka {
    fn derive_kamf(
        &mut self,
        env: &mut Env,
        req: &AmfAkaRequest,
    ) -> Result<SecretBytes<32>, NfError> {
        let body = self
            .client
            .call(env, "/eamf/derive-kamf", req.encode())
            .map_err(to_nf_error)?;
        let kamf: [u8; 32] = body
            .try_into()
            .map_err(|_| NfError::Backend("bad kamf response length".into()))?;
        Ok(SecretBytes::new(kamf))
    }

    fn begin_derive_kamf(
        &mut self,
        env: &mut Env,
        req: &AmfAkaRequest,
    ) -> BackendOp<SecretBytes<32>> {
        let (dest, request, token) = self
            .client
            .begin_call(env, "/eamf/derive-kamf", req.encode());
        BackendOp::Call {
            dest,
            req: request,
            token: Box::new(token),
        }
    }

    fn finish_derive_kamf(
        &mut self,
        env: &mut Env,
        token: Box<dyn Any>,
        resp: HttpResponse,
    ) -> Result<SecretBytes<32>, NfError> {
        let token = downcast_token(token)?;
        let body = self
            .client
            .finish_call(env, resp, token)
            .map_err(to_nf_error)?;
        let kamf: [u8; 32] = body
            .try_into()
            .map_err(|_| NfError::Backend("bad kamf response length".into()))?;
        Ok(SecretBytes::new(kamf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paka::{populate_registry, SgxConfig};
    use shield5g_crypto::keys::ServingNetworkName;
    use shield5g_hmee::platform::SgxPlatform;
    use shield5g_infra::host::Host;
    use shield5g_infra::image::Registry;

    const K: [u8; 16] = [0x46; 16];
    const OPC: [u8; 16] = [0xcd; 16];
    const SUPI: &str = "imsi-001010000000001";

    fn setup(shielded: bool, kind: PakaKind) -> (Env, PakaClient) {
        let mut env = Env::new(23);
        env.log.disable();
        let mut reg = Registry::new();
        populate_registry(&mut reg);
        let platform = SgxPlatform::new(&mut env);
        let mut host = Host::with_sgx("r450", platform);
        let mut module = if shielded {
            PakaModule::deploy_sgx(&mut env, &mut host, &reg, kind, SgxConfig::default()).unwrap()
        } else {
            PakaModule::deploy_container(&mut env, &mut host, &reg, kind).unwrap()
        };
        if kind == PakaKind::EUdm {
            module.provision_subscriber_key(&mut env, SUPI, K);
        }
        let bridge = Rc::new(RefCell::new(BridgeNetwork::new("br-oai")));
        let client = PakaClient::new(Rc::new(RefCell::new(module)), bridge, "udm.oai");
        (env, client)
    }

    fn av_request() -> UdmAkaRequest {
        UdmAkaRequest {
            supi: SUPI.into(),
            opc: OPC.into(),
            rand: [0x23; 16],
            sqn: [0, 0, 0, 0, 0, 7],
            amf_field: [0x80, 0],
            snn: ServingNetworkName::new("001", "01"),
        }
    }

    #[test]
    fn remote_udm_backend_generates_av() {
        let (mut env, client) = setup(true, PakaKind::EUdm);
        let mut backend = RemoteUdmAka::new(client);
        let av = backend.generate_av(&mut env, &av_request()).unwrap();
        let mil = shield5g_crypto::milenage::Milenage::with_opc(&K, &OPC);
        let snn = ServingNetworkName::new("001", "01");
        let ue =
            shield5g_crypto::keys::ue_process_challenge(&mil, &av.rand, &av.autn, &snn).unwrap();
        assert_eq!(ue.res_star, av.xres_star);
    }

    #[test]
    fn response_time_logged_and_sgx_slower() {
        let (mut env_c, client_c) = setup(false, PakaKind::EUdm);
        let (mut env_s, client_s) = setup(true, PakaKind::EUdm);
        let mut bc = RemoteUdmAka::new(client_c);
        let mut bs = RemoteUdmAka::new(client_s);
        // Warm both, then sample.
        bc.generate_av(&mut env_c, &av_request()).unwrap();
        bs.generate_av(&mut env_s, &av_request()).unwrap();
        for _ in 0..20 {
            bc.generate_av(&mut env_c, &av_request()).unwrap();
            bs.generate_av(&mut env_s, &av_request()).unwrap();
        }
        let mc = bc.metrics();
        let ms = bs.metrics();
        let rc = crate::stats::Summary::of(&mc.borrow().response_times[1..]);
        let rs = crate::stats::Summary::of(&ms.borrow().response_times[1..]);
        let ratio = rs.median_ratio_to(&rc);
        assert!(ratio > 1.8 && ratio < 3.5, "R_S/R_C = {ratio:.2}");
    }

    #[test]
    fn bridge_sees_only_ciphertext() {
        let (mut env, mut client) = setup(false, PakaKind::EUdm);
        client.bridge.borrow_mut().enable_tap();
        let req = av_request();
        client
            .call(&mut env, "/eudm/generate-av", req.encode())
            .unwrap();
        let bridge = client.bridge.borrow();
        assert!(!bridge.captured().is_empty());
        // Neither OPc nor the path appear in the clear on the wire.
        assert!(!bridge.captured_contains(&OPC));
        assert!(!bridge.captured_contains(b"/eudm/generate-av"));
    }

    #[test]
    fn module_error_propagates_as_subscriber_unknown() {
        let (mut env, client) = setup(true, PakaKind::EUdm);
        let mut backend = RemoteUdmAka::new(client);
        let mut req = av_request();
        req.supi = "imsi-001010000000042".into();
        assert!(matches!(
            backend.generate_av(&mut env, &req),
            Err(NfError::SubscriberUnknown(_))
        ));
    }

    #[test]
    fn remote_ausf_and_amf_backends() {
        let (mut env, client) = setup(true, PakaKind::EAusf);
        let mut ausf = RemoteAusfAka::new(client);
        let resp = ausf
            .derive_se(
                &mut env,
                &AusfAkaRequest {
                    rand: [1; 16],
                    xres_star: [2; 16],
                    kausf: [3; 32].into(),
                    snn: ServingNetworkName::new("001", "01"),
                },
            )
            .unwrap();
        assert_eq!(
            resp.hxres_star,
            shield5g_crypto::keys::derive_hxres_star(&[1; 16], &[2; 16])
        );

        let (mut env2, client2) = setup(false, PakaKind::EAmf);
        let mut amf = RemoteAmfAka::new(client2);
        let kamf = amf
            .derive_kamf(
                &mut env2,
                &AmfAkaRequest {
                    kseaf: [4; 32].into(),
                    supi: SUPI.into(),
                    abba: [0, 0],
                },
            )
            .unwrap();
        assert_eq!(
            kamf,
            shield5g_crypto::keys::derive_kamf(&[4; 32], SUPI, &[0, 0])
        );
    }

    #[test]
    fn remote_resync_round_trip() {
        let (mut env, client) = setup(true, PakaKind::EUdm);
        let mut backend = RemoteUdmAka::new(client);
        let mil = shield5g_crypto::milenage::Milenage::with_opc(&K, &OPC);
        let rand = [0x23; 16];
        let sqn_ms = [0, 0, 0, 0, 3, 3];
        let auts = Auts::generate(&mil, &rand, &sqn_ms);
        let out = backend
            .resynchronise(&mut env, SUPI, &OPC, &rand, &auts)
            .unwrap();
        assert_eq!(out, sqn_ms);
    }
}
