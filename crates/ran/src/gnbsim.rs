//! gNBSIM: the mass-registration RAN entity of paper §V-A1 ("We utilized
//! gNBSIM to establish mass gNB-UE connections with core on a large
//! scale"). Registrations run back to back, matching the paper's
//! methodology ("We register UEs back to back and measure the number of
//! SGX-related operations", §V-A2).

use crate::gnb::Gnb;
use crate::ue::{CotsUe, RegistrationReport};
use crate::usim::Usim;
use crate::RanError;
use shield5g_core::slice::Slice;
use shield5g_crypto::ident::Plmn;
use shield5g_sim::Env;

/// The mass-registration driver.
pub struct GnbSim {
    gnb: Gnb,
}

impl std::fmt::Debug for GnbSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GnbSim").finish()
    }
}

/// Outcome of one simulated UE registration.
#[derive(Clone, Debug)]
pub struct SimRegistration {
    /// The subscriber index used.
    pub subscriber_index: usize,
    /// The registration report.
    pub report: RegistrationReport,
}

impl GnbSim {
    /// Attaches a gNBSIM instance to a deployed slice.
    #[must_use]
    pub fn new(slice: &Slice) -> Self {
        GnbSim {
            gnb: Gnb::simulated(slice.engine.clone(), Plmn::test_network()),
        }
    }

    /// Builds a simulated UE for subscriber `index` of the slice.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range of the slice's subscribers.
    #[must_use]
    pub fn ue_for(&self, slice: &Slice, index: usize) -> CotsUe {
        let sub = &slice.subscribers[index];
        let usim = Usim::program(
            sub.supi.clone(),
            sub.k,
            sub.opc,
            slice.hn_key_id,
            slice.hn_public,
        );
        CotsUe::sim_ue(usim)
    }

    /// Registers subscribers `0..count` back to back.
    ///
    /// # Errors
    ///
    /// Returns the first registration failure.
    pub fn register_ues(
        &mut self,
        env: &mut Env,
        slice: &Slice,
        count: usize,
    ) -> Result<Vec<SimRegistration>, RanError> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let mut ue = self.ue_for(slice, i % slice.subscribers.len());
            let report = ue.register(env, &mut self.gnb)?;
            out.push(SimRegistration {
                subscriber_index: i % slice.subscribers.len(),
                report,
            });
        }
        Ok(out)
    }

    /// Registers one UE and also establishes its PDU session, returning
    /// the setup time for the full sequence (the §V-B4 "end-to-end UE
    /// session setup").
    ///
    /// # Errors
    ///
    /// Returns the first protocol failure.
    pub fn register_with_session(
        &mut self,
        env: &mut Env,
        slice: &Slice,
        index: usize,
    ) -> Result<(RegistrationReport, [u8; 4]), RanError> {
        let mut ue = self.ue_for(slice, index);
        let report = ue.register(env, &mut self.gnb)?;
        let ip = ue.establish_session(env, &mut self.gnb)?;
        Ok((report, ip))
    }

    /// Mutable access to the underlying gNB (tests).
    pub fn gnb_mut(&mut self) -> &mut Gnb {
        &mut self.gnb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_core::paka::{PakaKind, SgxConfig};
    use shield5g_core::slice::{build_slice, AkaDeployment, SliceConfig};

    fn world(deployment: AkaDeployment) -> (Env, Slice) {
        let mut env = Env::new(41);
        env.log.disable();
        let slice = build_slice(
            &mut env,
            &SliceConfig {
                deployment,
                subscriber_count: 5,
            },
        )
        .unwrap();
        (env, slice)
    }

    #[test]
    fn mass_registration_monolithic() {
        let (mut env, slice) = world(AkaDeployment::Monolithic);
        let mut sim = GnbSim::new(&slice);
        let regs = sim.register_ues(&mut env, &slice, 5).unwrap();
        assert_eq!(regs.len(), 5);
        assert_eq!(slice.amf.borrow().registrations_completed(), 5);
        // Distinct GUTIs per registration.
        let mut tmsis: Vec<u32> = regs.iter().map(|r| r.report.guti.tmsi).collect();
        tmsis.dedup();
        assert_eq!(tmsis.len(), 5);
    }

    #[test]
    fn mass_registration_through_sgx_modules() {
        let (mut env, slice) = world(AkaDeployment::Sgx(SgxConfig::default()));
        let mut sim = GnbSim::new(&slice);
        let regs = sim.register_ues(&mut env, &slice, 3).unwrap();
        assert_eq!(regs.len(), 3);
        // Every registration used the enclave modules exactly once each.
        for kind in PakaKind::all() {
            let m = slice.module(kind).unwrap();
            assert_eq!(m.borrow().requests_served(), 3, "{}", kind.name());
        }
    }

    #[test]
    fn per_registration_transition_delta_matches_table3() {
        let (mut env, slice) = world(AkaDeployment::Sgx(SgxConfig::default()));
        let mut sim = GnbSim::new(&slice);
        sim.register_ues(&mut env, &slice, 1).unwrap();
        let snapshots: Vec<_> = PakaKind::all()
            .iter()
            .map(|&k| slice.module(k).unwrap().borrow().sgx_stats().unwrap())
            .collect();
        sim.register_ues(&mut env, &slice, 1).unwrap();
        for (kind, before) in PakaKind::all().iter().zip(snapshots) {
            let after = slice.module(*kind).unwrap().borrow().sgx_stats().unwrap();
            let delta = after.delta_since(&before);
            assert!(
                (88..=96).contains(&delta.eenter),
                "{}: {} EENTERs per registration",
                kind.name(),
                delta.eenter
            );
        }
    }

    #[test]
    fn session_setup_with_data_path() {
        let (mut env, slice) = world(AkaDeployment::Container);
        let mut sim = GnbSim::new(&slice);
        let (report, ip) = sim.register_with_session(&mut env, &slice, 0).unwrap();
        assert_eq!(ip[0], 10);
        assert!(report.setup_time > shield5g_sim::time::SimDuration::ZERO);
    }

    #[test]
    fn resync_recovers_transparently() {
        // Register the same subscriber twice with a *fresh* USIM the
        // second time: its SQN window is behind the network's generator,
        // which is fine (higher SQN accepted); instead, simulate a stale
        // *network* by registering with a fresh slice but a USIM that
        // already consumed SQNs.
        let (mut env, slice) = world(AkaDeployment::Monolithic);
        let mut sim = GnbSim::new(&slice);
        // Drive the subscriber's USIM forward on a first registration.
        let mut ue = sim.ue_for(&slice, 0);
        ue.register(&mut env, sim.gnb_mut()).unwrap();
        // Now build a *new* slice world sharing the same subscriber keys
        // (network SQN generator reset to zero) but keep the old USIM —
        // its window is ahead, so the challenge triggers AUTS resync.
        let mut env2 = Env::new(43);
        env2.log.disable();
        let slice2 = build_slice(
            &mut env2,
            &SliceConfig {
                deployment: AkaDeployment::Monolithic,
                subscriber_count: 5,
            },
        )
        .unwrap();
        let mut sim2 = GnbSim::new(&slice2);
        let report = ue.register(&mut env2, sim2.gnb_mut());
        // Wait: `ue` was already registered; build a fresh UE that reuses
        // the *old* USIM state via a new registration attempt.
        match report {
            Ok(r) => assert!(
                r.resyncs >= 1,
                "expected at least one resync, got {}",
                r.resyncs
            ),
            Err(e) => panic!("resync registration failed: {e}"),
        }
    }
}
