//! The USIM: subscriber credentials, MILENAGE, SQN window, SUCI
//! concealment — programmed OpenCells-style with a PLMN (§V-B6: "An
//! OpenCells SIM card is programmed to the test Public Land Mobile
//! Network (PLMN) 00101").

use shield5g_crypto::ident::{Plmn, Suci, Supi};
use shield5g_crypto::keys::{self, ServingNetworkName, UeChallengeResult};
use shield5g_crypto::milenage::Milenage;
use shield5g_crypto::sqn::{Auts, SqnVerifier};
use shield5g_crypto::CryptoError;
use shield5g_sim::Env;

/// The outcome of a USIM challenge evaluation (TS 33.501 §6.1.3.2).
#[derive(Debug)]
pub enum ChallengeOutcome {
    /// Challenge accepted; RES* and keys derived.
    Success(Box<UeChallengeResult>),
    /// MAC-A failed: the network is not genuine.
    MacFailure,
    /// MAC verified but SQN out of window: re-synchronise.
    SyncFailure(Auts),
}

/// A programmed SIM card + USIM application.
pub struct Usim {
    supi: Supi,
    mil: Milenage,
    sqn: SqnVerifier,
    hn_key_id: u8,
    hn_public: [u8; 32],
}

impl std::fmt::Debug for Usim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Usim")
            .field("supi", &self.supi.to_string())
            .field("keys", &"<redacted>")
            .finish()
    }
}

impl Usim {
    /// Programs a SIM with subscriber credentials and the home-network
    /// public key.
    #[must_use]
    pub fn program(
        supi: Supi,
        k: [u8; 16],
        opc: [u8; 16],
        hn_key_id: u8,
        hn_public: [u8; 32],
    ) -> Self {
        Usim {
            supi,
            mil: Milenage::with_opc(&k, &opc),
            sqn: SqnVerifier::new(),
            hn_key_id,
            hn_public,
        }
    }

    /// The home PLMN the SIM is programmed for.
    #[must_use]
    pub fn plmn(&self) -> &Plmn {
        self.supi.plmn()
    }

    /// The permanent identity (never leaves the UE unconcealed).
    #[must_use]
    pub fn supi(&self) -> &Supi {
        &self.supi
    }

    /// Conceals the SUPI into a fresh SUCI (new ECIES ephemeral per call,
    /// so successive registrations are unlinkable).
    #[must_use]
    pub fn conceal_identity(&self, env: &mut Env) -> Suci {
        let eph: [u8; 32] = env.rng.bytes();
        self.supi
            .conceal_profile_a(self.hn_key_id, &self.hn_public, &eph)
    }

    /// Evaluates an authentication challenge: MAC check, SQN window,
    /// RES*/key derivation.
    #[must_use]
    pub fn evaluate_challenge(
        &mut self,
        rand: &[u8; 16],
        autn: &[u8; 16],
        snn: &ServingNetworkName,
    ) -> ChallengeOutcome {
        match keys::ue_process_challenge(&self.mil, rand, autn, snn) {
            Err(CryptoError::MacMismatch) => ChallengeOutcome::MacFailure,
            Err(_) => ChallengeOutcome::MacFailure,
            Ok(result) => match self.sqn.accept(&result.sqn) {
                Ok(()) => ChallengeOutcome::Success(Box::new(result)),
                Err(_) => ChallengeOutcome::SyncFailure(Auts::generate(
                    &self.mil,
                    rand,
                    &self.sqn.sqn_ms(),
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_crypto::ecies::HomeNetworkKeyPair;
    use shield5g_crypto::keys::generate_he_av;
    use shield5g_crypto::sqn::SqnGenerator;

    const K: [u8; 16] = [0x46; 16];
    const OPC: [u8; 16] = [0xcd; 16];

    fn usim() -> Usim {
        let hn = HomeNetworkKeyPair::from_private(1, [9; 32]);
        let supi = Supi::new(Plmn::test_network(), "0000000001").unwrap();
        Usim::program(supi, K, OPC, 1, *hn.public())
    }

    fn snn() -> ServingNetworkName {
        ServingNetworkName::new("001", "01")
    }

    #[test]
    fn accepts_genuine_challenge() {
        let mut usim = usim();
        let mil = Milenage::with_opc(&K, &OPC);
        let mut gen = SqnGenerator::new();
        let av = generate_he_av(&mil, &[7; 16], &gen.next_sqn(), &[0x80, 0], &snn());
        match usim.evaluate_challenge(&av.rand, &av.autn, &snn()) {
            ChallengeOutcome::Success(r) => assert_eq!(r.res_star, av.xres_star),
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn rejects_forged_challenge() {
        let mut usim = usim();
        let impostor = Milenage::with_opc(&[0x47; 16], &OPC);
        let av = generate_he_av(&impostor, &[7; 16], &[0; 6], &[0x80, 0], &snn());
        assert!(matches!(
            usim.evaluate_challenge(&av.rand, &av.autn, &snn()),
            ChallengeOutcome::MacFailure
        ));
    }

    #[test]
    fn replayed_challenge_triggers_resync() {
        let mut usim = usim();
        let mil = Milenage::with_opc(&K, &OPC);
        let mut gen = SqnGenerator::new();
        let av = generate_he_av(&mil, &[7; 16], &gen.next_sqn(), &[0x80, 0], &snn());
        assert!(matches!(
            usim.evaluate_challenge(&av.rand, &av.autn, &snn()),
            ChallengeOutcome::Success(_)
        ));
        // Replay: same SQN again.
        match usim.evaluate_challenge(&av.rand, &av.autn, &snn()) {
            ChallengeOutcome::SyncFailure(auts) => {
                // The AUTS must verify at the home network.
                assert!(auts.verify(&mil, &av.rand).is_ok());
            }
            other => panic!("expected sync failure, got {other:?}"),
        }
    }

    #[test]
    fn successive_sucis_are_unlinkable() {
        let usim = usim();
        let mut env = Env::new(5);
        let s1 = usim.conceal_identity(&mut env);
        let s2 = usim.conceal_identity(&mut env);
        assert_ne!(s1.scheme_output, s2.scheme_output);
    }

    #[test]
    fn plmn_reflects_programming() {
        assert_eq!(usim().plmn().to_string(), "00101");
    }
}
