//! Deterministic mass-registration workload generation.
//!
//! gNBSIM's back-to-back registrations (§V-A2) exercise module capacity
//! but not its queueing behaviour: every request waits for the previous
//! one. The pool experiments in `shield5g-scale` instead need an *open*
//! arrival process — UEs registering at a configured offered load,
//! independent of how fast the pool drains them. This module generates
//! such traces: Poisson arrivals (exponential inter-arrival times) over
//! a fixed subscriber population, reproducible from a [`DetRng`].

use shield5g_sim::rng::DetRng;
use shield5g_sim::time::{SimDuration, SimTime};

/// One UE authentication arrival.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// When the request reaches the pool frontend.
    pub at: SimTime,
    /// The subscriber issuing it.
    pub supi: String,
}

/// Parameters of a mass-registration trace.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Subscriber population size; arrivals draw uniformly from it, so a
    /// population smaller than `arrivals` yields repeat authentications
    /// per SUPI (re-registrations, periodic re-authentication).
    pub ues: u32,
    /// Total arrivals to generate.
    pub arrivals: u32,
    /// Offered load in authentications per second.
    pub rate_per_sec: f64,
}

/// The SUPI of test subscriber `i` (PLMN 001/01, matching
/// `shield5g_core::slice::Subscriber::test`).
#[must_use]
pub fn test_supi(i: u32) -> String {
    format!("imsi-00101{:010}", u64::from(i) + 1)
}

/// Generates a Poisson arrival trace starting at `start`.
///
/// Inter-arrival gaps are drawn by inverse-CDF from the exponential
/// distribution with rate `spec.rate_per_sec`; arrival times are
/// non-decreasing and the whole trace is a pure function of the RNG
/// state.
///
/// # Panics
///
/// Panics when `spec.ues == 0` or `spec.rate_per_sec` is not positive.
#[must_use]
pub fn poisson_registrations(
    rng: &mut DetRng,
    start: SimTime,
    spec: &WorkloadSpec,
) -> Vec<Arrival> {
    assert!(spec.ues > 0, "empty subscriber population");
    assert!(
        spec.rate_per_sec > 0.0,
        "offered load must be positive, got {}",
        spec.rate_per_sec
    );
    let mut at = start;
    (0..spec.arrivals)
        .map(|_| {
            // Uniform in (0, 1]: 53 mantissa bits, never exactly zero.
            let u = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
            let gap_ns = (-u.ln() / spec.rate_per_sec * 1e9).round() as u64;
            at += SimDuration::from_nanos(gap_ns);
            Arrival {
                at,
                supi: test_supi(rng.range(0, u64::from(spec.ues)) as u32),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            ues: 16,
            arrivals: 2_000,
            rate_per_sec: 800.0,
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        let t0 = SimTime::from_nanos(5);
        assert_eq!(
            poisson_registrations(&mut a, t0, &spec()),
            poisson_registrations(&mut b, t0, &spec())
        );
    }

    #[test]
    fn arrivals_are_ordered_and_start_after_t0() {
        let mut rng = DetRng::new(12);
        let t0 = SimTime::from_nanos(1_000);
        let trace = poisson_registrations(&mut rng, t0, &spec());
        assert_eq!(trace.len(), 2_000);
        assert!(trace[0].at > t0);
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn mean_rate_close_to_offered() {
        let mut rng = DetRng::new(13);
        let trace = poisson_registrations(&mut rng, SimTime::from_nanos(0), &spec());
        let span = (trace[trace.len() - 1].at - trace[0].at).as_secs_f64();
        let rate = (trace.len() - 1) as f64 / span;
        assert!(
            (rate / 800.0 - 1.0).abs() < 0.1,
            "measured rate {rate:.0}/s vs offered 800/s"
        );
    }

    #[test]
    fn supis_stay_in_population() {
        let mut rng = DetRng::new(14);
        let trace = poisson_registrations(&mut rng, SimTime::from_nanos(0), &spec());
        let population: Vec<String> = (0..16).map(test_supi).collect();
        assert!(trace.iter().all(|a| population.contains(&a.supi)));
        // A population smaller than the arrival count repeats SUPIs.
        let distinct: std::collections::HashSet<&str> =
            trace.iter().map(|a| a.supi.as_str()).collect();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn supi_format_matches_slice_subscribers() {
        assert_eq!(test_supi(0), "imsi-001010000000001");
        assert_eq!(test_supi(41), "imsi-001010000000042");
    }
}
