//! Radio access substrate: gNB, gNBSIM mass-registration driver, and a
//! full-stack COTS UE model.
//!
//! The paper uses two RAN entities: gNBSIM "to establish mass gNB-UE
//! connections with core on a large scale" (§V-A1) and, for the OTA
//! feasibility test, a USRP x310 as the OAI gNB with a OnePlus 8 as the
//! UE (§V-B6). This crate provides both:
//!
//! * [`usim`] — a USIM with real MILENAGE, SQN window management and
//!   ECIES SUCI concealment, programmed OpenCells-style with a PLMN.
//! * [`ue`] — a COTS UE: complete NAS registration state machine,
//!   security-mode handling, GUTI storage, PDU sessions and user-plane
//!   data — the spec-conformant path a real phone exercises.
//! * [`gnb`] — the gNB relay between the radio interface and the AMF
//!   (N2/NGAP), with RRC connection establishment costs.
//! * [`gnbsim`] — back-to-back mass registrations over a zero-cost radio
//!   (what the paper's performance experiments drive).
//! * [`workload`] — deterministic open-loop arrival traces (Poisson
//!   inter-arrivals over a subscriber population) for the pool-scaling
//!   experiments in `shield5g-scale`.
//! * [`ota`] — the §V-B6 over-the-air testbed: SDR gNB + OnePlus 8 over
//!   a realistic radio link, ending in an end-to-end data session, plus
//!   the session-setup/SGX-share measurement of §V-B4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gnb;
pub mod gnbsim;
pub mod ota;
pub mod ue;
pub mod usim;
pub mod workload;

use std::error::Error;
use std::fmt;

/// Errors from the RAN layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum RanError {
    /// The UE cannot detect the network (PLMN mismatch, §V-B6).
    NetworkNotFound {
        /// PLMN the SIM is programmed for.
        sim_plmn: String,
        /// PLMN the gNB broadcasts.
        broadcast_plmn: String,
    },
    /// The UE's OS build cannot complete an end-to-end connection
    /// (§V-B6: a specific Oxygen OS version was required).
    IncompatibleUeBuild(String),
    /// The network rejected the UE.
    Rejected {
        /// Which NAS message carried the rejection.
        stage: &'static str,
        /// Cause value or text.
        cause: String,
    },
    /// The UE rejected the network (mutual authentication failure).
    NetworkAuthenticationFailed(String),
    /// Transport failure on N2/Uu.
    Transport(shield5g_sim::SimError),
    /// Protocol violation (unexpected message).
    Protocol(String),
}

impl fmt::Display for RanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RanError::NetworkNotFound { sim_plmn, broadcast_plmn } => write!(
                f,
                "network not found: SIM programmed for PLMN {sim_plmn}, gNB broadcasts {broadcast_plmn}"
            ),
            RanError::IncompatibleUeBuild(b) => write!(f, "UE OS build {b:?} cannot attach"),
            RanError::Rejected { stage, cause } => write!(f, "rejected at {stage}: {cause}"),
            RanError::NetworkAuthenticationFailed(why) => {
                write!(f, "UE failed to authenticate the network: {why}")
            }
            RanError::Transport(e) => write!(f, "transport failure: {e}"),
            RanError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl Error for RanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RanError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<shield5g_sim::SimError> for RanError {
    fn from(e: shield5g_sim::SimError) -> Self {
        RanError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = RanError::NetworkNotFound {
            sim_plmn: "00101".into(),
            broadcast_plmn: "99999".into(),
        };
        assert!(e.to_string().contains("00101"));
        assert!(RanError::IncompatibleUeBuild("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RanError>();
    }
}
