//! The gNB: radio-side attach, RRC connection establishment, and the
//! N2/NGAP relay into the AMF.

use crate::RanError;
use shield5g_crypto::ident::Plmn;
use shield5g_nf::addr;
use shield5g_nf::messages::Ngap;
use shield5g_nf::upf::GtpPacket;
use shield5g_sim::engine::Engine;
use shield5g_sim::http::HttpRequest;
use shield5g_sim::latency::LinkProfile;
use shield5g_sim::Env;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// RRC messages exchanged during connection establishment (RACH preamble,
/// RAR, RRCSetupRequest, RRCSetup, RRCSetupComplete).
const RRC_SETUP_MESSAGES: [usize; 5] = [14, 36, 62, 210, 96];

/// Probability that a radio transfer needs one HARQ retransmission
/// (block-error-rate target of NR link adaptation is ~10%; half of those
/// recover on the first retransmission in this model).
const HARQ_RETX_PROB: f64 = 0.05;

/// A gNB instance.
pub struct Gnb {
    engine: Rc<RefCell<Engine>>,
    radio: LinkProfile,
    backhaul: LinkProfile,
    broadcast_plmn: Plmn,
    next_ran_ue_id: u64,
    tunnels: HashMap<u64, u32>,
}

impl std::fmt::Debug for Gnb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gnb")
            .field("plmn", &self.broadcast_plmn.to_string())
            .finish()
    }
}

impl Gnb {
    /// A USRP-backed OAI gNB broadcasting `plmn` (the OTA radio profile).
    #[must_use]
    pub fn usrp(engine: Rc<RefCell<Engine>>, plmn: Plmn) -> Self {
        Gnb {
            engine,
            radio: LinkProfile::radio_5g(),
            backhaul: LinkProfile::backhaul(),
            broadcast_plmn: plmn,
            next_ran_ue_id: 1,
            tunnels: HashMap::new(),
        }
    }

    /// A gNBSIM-style RAN entity: co-located with the core, no radio
    /// (what the paper's mass experiments use).
    #[must_use]
    pub fn simulated(engine: Rc<RefCell<Engine>>, plmn: Plmn) -> Self {
        Gnb {
            engine,
            radio: LinkProfile::instant(),
            backhaul: LinkProfile::loopback(),
            broadcast_plmn: plmn,
            next_ran_ue_id: 1,
            tunnels: HashMap::new(),
        }
    }

    /// The PLMN this cell broadcasts in SIB1.
    #[must_use]
    pub fn broadcast_plmn(&self) -> &Plmn {
        &self.broadcast_plmn
    }

    /// Cell search + RRC connection establishment for a UE whose SIM is
    /// programmed for `sim_plmn`.
    ///
    /// # Errors
    ///
    /// Returns [`RanError::NetworkNotFound`] when the PLMNs differ — the
    /// §V-B6 observation that "if custom mobile country or network codes
    /// were used, the device would be unable to detect the OAI gNB".
    pub fn rrc_connect(&mut self, env: &mut Env, sim_plmn: &Plmn) -> Result<u64, RanError> {
        if sim_plmn != &self.broadcast_plmn {
            return Err(RanError::NetworkNotFound {
                sim_plmn: sim_plmn.to_string(),
                broadcast_plmn: self.broadcast_plmn.to_string(),
            });
        }
        for bytes in RRC_SETUP_MESSAGES {
            self.radio.transfer(env, bytes);
        }
        let id = self.next_ran_ue_id;
        self.next_ran_ue_id += 1;
        env.log.record(
            env.clock.now(),
            "ran",
            format!("RRC connected (ran_ue_id {id})"),
        );
        Ok(id)
    }

    /// One radio transfer with HARQ: a fraction of transport blocks fail
    /// the first decode and are retransmitted, adding a latency tail.
    fn radio_transfer(&self, env: &mut Env, bytes: usize) {
        self.radio.transfer(env, bytes);
        if self.radio.base_ns > 0 && env.rng.chance(HARQ_RETX_PROB) {
            self.radio.transfer(env, bytes);
        }
    }

    /// Carries one uplink NAS PDU to the AMF and returns the downlink NAS
    /// from the response (synchronous N2 exchange).
    ///
    /// # Errors
    ///
    /// Returns [`RanError::Rejected`] for AMF-level rejections and
    /// [`RanError::Transport`] for bus failures.
    pub fn nas_exchange(
        &mut self,
        env: &mut Env,
        ran_ue_id: u64,
        nas: Vec<u8>,
        initial: bool,
    ) -> Result<Vec<u8>, RanError> {
        // Uplink over the air.
        self.radio_transfer(env, nas.len());
        let ngap = if initial {
            Ngap::InitialUeMessage { ran_ue_id, nas }
        } else {
            Ngap::UplinkNasTransport { ran_ue_id, nas }
        };
        let body = ngap.encode();
        self.backhaul.transfer(env, body.len());
        let resp =
            self.engine
                .borrow_mut()
                .dispatch(env, addr::AMF, HttpRequest::post("/ngap", body))?;
        if !resp.is_success() {
            return Err(RanError::Rejected {
                stage: "ngap",
                cause: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        self.backhaul.transfer(env, resp.body.len());
        let downlink = Ngap::decode(&resp.body)?;
        if let Ngap::InitialContextSetup { teid, .. } = &downlink {
            // PDU session resource setup: remember the GTP tunnel.
            self.tunnels.insert(ran_ue_id, *teid);
        }
        let nas = downlink.nas().to_vec();
        // Downlink over the air.
        self.radio_transfer(env, nas.len());
        Ok(nas)
    }

    /// Forwards one uplink user-plane packet through the UE's GTP tunnel
    /// and returns the echoed payload.
    ///
    /// # Errors
    ///
    /// Returns [`RanError::Protocol`] when no tunnel exists for the UE and
    /// [`RanError::Rejected`] when the UPF refuses the packet.
    pub fn gtp_uplink(
        &mut self,
        env: &mut Env,
        ran_ue_id: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, RanError> {
        let teid = *self.tunnels.get(&ran_ue_id).ok_or_else(|| {
            RanError::Protocol(format!("no GTP tunnel for ran_ue_id {ran_ue_id}"))
        })?;
        self.radio_transfer(env, payload.len());
        let pkt = GtpPacket {
            teid,
            payload: payload.to_vec(),
        }
        .encode();
        self.backhaul.transfer(env, pkt.len());
        let resp = self.engine.borrow_mut().dispatch(
            env,
            addr::UPF,
            HttpRequest::post("/gtp/uplink", pkt),
        )?;
        if !resp.is_success() {
            return Err(RanError::Rejected {
                stage: "gtp",
                cause: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        self.backhaul.transfer(env, resp.body.len());
        self.radio_transfer(env, resp.body.len());
        Ok(resp.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plmn_mismatch_blocks_attach() {
        let mut env = Env::new(1);
        let engine = Rc::new(RefCell::new(Engine::new()));
        let mut gnb = Gnb::usrp(engine, Plmn::test_network());
        let foreign = Plmn::new("310", "260").unwrap();
        let err = gnb.rrc_connect(&mut env, &foreign).unwrap_err();
        assert!(matches!(err, RanError::NetworkNotFound { .. }));
    }

    #[test]
    fn rrc_connect_allocates_ids_and_takes_time() {
        let mut env = Env::new(2);
        let engine = Rc::new(RefCell::new(Engine::new()));
        let mut gnb = Gnb::usrp(engine, Plmn::test_network());
        let t0 = env.clock.now();
        let id1 = gnb.rrc_connect(&mut env, &Plmn::test_network()).unwrap();
        let id2 = gnb.rrc_connect(&mut env, &Plmn::test_network()).unwrap();
        assert_ne!(id1, id2);
        // 5 radio messages at ~2.5 ms each.
        let spent = env.clock.now() - t0;
        assert!(
            spent > shield5g_sim::time::SimDuration::from_millis(15),
            "{spent}"
        );
    }

    #[test]
    fn simulated_gnb_is_fast() {
        let mut env = Env::new(3);
        let engine = Rc::new(RefCell::new(Engine::new()));
        let mut gnb = Gnb::simulated(engine, Plmn::test_network());
        let t0 = env.clock.now();
        gnb.rrc_connect(&mut env, &Plmn::test_network()).unwrap();
        let spent = env.clock.now() - t0;
        assert!(
            spent < shield5g_sim::time::SimDuration::from_micros(10),
            "{spent}"
        );
    }

    #[test]
    fn nas_to_unreachable_amf_fails() {
        let mut env = Env::new(4);
        let engine = Rc::new(RefCell::new(Engine::new()));
        let mut gnb = Gnb::simulated(engine, Plmn::test_network());
        let id = gnb.rrc_connect(&mut env, &Plmn::test_network()).unwrap();
        assert!(gnb.nas_exchange(&mut env, id, vec![1, 2], true).is_err());
    }
}
