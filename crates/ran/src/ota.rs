//! The §V-B6 over-the-air feasibility test and the §V-B4 end-to-end
//! session-setup measurement.
//!
//! "Despite the overheads introduced by the use of HMEE, the OnePlus 8
//! COTS mobile phone successfully establishes a data session with the
//! gNB after registering with 5G core network utilizing P-AKA modules."
//! This module assembles exactly that testbed — SDR gNB over a realistic
//! radio link, OnePlus 8 with an OpenCells SIM programmed to PLMN 00101 —
//! and runs the full stack: SUCI, 5G-AKA through the enclaves, NAS
//! security, GUTI, PDU session, and a user-plane echo.

use crate::gnb::Gnb;
use crate::ue::CotsUe;
use crate::usim::Usim;
use crate::RanError;
use shield5g_core::paka::PakaKind;
use shield5g_core::slice::{build_slice, AkaDeployment, Slice, SliceConfig};
use shield5g_crypto::ident::Plmn;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;

/// Report from the OTA run.
#[derive(Clone, Debug)]
pub struct OtaReport {
    /// Whether the UE registered through the (shielded) AKA path.
    pub registered: bool,
    /// Whether a PDU session came up.
    pub session_established: bool,
    /// Whether a user-plane packet echoed end to end.
    pub data_echoed: bool,
    /// End-to-end session setup time (registration + PDU session).
    pub session_setup: SimDuration,
    /// Cumulative time spent in P-AKA module round trips during setup.
    pub paka_time: SimDuration,
    /// The UE's assigned IP.
    pub ue_ip: [u8; 4],
}

impl OtaReport {
    /// The SGX share of setup: paka time over total (§V-B4 reports 5.58 %
    /// for the *added* SGX cost; [`sgx_share_of_setup`] computes that
    /// differential figure).
    #[must_use]
    pub fn paka_fraction(&self) -> f64 {
        self.paka_time.as_nanos() as f64 / self.session_setup.as_nanos() as f64
    }
}

/// The assembled OTA testbed.
pub struct OtaTestbed {
    env: Env,
    slice: Slice,
    gnb: Gnb,
    ue: CotsUe,
}

impl std::fmt::Debug for OtaTestbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OtaTestbed")
            .field("slice", &self.slice)
            .finish()
    }
}

impl OtaTestbed {
    /// Builds the §V-B6 testbed: SGX slice, USRP gNB on PLMN 00101, and a
    /// OnePlus 8 with a programmed OpenCells SIM.
    ///
    /// # Panics
    ///
    /// Panics if the slice cannot deploy (harness-controlled inputs).
    #[must_use]
    pub fn assemble(seed: u64, deployment: AkaDeployment) -> Self {
        let mut env = Env::new(seed);
        env.log.disable();
        let slice = build_slice(
            &mut env,
            &SliceConfig {
                deployment,
                subscriber_count: 2,
            },
        )
        .expect("slice deploys");
        let gnb = Gnb::usrp(slice.engine.clone(), Plmn::test_network());
        let sub = &slice.subscribers[0];
        let usim = Usim::program(
            sub.supi.clone(),
            sub.k,
            sub.opc,
            slice.hn_key_id,
            slice.hn_public,
        );
        let ue = CotsUe::oneplus8(usim);
        OtaTestbed {
            env,
            slice,
            gnb,
            ue,
        }
    }

    /// Replaces the UE (e.g. to test an incompatible OS build).
    pub fn swap_ue(&mut self, ue: CotsUe) {
        self.ue = ue;
    }

    /// Access to the world's environment (for inspection after a run).
    #[must_use]
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// The deployed slice.
    #[must_use]
    pub fn slice(&self) -> &Slice {
        &self.slice
    }

    /// Runs the OTA sequence: register → PDU session → data echo.
    ///
    /// # Errors
    ///
    /// Propagates the first attach/registration/session failure.
    pub fn run(&mut self) -> Result<OtaReport, RanError> {
        let paka_before = self.total_paka_time();
        let t0 = self.env.clock.now();
        let _report = self.ue.register(&mut self.env, &mut self.gnb)?;
        let ue_ip = self.ue.establish_session(&mut self.env, &mut self.gnb)?;
        let session_setup = self.env.clock.now() - t0;
        let echo = self
            .ue
            .send_data(&mut self.env, &mut self.gnb, b"icmp-echo-request")?;
        Ok(OtaReport {
            registered: self.ue.is_registered(),
            session_established: true,
            data_echoed: echo == b"icmp-echo-request",
            session_setup,
            paka_time: self.total_paka_time() - paka_before,
            ue_ip,
        })
    }

    /// Sum of module round-trip times recorded by the slice's backends.
    fn total_paka_time(&self) -> SimDuration {
        PakaKind::all()
            .iter()
            .filter_map(|&k| self.slice.backend_metrics(k))
            .map(|m| {
                m.borrow()
                    .response_times
                    .iter()
                    .copied()
                    .sum::<SimDuration>()
            })
            .sum()
    }
}

/// §V-B4: the *added* cost of SGX as a share of session setup. Runs the
/// same registration + session sequence against an SGX slice and a
/// container slice (identical seeds) and compares.
#[derive(Clone, Debug)]
pub struct SessionSetupComparison {
    /// End-to-end setup time through SGX P-AKA modules.
    pub sgx_setup: SimDuration,
    /// End-to-end setup time through container modules.
    pub container_setup: SimDuration,
    /// The SGX-added delay.
    pub sgx_delta: SimDuration,
}

impl SessionSetupComparison {
    /// SGX-added delay as a fraction of the SGX setup time (the paper's
    /// 5.58 % figure).
    #[must_use]
    pub fn sgx_share_of_setup(&self) -> f64 {
        self.sgx_delta.as_nanos() as f64 / self.sgx_setup.as_nanos() as f64
    }
}

/// Measures the session-setup comparison of §V-B4 (median over `reps`
/// runs; the modules are warmed first so the stable — not initial —
/// response times are compared, as the paper does).
///
/// The SGX-added delay is computed the way the paper frames it: as the
/// difference in *cumulative P-AKA module round-trip time* between the
/// two deployments. Differencing the total setup times instead would
/// bury the ~2–3 ms module delta under several milliseconds of radio
/// jitter.
#[must_use]
pub fn session_setup_comparison(seed: u64, reps: u32) -> SessionSetupComparison {
    let measure = |deployment: AkaDeployment, seed: u64| -> (SimDuration, SimDuration) {
        let mut testbed = OtaTestbed::assemble(seed, deployment);
        // Warm the modules (the paper measures steady-state setup).
        let _ = testbed.run().expect("warmup run");
        let mut setups = Vec::new();
        let mut paka = Vec::new();
        for _ in 0..reps {
            let report = testbed.run().expect("measured run");
            setups.push(report.session_setup);
            paka.push(report.paka_time);
        }
        (
            shield5g_core::stats::Summary::of(&setups).median,
            shield5g_core::stats::Summary::of(&paka).median,
        )
    };
    let (sgx_setup, sgx_paka) = measure(
        AkaDeployment::Sgx(shield5g_core::paka::SgxConfig::default()),
        seed,
    );
    let (container_setup, container_paka) = measure(AkaDeployment::Container, seed);
    SessionSetupComparison {
        sgx_setup,
        container_setup,
        sgx_delta: sgx_paka.saturating_sub(container_paka),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_core::paka::SgxConfig;

    #[test]
    fn ota_succeeds_through_sgx_paka() {
        let mut testbed = OtaTestbed::assemble(51, AkaDeployment::Sgx(SgxConfig::default()));
        let cold = testbed.run().unwrap();
        assert!(
            cold.registered,
            "UE must register through the enclave AKA path"
        );
        assert!(cold.session_established);
        assert!(cold.data_echoed, "user-plane echo must come back");
        assert_eq!(cold.ue_ip[0], 10);
        // The very first registration pays the modules' initial-response
        // penalty (R_I ≈ 20 × R_S per module, §V-B4).
        assert!(
            cold.session_setup > SimDuration::from_millis(95),
            "{}",
            cold.session_setup
        );
        // Steady state: the paper's 62.38 ms band.
        let warm = testbed.run().unwrap();
        assert!(warm.registered && warm.data_echoed);
        assert!(
            warm.session_setup > SimDuration::from_millis(45),
            "{}",
            warm.session_setup
        );
        assert!(
            warm.session_setup < SimDuration::from_millis(85),
            "{}",
            warm.session_setup
        );
    }

    #[test]
    fn wrong_plmn_prevents_detection() {
        // §V-B6: custom MCC/MNC → the device cannot detect the gNB.
        let mut testbed = OtaTestbed::assemble(52, AkaDeployment::Sgx(SgxConfig::default()));
        let sub = testbed.slice().subscribers[1].clone();
        // Program a SIM for a non-test PLMN: the SUPI's PLMN is the SIM's
        // home network; simulate by swapping the gNB... simpler: build a
        // foreign-PLMN USIM.
        let foreign_supi =
            shield5g_crypto::ident::Supi::new(Plmn::new("310", "260").unwrap(), "0000000001")
                .unwrap();
        let usim = Usim::program(foreign_supi, sub.k, sub.opc, 1, testbed.slice().hn_public);
        testbed.swap_ue(CotsUe::oneplus8(usim));
        match testbed.run() {
            Err(RanError::NetworkNotFound { .. }) => {}
            other => panic!("expected NetworkNotFound, got {other:?}"),
        }
    }

    #[test]
    fn wrong_os_build_fails_e2e() {
        let mut testbed = OtaTestbed::assemble(53, AkaDeployment::Sgx(SgxConfig::default()));
        let sub = testbed.slice().subscribers[0].clone();
        let usim = Usim::program(
            sub.supi,
            sub.k,
            sub.opc,
            testbed.slice().hn_key_id,
            testbed.slice().hn_public,
        );
        testbed.swap_ue(CotsUe::oneplus8(usim).with_os_build("Oxygen 12.1"));
        assert!(matches!(
            testbed.run(),
            Err(RanError::IncompatibleUeBuild(_))
        ));
    }

    #[test]
    fn sgx_share_of_session_setup_is_small() {
        let cmp = session_setup_comparison(54, 3);
        let share = cmp.sgx_share_of_setup();
        // Paper: 5.58% — the claim is that SGX is a small fraction.
        assert!(share > 0.005 && share < 0.12, "SGX share {share:.3}");
        assert!(cmp.sgx_setup > cmp.container_setup);
        // Total in the right decade.
        assert!(cmp.sgx_setup > SimDuration::from_millis(40));
        assert!(cmp.sgx_setup < SimDuration::from_millis(90));
    }
}
