//! The COTS UE: a full-stack, spec-conformant user equipment model.
//!
//! Unlike a gNBSIM shortcut, this UE really runs its side of 5G-AKA:
//! SUCI concealment with a fresh ECIES ephemeral, AUTN verification on
//! the USIM with SQN window handling (including AUTS re-synchronisation),
//! RES* computation, the full key hierarchy, NAS security-mode
//! verification, GUTI storage and PDU-session establishment. That is
//! what makes the OTA test meaningful: the isolated AKA functions face a
//! real protocol peer.

use crate::gnb::Gnb;
use crate::usim::{ChallengeOutcome, Usim};
use crate::RanError;
use shield5g_crypto::ident::Guti;
use shield5g_crypto::keys::{derive_kamf, ServingNetworkName};
use shield5g_nf::messages::{AuthFailureCause, NasDownlink, NasUplink, UeIdentity};
use shield5g_nf::nas_security::{NasSecurityContext, ProtectedNas};
use shield5g_obs::hub as obs;
use shield5g_obs::hub::StageSpan;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;

/// Modem/AP processing per NAS message on a phone-class SoC.
const UE_NAS_PROC_NANOS: u64 = 450_000;
/// SUCI concealment (ECIES X25519 on the UE).
const UE_SUCI_NANOS: u64 = 800_000;
/// USIM challenge evaluation (MILENAGE on the secure element).
const UE_USIM_NANOS: u64 = 350_000;
/// The OS build the OTA testbed validated (Table IV).
pub const VALIDATED_ONEPLUS8_BUILD: &str = "Oxygen 11.0.11.11.IN21DA";

/// Result of a successful registration.
#[derive(Clone, Debug)]
pub struct RegistrationReport {
    /// End-to-end session setup time (RRC start → registration complete).
    pub setup_time: SimDuration,
    /// Assigned temporary identity.
    pub guti: Guti,
    /// SQN re-synchronisations performed along the way.
    pub resyncs: u8,
}

/// UE registration state.
#[derive(Debug, PartialEq, Eq)]
enum UeState {
    Deregistered,
    Registered,
}

/// A user equipment instance.
pub struct CotsUe {
    usim: Usim,
    model: &'static str,
    os_build: String,
    build_validated: bool,
    state: UeState,
    sec: Option<NasSecurityContext>,
    guti: Option<Guti>,
    ran_ue_id: Option<u64>,
    ue_ip: Option<[u8; 4]>,
}

impl std::fmt::Debug for CotsUe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CotsUe")
            .field("model", &self.model)
            .field("os_build", &self.os_build)
            .field("state", &self.state)
            .finish()
    }
}

impl CotsUe {
    /// The OTA testbed's OnePlus 8 with the validated Oxygen build.
    #[must_use]
    pub fn oneplus8(usim: Usim) -> Self {
        CotsUe {
            usim,
            model: "OnePlus 8",
            os_build: VALIDATED_ONEPLUS8_BUILD.to_owned(),
            build_validated: true,
            state: UeState::Deregistered,
            sec: None,
            guti: None,
            ran_ue_id: None,
            ue_ip: None,
        }
    }

    /// A gNBSIM-internal UE (no COTS build constraints).
    #[must_use]
    pub fn sim_ue(usim: Usim) -> Self {
        CotsUe {
            usim,
            model: "gnbsim-ue",
            os_build: "n/a".to_owned(),
            build_validated: false,
            state: UeState::Deregistered,
            sec: None,
            guti: None,
            ran_ue_id: None,
            ue_ip: None,
        }
    }

    /// Overrides the OS build (to reproduce the §V-B6 finding that other
    /// builds fail to complete the end-to-end connection).
    #[must_use]
    pub fn with_os_build(mut self, build: impl Into<String>) -> Self {
        self.os_build = build.into();
        self
    }

    /// Whether the UE completed registration.
    #[must_use]
    pub fn is_registered(&self) -> bool {
        self.state == UeState::Registered
    }

    /// The GUTI assigned at registration.
    #[must_use]
    pub fn guti(&self) -> Option<Guti> {
        self.guti
    }

    /// The UE IP once a PDU session is up.
    #[must_use]
    pub fn ue_ip(&self) -> Option<[u8; 4]> {
        self.ue_ip
    }

    fn serving_network(&self, gnb: &Gnb) -> ServingNetworkName {
        ServingNetworkName::new(gnb.broadcast_plmn().mcc(), gnb.broadcast_plmn().mnc())
    }

    fn charge(env: &mut Env, nanos: u64) {
        env.clock.advance(SimDuration::from_nanos(nanos));
    }

    /// Registers with the network through `gnb` (TS 23.502 §4.2.2 from
    /// the UE's seat).
    ///
    /// # Errors
    ///
    /// * [`RanError::IncompatibleUeBuild`] for unvalidated COTS builds.
    /// * [`RanError::NetworkNotFound`] on PLMN mismatch.
    /// * [`RanError::NetworkAuthenticationFailed`] when AUTN fails.
    /// * [`RanError::Rejected`] when the network refuses the UE.
    pub fn register(
        &mut self,
        env: &mut Env,
        gnb: &mut Gnb,
    ) -> Result<RegistrationReport, RanError> {
        // Initial registration always conceals the permanent identity.
        Self::charge(env, UE_SUCI_NANOS);
        let suci = self.usim.conceal_identity(env);
        self.register_with_identity(env, gnb, UeIdentity::Suci(suci))
    }

    /// Re-registers using the GUTI from a previous registration (mobility
    /// registration update): the permanent identity stays off the air and
    /// the AMF resolves the SUPI from its GUTI map.
    ///
    /// # Errors
    ///
    /// As [`CotsUe::register`]; additionally [`RanError::Protocol`] when
    /// no GUTI is stored yet.
    pub fn re_register_with_guti(
        &mut self,
        env: &mut Env,
        gnb: &mut Gnb,
    ) -> Result<RegistrationReport, RanError> {
        let guti = self
            .guti
            .ok_or_else(|| RanError::Protocol("no GUTI stored; register first".into()))?;
        self.register_with_identity(env, gnb, UeIdentity::Guti(guti))
    }

    fn register_with_identity(
        &mut self,
        env: &mut Env,
        gnb: &mut Gnb,
        identity: UeIdentity,
    ) -> Result<RegistrationReport, RanError> {
        if self.build_validated && self.os_build != VALIDATED_ONEPLUS8_BUILD {
            return Err(RanError::IncompatibleUeBuild(self.os_build.clone()));
        }
        // A (re-)registration starts from a clean NAS state.
        self.state = UeState::Deregistered;
        self.sec = None;
        self.guti = None;
        let t0 = env.clock.now();
        // Roots the registration's trace: every SBI hop and enclave
        // transition below nests under this stage span, so the flame dump
        // decomposes `setup_time` exactly. Dropped (abandoned) on the
        // error returns below.
        let stage = StageSpan::open("ue", "registration", t0.as_nanos());
        let ran_ue_id = gnb.rrc_connect(env, self.usim.plmn())?;
        self.ran_ue_id = Some(ran_ue_id);
        let snn = self.serving_network(gnb);

        let nas = NasUplink::RegistrationRequest { identity }.encode();
        let mut downlink = gnb.nas_exchange(env, ran_ue_id, nas, true)?;
        let mut resyncs: u8 = 0;
        let mut complete_sent = false;

        loop {
            Self::charge(env, UE_NAS_PROC_NANOS);
            let msg = self.decode_downlink(&downlink)?;
            let uplink: NasUplink = match msg {
                NasDownlink::AuthenticationRequest {
                    rand, autn, abba, ..
                } => {
                    Self::charge(env, UE_USIM_NANOS);
                    match self.usim.evaluate_challenge(&rand, &autn, &snn) {
                        ChallengeOutcome::Success(result) => {
                            // Stash keys for the security-mode step.
                            let kamf = derive_kamf(
                                result.kseaf.expose(),
                                &self.usim.supi().to_string(),
                                &abba,
                            );
                            self.sec = Some(NasSecurityContext::from_kamf(&kamf, true));
                            NasUplink::AuthenticationResponse {
                                res_star: result.res_star,
                            }
                        }
                        ChallengeOutcome::SyncFailure(auts) => {
                            resyncs += 1;
                            if resyncs > 2 {
                                return Err(RanError::Protocol("resynchronisation loop".into()));
                            }
                            NasUplink::AuthenticationFailure {
                                cause: AuthFailureCause::SynchFailure(auts),
                            }
                        }
                        ChallengeOutcome::MacFailure => {
                            // Report and abort: the network is not genuine.
                            let nas = NasUplink::AuthenticationFailure {
                                cause: AuthFailureCause::MacFailure,
                            }
                            .encode();
                            let _ = gnb.nas_exchange(env, ran_ue_id, nas, false);
                            return Err(RanError::NetworkAuthenticationFailed(
                                "AUTN MAC verification failed".into(),
                            ));
                        }
                    }
                }
                NasDownlink::IdentityRequest => {
                    // The network could not resolve our temporary identity:
                    // answer with a freshly concealed SUCI.
                    Self::charge(env, UE_SUCI_NANOS);
                    let suci = self.usim.conceal_identity(env);
                    NasUplink::IdentityResponse { suci }
                }
                NasDownlink::SecurityModeCommand {
                    integrity_alg,
                    ciphering_alg,
                } => {
                    // TS 33.501 §6.7.2: the UE checks the selected
                    // algorithms are ones it supports before replaying
                    // its capabilities back under the new context.
                    if integrity_alg != shield5g_nf::nas_security::INTEGRITY_ALG_HMAC
                        || ciphering_alg != shield5g_nf::nas_security::CIPHER_ALG_AES
                    {
                        return Err(RanError::Rejected {
                            stage: "security-mode",
                            cause: format!(
                                "unsupported algorithms int={integrity_alg} enc={ciphering_alg}"
                            ),
                        });
                    }
                    NasUplink::SecurityModeComplete
                }
                NasDownlink::RegistrationAccept { guti } => {
                    self.guti = Some(guti);
                    if complete_sent {
                        // Echo after RegistrationComplete: we are done.
                        self.state = UeState::Registered;
                        break;
                    }
                    complete_sent = true;
                    NasUplink::RegistrationComplete
                }
                NasDownlink::AuthenticationReject => {
                    return Err(RanError::Rejected {
                        stage: "authentication",
                        cause: "reject".into(),
                    })
                }
                NasDownlink::RegistrationReject { cause } => {
                    return Err(RanError::Rejected {
                        stage: "registration",
                        cause: cause.to_string(),
                    })
                }
                other => return Err(RanError::Protocol(format!("unexpected downlink {other:?}"))),
            };
            let protected = self.encode_uplink(&uplink);
            // The taint pass is field-insensitive: the protected PDU
            // rides inside the HttpRequest whose *path/method* reach the
            // engine trace; the ciphered NAS payload itself is never
            // rendered.
            // shield5g-lint: allow(SH004)
            downlink = gnb.nas_exchange(env, ran_ue_id, protected, false)?;
        }

        stage.close(env.clock.now().as_nanos());
        obs::count("ue", "registration", "completed", 1);
        obs::count("ue", "registration", "resyncs", u64::from(resyncs));
        obs::observe(
            "ue",
            "registration",
            "setup_time_ns",
            (env.clock.now() - t0).as_nanos(),
        );
        Ok(RegistrationReport {
            setup_time: env.clock.now() - t0,
            guti: self.guti.expect("registered"),
            resyncs,
        })
    }

    /// Establishes a PDU session (the "data session" of §V-B6).
    ///
    /// # Errors
    ///
    /// Returns [`RanError::Protocol`] when called before registration or
    /// on unexpected responses.
    pub fn establish_session(&mut self, env: &mut Env, gnb: &mut Gnb) -> Result<[u8; 4], RanError> {
        let ran_ue_id = self
            .ran_ue_id
            .ok_or_else(|| RanError::Protocol("PDU session before registration".into()))?;
        if self.state != UeState::Registered {
            return Err(RanError::Protocol("PDU session before registration".into()));
        }
        Self::charge(env, UE_NAS_PROC_NANOS);
        let nas =
            self.encode_uplink(&NasUplink::PduSessionEstablishmentRequest { pdu_session_id: 5 });
        let downlink = gnb.nas_exchange(env, ran_ue_id, nas, false)?;
        Self::charge(env, UE_NAS_PROC_NANOS);
        match self.decode_downlink(&downlink)? {
            NasDownlink::PduSessionEstablishmentAccept { ue_ip, .. } => {
                self.ue_ip = Some(ue_ip);
                Ok(ue_ip)
            }
            other => Err(RanError::Protocol(format!("unexpected downlink {other:?}"))),
        }
    }

    /// Deregisters from the network (TS 24.501 §5.5.2): the GUTI and NAS
    /// security context are discarded on both sides.
    ///
    /// # Errors
    ///
    /// Returns [`RanError::Protocol`] when not registered or on an
    /// unexpected response.
    pub fn deregister(&mut self, env: &mut Env, gnb: &mut Gnb) -> Result<(), RanError> {
        let ran_ue_id = self
            .ran_ue_id
            .ok_or_else(|| RanError::Protocol("deregister before registration".into()))?;
        if self.state != UeState::Registered {
            return Err(RanError::Protocol("deregister before registration".into()));
        }
        Self::charge(env, UE_NAS_PROC_NANOS);
        let nas = self.encode_uplink(&NasUplink::DeregistrationRequest { switch_off: false });
        let downlink = gnb.nas_exchange(env, ran_ue_id, nas, false)?;
        match self.decode_downlink(&downlink)? {
            NasDownlink::DeregistrationAccept => {
                self.state = UeState::Deregistered;
                self.sec = None;
                self.guti = None;
                self.ue_ip = None;
                Ok(())
            }
            other => Err(RanError::Protocol(format!("unexpected downlink {other:?}"))),
        }
    }

    /// Sends a user-plane payload through the established session and
    /// returns the N6-side echo.
    ///
    /// # Errors
    ///
    /// Returns [`RanError::Protocol`] without a session, and transport
    /// errors from the tunnel.
    pub fn send_data(
        &mut self,
        env: &mut Env,
        gnb: &mut Gnb,
        payload: &[u8],
    ) -> Result<Vec<u8>, RanError> {
        let ran_ue_id = self
            .ran_ue_id
            .filter(|_| self.ue_ip.is_some())
            .ok_or_else(|| RanError::Protocol("no PDU session".into()))?;
        gnb.gtp_uplink(env, ran_ue_id, payload)
    }

    fn encode_uplink(&mut self, msg: &NasUplink) -> Vec<u8> {
        let plain = msg.encode();
        match (&mut self.sec, msg) {
            // Everything from SecurityModeComplete onwards is protected.
            (Some(sec), NasUplink::SecurityModeComplete)
            | (Some(sec), NasUplink::RegistrationComplete)
            | (Some(sec), NasUplink::PduSessionEstablishmentRequest { .. })
            | (Some(sec), NasUplink::DeregistrationRequest { .. }) => sec.protect(&plain).encode(),
            _ => plain,
        }
    }

    fn decode_downlink(&mut self, bytes: &[u8]) -> Result<NasDownlink, RanError> {
        // Try plain first (pre-security messages), then protected.
        if let Ok(msg) = NasDownlink::decode(bytes) {
            return Ok(msg);
        }
        let sec = self
            .sec
            .as_mut()
            .ok_or_else(|| RanError::Protocol("protected NAS before security mode".into()))?;
        let pdu = ProtectedNas::decode(bytes)
            .map_err(|e| RanError::Protocol(format!("bad protected NAS: {e}")))?;
        let plain = sec
            .unprotect(&pdu)
            .map_err(|e| RanError::NetworkAuthenticationFailed(format!("NAS integrity: {e}")))?;
        Ok(NasDownlink::decode(&plain)?)
    }
}

#[cfg(test)]
mod tests {
    // The UE is exercised end-to-end in `gnbsim`/`ota` tests and the
    // workspace integration tests; here we cover the guards.
    use super::*;
    use shield5g_crypto::ident::{Plmn, Supi};

    fn usim() -> Usim {
        Usim::program(
            Supi::new(Plmn::test_network(), "0000000001").unwrap(),
            [0x46; 16],
            [0xcd; 16],
            1,
            [9; 32],
        )
    }

    #[test]
    fn wrong_os_build_cannot_register() {
        let mut env = Env::new(1);
        let engine = std::rc::Rc::new(std::cell::RefCell::new(shield5g_sim::engine::Engine::new()));
        let mut gnb = Gnb::usrp(engine, Plmn::test_network());
        let mut ue = CotsUe::oneplus8(usim()).with_os_build("Oxygen 10.0.1");
        assert!(matches!(
            ue.register(&mut env, &mut gnb),
            Err(RanError::IncompatibleUeBuild(_))
        ));
    }

    #[test]
    fn pdu_session_requires_registration() {
        let mut env = Env::new(2);
        let engine = std::rc::Rc::new(std::cell::RefCell::new(shield5g_sim::engine::Engine::new()));
        let mut gnb = Gnb::usrp(engine, Plmn::test_network());
        let mut ue = CotsUe::oneplus8(usim());
        assert!(ue.establish_session(&mut env, &mut gnb).is_err());
        assert!(ue.send_data(&mut env, &mut gnb, b"ping").is_err());
    }

    #[test]
    fn fresh_ue_is_deregistered() {
        let ue = CotsUe::oneplus8(usim());
        assert!(!ue.is_registered());
        assert!(ue.guti().is_none());
        assert!(ue.ue_ip().is_none());
    }
}
