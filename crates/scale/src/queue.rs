//! Bounded admission queues with deadline-based load shedding.
//!
//! Each replica serves one authentication flow at a time (the paper's
//! single-flow Pistache server under `sgx.max_threads = 4`); arrivals
//! beyond its service rate wait in a bounded FIFO. Admission is decided
//! in virtual time at the arrival instant: a request is shed immediately
//! when the queue is full **or** when its predicted wait already exceeds
//! the deadline — serving it anyway would return an authentication
//! response the AMF-side timer has long abandoned, while still burning
//! enclave transitions.

use shield5g_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Admission-control parameters for one replica queue.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum requests in flight (serving + waiting).
    pub capacity: usize,
    /// Maximum predicted wait before a request is shed. Mirrors the NAS
    /// authentication supervision timer: a response slower than this is
    /// useless to the caller.
    pub deadline: SimDuration,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 64,
            deadline: SimDuration::from_millis(250),
        }
    }
}

/// Why a request was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full at arrival.
    QueueFull,
    /// Predicted wait exceeded the admission deadline.
    DeadlineExceeded,
}

/// Outcome of offering a request to a replica queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; service begins at `start` (>= arrival).
    Admitted {
        /// Virtual time service begins.
        start: SimTime,
        /// Time spent waiting behind earlier requests.
        queued: SimDuration,
    },
    /// Rejected without touching the enclave.
    Shed(ShedReason),
}

/// The virtual-time queue state of one replica.
#[derive(Clone, Debug)]
pub struct ReplicaQueue {
    cfg: QueueConfig,
    /// Completion times of admitted, not-yet-finished requests
    /// (non-decreasing; front finishes first).
    completions: VecDeque<SimTime>,
    admitted: u64,
    shed_full: u64,
    shed_deadline: u64,
    depth_peak: usize,
}

impl ReplicaQueue {
    /// An empty queue.
    #[must_use]
    pub fn new(cfg: QueueConfig) -> Self {
        ReplicaQueue {
            cfg,
            completions: VecDeque::new(),
            admitted: 0,
            shed_full: 0,
            shed_deadline: 0,
            depth_peak: 0,
        }
    }

    /// Drops requests that have completed by `now`.
    fn drain(&mut self, now: SimTime) {
        while self.completions.front().is_some_and(|&f| f <= now) {
            self.completions.pop_front();
        }
    }

    /// Offers a request arriving at `now`. On admission the caller must
    /// serve the request and report its completion via
    /// [`ReplicaQueue::complete`] before offering the next arrival.
    pub fn offer(&mut self, now: SimTime) -> Admission {
        self.drain(now);
        if self.completions.len() >= self.cfg.capacity {
            self.shed_full += 1;
            return Admission::Shed(ShedReason::QueueFull);
        }
        let start = match self.completions.back() {
            Some(&busy_until) if busy_until > now => busy_until,
            _ => now,
        };
        let queued = start - now;
        if queued > self.cfg.deadline {
            self.shed_deadline += 1;
            return Admission::Shed(ShedReason::DeadlineExceeded);
        }
        self.admitted += 1;
        self.depth_peak = self.depth_peak.max(self.completions.len() + 1);
        Admission::Admitted { start, queued }
    }

    /// Records the completion time of the most recently admitted request.
    ///
    /// # Panics
    ///
    /// Panics when `finish` precedes the previous completion — admitted
    /// requests are served FIFO, so completions are non-decreasing.
    pub fn complete(&mut self, finish: SimTime) {
        if let Some(&last) = self.completions.back() {
            assert!(finish >= last, "FIFO completions must be non-decreasing");
        }
        self.completions.push_back(finish);
    }

    /// Requests admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed, by reason (full, deadline).
    #[must_use]
    pub fn shed(&self) -> (u64, u64) {
        (self.shed_full, self.shed_deadline)
    }

    /// Highest in-flight depth observed.
    #[must_use]
    pub fn depth_peak(&self) -> usize {
        self.depth_peak
    }

    /// Virtual time the replica becomes idle (arrival time for an empty
    /// queue).
    #[must_use]
    pub fn busy_until(&self, now: SimTime) -> SimTime {
        match self.completions.back() {
            Some(&t) if t > now => t,
            _ => now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn idle_queue_starts_immediately() {
        let mut q = ReplicaQueue::new(QueueConfig::default());
        match q.offer(t(10)) {
            Admission::Admitted { start, queued } => {
                assert_eq!(start, t(10));
                assert_eq!(queued, SimDuration::ZERO);
            }
            Admission::Shed(r) => panic!("shed {r:?}"),
        }
    }

    #[test]
    fn back_to_back_arrivals_queue_fifo() {
        let mut q = ReplicaQueue::new(QueueConfig::default());
        // Three arrivals at t=0, each served in 5 ms.
        let mut starts = Vec::new();
        for _ in 0..3 {
            match q.offer(t(0)) {
                Admission::Admitted { start, .. } => {
                    starts.push(start);
                    q.complete(start + d(5));
                }
                Admission::Shed(r) => panic!("shed {r:?}"),
            }
        }
        assert_eq!(starts, vec![t(0), t(5), t(10)]);
        assert_eq!(q.depth_peak(), 3);
    }

    #[test]
    fn full_queue_sheds() {
        let mut q = ReplicaQueue::new(QueueConfig {
            capacity: 2,
            deadline: d(10_000),
        });
        for _ in 0..2 {
            if let Admission::Admitted { start, .. } = q.offer(t(0)) {
                q.complete(start + d(5));
            }
        }
        assert_eq!(q.offer(t(0)), Admission::Shed(ShedReason::QueueFull));
        assert_eq!(q.shed(), (1, 0));
        // Once the head drains, admission resumes.
        assert!(matches!(q.offer(t(6)), Admission::Admitted { .. }));
    }

    #[test]
    fn deadline_sheds_before_capacity() {
        let mut q = ReplicaQueue::new(QueueConfig {
            capacity: 1_000,
            deadline: d(8),
        });
        for _ in 0..2 {
            if let Admission::Admitted { start, .. } = q.offer(t(0)) {
                q.complete(start + d(5));
            }
        }
        // Predicted wait is now 10 ms > the 8 ms deadline.
        assert_eq!(q.offer(t(0)), Admission::Shed(ShedReason::DeadlineExceeded));
        assert_eq!(q.shed(), (0, 1));
        assert_eq!(q.admitted(), 2);
    }

    #[test]
    fn drained_queue_forgets_history() {
        let mut q = ReplicaQueue::new(QueueConfig {
            capacity: 2,
            deadline: d(100),
        });
        for _ in 0..2 {
            if let Admission::Admitted { start, .. } = q.offer(t(0)) {
                q.complete(start + d(5));
            }
        }
        // Well past both completions: queue empty again, no queuing delay.
        match q.offer(t(500)) {
            Admission::Admitted { start, queued } => {
                assert_eq!(start, t(500));
                assert_eq!(queued, SimDuration::ZERO);
            }
            Admission::Shed(r) => panic!("shed {r:?}"),
        }
    }

    #[test]
    fn busy_until_tracks_backlog() {
        let mut q = ReplicaQueue::new(QueueConfig::default());
        assert_eq!(q.busy_until(t(3)), t(3));
        if let Admission::Admitted { start, .. } = q.offer(t(3)) {
            q.complete(start + d(7));
        }
        assert_eq!(q.busy_until(t(3)), t(10));
    }
}
