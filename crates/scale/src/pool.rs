//! Sharded enclave replica pools with warm standby.
//!
//! The paper's single biggest operational number is enclave load time:
//! about a minute per module (Fig. 7). A pool that spawns enclaves on
//! demand would therefore stall scale-up behind a 60 s cold load. This
//! pool keeps `warm_standby` fully preheated replicas *outside* the
//! routing ring; [`EnclavePool::scale_up`] promotes one onto the ring in
//! microseconds and back-fills the standby bench off the request path.
//!
//! Each replica is a complete, independent deployment: its own host, its
//! own SGX platform, its own enclave with its own transition counters —
//! so per-replica EENTER/AEX deltas in the pool metrics are real counter
//! reads, not divisions of an aggregate.

use crate::health::{HealthEvent, HealthPolicy, HealthTracker};
use crate::queue::{Admission, QueueConfig, ReplicaQueue};
use crate::router::{HashRing, ReplicaId};
use shield5g_core::paka::{populate_registry, PakaKind, PakaModule, ServeMetrics, SgxConfig};
use shield5g_hmee::counters::SgxCounters;
use shield5g_hmee::platform::SgxPlatform;
use shield5g_infra::host::Host;
use shield5g_infra::image::Registry;
use shield5g_mw::{
    AdmissionLayer, ClassSheds, ClassShedsHandle, FaultLayer, FaultSwitch, ObsCoreHandle, ObsLayer,
    Stack,
};
use shield5g_obs::hub as obs;
use shield5g_obs::labels;
use shield5g_sim::engine::{AdmissionPolicy, Engine, FAULT_HEADER};
use shield5g_sim::http::{HttpRequest, HttpResponse};
use shield5g_sim::service::{service_handle, Service};
use shield5g_sim::time::{SimDuration, SimTime};
use shield5g_sim::Env;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Engine address of one pool replica: each replica is its own endpoint
/// with its own worker budget and admission policy, so the open-loop
/// harness routes by SUPI and then schedules on the owner's address.
#[must_use]
pub fn replica_addr(kind: PakaKind, id: ReplicaId) -> String {
    format!("{}-r{id}", kind.endpoint())
}

/// The engine-facing face of one replica: serves requests on the
/// replica's enclave module and counts them on the shared tally the pool
/// reports from.
struct ReplicaService {
    module: Rc<RefCell<PakaModule>>,
    served: Rc<Cell<u64>>,
    dead: Rc<Cell<bool>>,
}

impl Service for ReplicaService {
    fn handle(&mut self, env: &mut Env, req: HttpRequest) -> HttpResponse {
        if self.dead.get() {
            // The replica's host is gone: anything still queued at this
            // endpoint fails fast (connection refused), so callers retry
            // against the survivors instead of waiting out a reload.
            return HttpResponse::error(503, "replica dead")
                .with_header(FAULT_HEADER, "replica-dead");
        }
        let (response, _metrics) = self.module.borrow_mut().serve(env, req);
        self.served.set(self.served.get() + 1);
        response
    }
}

/// Lifecycle state of one pool replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaState {
    /// Enclave loaded, first-request lazy init not yet absorbed.
    Preheating,
    /// Preheated warm standby — serving-ready but not on the ring.
    Standby,
    /// On the routing ring, taking traffic.
    Ready,
    /// Removed from the ring; kept for final counter reads.
    Retired,
    /// Killed by fault injection: enclave lost, endpoint failing fast.
    Dead,
}

/// What the pool did about a replica death
/// ([`EnclavePool::kill_replica`]).
#[derive(Clone, Copy, Debug)]
pub struct FailoverReport {
    /// The replica that died.
    pub dead: ReplicaId,
    /// The replica that took over its ring share.
    pub replacement: ReplicaId,
    /// Whether the replacement was a warm standby (microseconds) rather
    /// than a cold spawn (~1 min of virtual time).
    pub standby_promoted: bool,
    /// Virtual instant of the death.
    pub at: SimTime,
    /// Death detected → replacement on the ring.
    pub failover: SimDuration,
}

/// Pool deployment parameters.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Replicas on the routing ring at deploy time.
    pub replicas: u32,
    /// Preheated spares kept off the ring.
    pub warm_standby: u32,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: u32,
    /// Per-replica admission queue parameters.
    pub queue: QueueConfig,
    /// Admission-queue slots reserved for emergency-class arrivals on
    /// every replica (0 = classless admission, the historical behavior).
    pub emergency_headroom: usize,
    /// Enclave configuration for every replica.
    pub sgx: SgxConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            replicas: 1,
            warm_standby: 1,
            vnodes: 64,
            queue: QueueConfig::default(),
            emergency_headroom: 0,
            sgx: SgxConfig::default(),
        }
    }
}

/// One replica: a distinct enclave deployment plus its queue state.
pub struct Replica {
    /// Stable pool-wide identifier.
    pub id: ReplicaId,
    /// Lifecycle state.
    pub state: ReplicaState,
    /// Virtual time the enclave spawn began.
    pub spawned_at: SimTime,
    /// Virtual time the replica finished preheating.
    pub serving_since: Option<SimTime>,
    module: Rc<RefCell<PakaModule>>,
    queue: ReplicaQueue,
    /// Counter snapshot at the end of preheat — deltas from here are
    /// pure request-serving cost, excluding boot and warm-up.
    baseline: Option<SgxCounters>,
    served: Rc<Cell<u64>>,
    /// Shed counts (full, deadline) absorbed from an engine run.
    engine_shed: (u64, u64),
    /// Peak in-flight depth absorbed from an engine run.
    engine_depth_peak: usize,
    /// Shared with the engine-facing service: when set, the endpoint
    /// fails fast instead of serving (fault-injected death).
    dead: Rc<Cell<bool>>,
}

impl Replica {
    /// Requests served by this replica (direct serves and engine serves).
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served.get()
    }

    /// Transition counters accumulated since preheat finished.
    #[must_use]
    pub fn counters_delta(&self) -> SgxCounters {
        let now = self
            .module
            .borrow()
            .sgx_stats()
            .expect("pool replicas are SGX deployments");
        match &self.baseline {
            Some(base) => now.delta_since(base),
            None => now,
        }
    }

    /// The replica's admission queue (closed-loop/synchronous path).
    #[must_use]
    pub fn queue(&self) -> &ReplicaQueue {
        &self.queue
    }

    /// Requests shed at this replica, across both the synchronous queue
    /// and any absorbed engine run.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        let (full, deadline) = self.queue.shed();
        full + deadline + self.engine_shed.0 + self.engine_shed.1
    }

    /// Peak in-flight depth observed, across both admission paths.
    #[must_use]
    pub fn depth_peak(&self) -> usize {
        self.queue.depth_peak().max(self.engine_depth_peak)
    }

    /// Shared handle to the replica's enclave module.
    #[must_use]
    pub fn module(&self) -> Rc<RefCell<PakaModule>> {
        self.module.clone()
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("served", &self.served)
            .finish()
    }
}

/// A sharded pool of identical P-AKA module replicas.
pub struct EnclavePool {
    kind: PakaKind,
    cfg: PoolConfig,
    registry: Registry,
    replicas: Vec<Replica>,
    ring: HashRing,
    next_id: ReplicaId,
    /// Subscriber keys provisioned so far — replayed into newly spawned
    /// replicas so standbys can serve any routed SUPI.
    provisioned: Vec<(String, [u8; 16])>,
    /// Span table shared by every replica endpoint's [`ObsLayer`].
    obs_core: ObsCoreHandle,
    /// Arms/disarms fault injection across every replica endpoint at
    /// once (fault plans are installed per experiment, after stacks are
    /// built).
    fault_switch: FaultSwitch,
    /// Per-replica health gating: when enabled, observed completions
    /// drive EWMA ejection/reinstatement of ring members. `None` (the
    /// default) is zero-cost and route-invariant.
    health: Option<HealthTracker>,
    /// Pool-wide per-priority-class shed counters, shared by every
    /// replica endpoint's [`AdmissionLayer`].
    class_sheds: ClassShedsHandle,
}

impl std::fmt::Debug for EnclavePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnclavePool")
            .field("kind", &self.kind.name())
            .field("ready", &self.ready_ids().len())
            .field("standby", &self.standby_count())
            .finish()
    }
}

impl EnclavePool {
    /// Deploys `cfg.replicas` ready replicas plus `cfg.warm_standby`
    /// preheated spares. Spawning is the expensive path (~1 min of
    /// virtual time per enclave, Fig. 7) and happens entirely here,
    /// before any traffic.
    #[must_use]
    pub fn deploy(env: &mut Env, kind: PakaKind, cfg: PoolConfig) -> Self {
        let mut registry = Registry::new();
        populate_registry(&mut registry);
        let mut pool = EnclavePool {
            kind,
            cfg,
            registry,
            replicas: Vec::new(),
            ring: HashRing::new(cfg.vnodes),
            next_id: 0,
            provisioned: Vec::new(),
            obs_core: ObsLayer::core(),
            fault_switch: FaultSwitch::new(),
            health: None,
            class_sheds: ClassShedsHandle::default(),
        };
        for _ in 0..cfg.replicas {
            let id = pool.spawn_replica(env);
            pool.promote(id);
        }
        for _ in 0..cfg.warm_standby {
            pool.spawn_replica(env);
        }
        pool
    }

    /// Spawns and preheats a fresh replica, leaving it in standby.
    /// Returns its id. This is the slow path: full GSC enclave load plus
    /// the cold first request.
    pub fn spawn_replica(&mut self, env: &mut Env) -> ReplicaId {
        let id = self.next_id;
        self.next_id += 1;
        let spawned_at = env.clock.now();
        let platform = SgxPlatform::new(env);
        let mut host = Host::with_sgx(format!("pool-{}-{id}", self.kind.name()), platform);
        let mut module =
            PakaModule::deploy_sgx(env, &mut host, &self.registry, self.kind, self.cfg.sgx)
                .expect("pool replica deploy");
        for (supi, k) in &self.provisioned {
            module.provision_subscriber_key(env, supi, *k);
        }
        let mut replica = Replica {
            id,
            state: ReplicaState::Preheating,
            spawned_at,
            serving_since: None,
            module: Rc::new(RefCell::new(module)),
            queue: ReplicaQueue::new(self.cfg.queue),
            baseline: None,
            served: Rc::new(Cell::new(0)),
            engine_shed: (0, 0),
            engine_depth_peak: 0,
            dead: Rc::new(Cell::new(false)),
        };
        Self::preheat(env, self.kind, &mut replica);
        self.replicas.push(replica);
        id
    }

    /// Absorbs the cold first request (§V-B4's R_I ≈ 20 × R_S lazy init)
    /// so it never lands on subscriber traffic, then snapshots the
    /// counter baseline.
    fn preheat(env: &mut Env, kind: PakaKind, replica: &mut Replica) {
        let warmup = match kind {
            PakaKind::EUdm => {
                // The preheat probe must not depend on provisioned
                // subscribers; an unknown SUPI still walks the full TLS +
                // dispatch + vault-lookup path (404 is fine — the lazy
                // init it triggers is what we are here for).
                HttpRequest::post("/eudm/generate-av", warmup_udm_body())
            }
            PakaKind::EAusf | PakaKind::EAmf => shield5g_core::harness::standard_request(kind),
        };
        let _ = replica.module.borrow_mut().serve(env, warmup);
        replica.baseline = replica.module.borrow().sgx_stats();
        replica.state = ReplicaState::Standby;
    }

    /// Registers every *ready* replica as its own engine endpoint
    /// (address [`replica_addr`], worker count = the module's
    /// serving-thread budget, admission policy = the pool's queue
    /// config). The open-loop harness then schedules routed arrivals and
    /// lets queueing, overlap, and shedding fall out of event ordering.
    pub fn register_on(&self, engine: &mut Engine) {
        for replica in self
            .replicas
            .iter()
            .filter(|r| r.state == ReplicaState::Ready)
        {
            self.register_replica(engine, replica);
        }
    }

    /// Registers one ready replica as an engine endpoint (used by the
    /// failover path to bring a promoted standby online mid-run). No-op
    /// when the address is already registered.
    pub fn register_replica_on(&self, engine: &mut Engine, id: ReplicaId) {
        self.register_replica(engine, self.replica(id));
    }

    fn register_replica(&self, engine: &mut Engine, replica: &Replica) {
        let addr = replica_addr(self.kind, replica.id);
        if engine.knows(&addr) {
            return;
        }
        let workers = replica.module.borrow().app_threads();
        // Canonical layer order (outermost first): Obs sees every
        // arrival including the ones Admission sheds; Fault only decides
        // fates for legs that were admitted.
        let stack = Stack::new(Engine::leaf(service_handle(ReplicaService {
            module: replica.module.clone(),
            served: replica.served.clone(),
            dead: replica.dead.clone(),
        })))
        .with(ObsLayer::new(self.obs_core.clone()))
        .with(
            AdmissionLayer::with_priority(
                AdmissionPolicy {
                    capacity: Some(self.cfg.queue.capacity),
                    deadline: Some(self.cfg.queue.deadline),
                },
                self.cfg.emergency_headroom,
            )
            .share_class_sheds(self.class_sheds.clone()),
        )
        .with(FaultLayer::new(self.fault_switch.clone()));
        engine.register(addr.clone(), workers, stack.into_handle());
    }

    /// Pool-wide per-priority-class shed totals, aggregated across every
    /// replica endpoint (including ones since killed).
    #[must_use]
    pub fn class_sheds(&self) -> ClassSheds {
        *self.class_sheds.borrow()
    }

    /// The shared switch arming fault injection on every replica
    /// endpoint registered by this pool (see
    /// [`shield5g_mw::FaultSwitch`]).
    #[must_use]
    pub fn fault_switch(&self) -> &FaultSwitch {
        &self.fault_switch
    }

    /// Copies per-endpoint shed counters and depth peaks from a finished
    /// engine run back onto the replicas, so [`Replica::shed_total`] and
    /// [`Replica::depth_peak`] report engine-run ground truth.
    pub fn absorb_engine(&mut self, engine: &Engine) {
        let kind = self.kind;
        for replica in &mut self.replicas {
            let addr = replica_addr(kind, replica.id);
            if engine.knows(&addr) {
                replica.engine_shed = engine.shed_counts(&addr);
                replica.engine_depth_peak = engine.depth_peak(&addr);
            }
        }
    }

    /// Moves a standby replica onto the routing ring (the fast scale-up
    /// path — no enclave work at all).
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a standby replica.
    pub fn promote(&mut self, id: ReplicaId) {
        let replica = self.replica_mut(id);
        assert_eq!(
            replica.state,
            ReplicaState::Standby,
            "only standby replicas can be promoted"
        );
        replica.state = ReplicaState::Ready;
        self.ring.add(id);
        self.replica_mut(id).serving_since = None;
    }

    /// Scales the ring up by one replica. Prefers promoting a warm
    /// standby (microseconds); falls back to a cold spawn (~1 min of
    /// virtual time) only when the bench is empty. Returns the promoted
    /// replica id and whether a standby was available.
    pub fn scale_up(&mut self, env: &mut Env) -> (ReplicaId, bool) {
        let standby = self
            .replicas
            .iter()
            .find(|r| r.state == ReplicaState::Standby)
            .map(|r| r.id);
        match standby {
            Some(id) => {
                self.promote(id);
                let at = env.clock.now();
                self.replica_mut(id).serving_since = Some(at);
                (id, true)
            }
            None => {
                let id = self.spawn_replica(env);
                self.promote(id);
                let at = env.clock.now();
                self.replica_mut(id).serving_since = Some(at);
                (id, false)
            }
        }
    }

    /// Re-fills the standby bench up to the configured level (the slow
    /// part of scale-up, run off the request path).
    pub fn refill_standby(&mut self, env: &mut Env) {
        while self.standby_count() < self.cfg.warm_standby as usize {
            self.spawn_replica(env);
        }
    }

    /// Takes a replica off the ring. Its SUPIs remap to the survivors;
    /// the enclave is kept for final counter reads.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a ready replica, or when retiring it would
    /// empty the ring.
    pub fn retire(&mut self, id: ReplicaId) {
        assert!(self.ring.len() > 1, "cannot retire the last ready replica");
        let replica = self.replica_mut(id);
        assert_eq!(
            replica.state,
            ReplicaState::Ready,
            "retire needs a ready replica"
        );
        replica.state = ReplicaState::Retired;
        self.ring.remove(id);
    }

    /// **Fault interface**: kills a ready replica — the host dies, taking
    /// the enclave instance with it. The pool detects the death, pulls the
    /// replica off the ring (its endpoint fails fast from here on), and
    /// restores capacity by promoting a warm standby (or cold-spawning
    /// when the bench is empty). Returns what happened and how long the
    /// failover took.
    ///
    /// The caller owns AV-cache invalidation: authentication vectors that
    /// were pre-generated through the dead replica must be purged (see
    /// [`crate::avcache::AvCache::purge_where`]) — compute the affected
    /// SUPIs via [`EnclavePool::route`] *before* calling this.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a ready replica.
    pub fn kill_replica(&mut self, env: &mut Env, id: ReplicaId) -> FailoverReport {
        let at = env.clock.now();
        {
            let replica = self.replica_mut(id);
            assert_eq!(
                replica.state,
                ReplicaState::Ready,
                "kill needs a ready replica"
            );
            replica.state = ReplicaState::Dead;
            replica.dead.set(true);
            replica.module.borrow_mut().inject_crash(env);
        }
        self.ring.remove(id);
        // A dead replica's health history is moot; the replacement
        // starts with a clean circuit.
        if let Some(tracker) = self.health.as_mut() {
            tracker.forget(id);
        }
        let (replacement, standby_promoted) = self.scale_up(env);
        FailoverReport {
            dead: id,
            replacement,
            standby_promoted,
            at,
            failover: env.clock.now() - at,
        }
    }

    /// [`EnclavePool::kill_replica`] plus engine bookkeeping: the
    /// replacement replica is registered as a live endpoint so routed
    /// arrivals can reach it mid-run. The dead endpoint stays registered
    /// and fails fast, which is what its still-queued requests deserve.
    pub fn fail_over_on_engine(
        &mut self,
        env: &mut Env,
        engine: &mut Engine,
        id: ReplicaId,
    ) -> FailoverReport {
        let report = self.kill_replica(env, id);
        self.register_replica_on(engine, report.replacement);
        report
    }

    /// Routes a SUPI to its owning ready replica.
    #[must_use]
    pub fn route(&self, supi: &str) -> ReplicaId {
        self.ring.route(supi)
    }

    /// Turns on health-gated routing: completions reported through
    /// [`EnclavePool::note_outcome`] feed a per-replica failure EWMA,
    /// and replicas that trip it are ejected from the ring until a
    /// half-open probe succeeds.
    pub fn enable_health(&mut self, policy: HealthPolicy) {
        self.health = Some(HealthTracker::new(policy));
    }

    /// The health tracker, when enabled.
    #[must_use]
    pub fn health(&self) -> Option<&HealthTracker> {
        self.health.as_ref()
    }

    /// **Health interface**: report one observed completion against the
    /// replica that served (or failed) it. When the outcome trips the
    /// replica's circuit, the replica is ejected from the ring — its
    /// SUPIs remap to the survivors — unless it is the last ring member
    /// (a degraded replica still beats an empty ring; its circuit is
    /// force-closed instead). No-op without [`EnclavePool::enable_health`].
    pub fn note_outcome(
        &mut self,
        id: ReplicaId,
        ok: bool,
        latency: SimDuration,
        now: SimTime,
    ) -> Option<HealthEvent> {
        // Only ready ring members generate health signal: the dead fail
        // fast by design and the ejected are already routed around.
        let ready = self
            .replicas
            .iter()
            .any(|r| r.id == id && r.state == ReplicaState::Ready);
        let tracker = self.health.as_mut()?;
        if !ready || tracker.is_ejected(id) {
            return None;
        }
        match tracker.note(id, ok, latency, now) {
            Some(HealthEvent::Ejected(id)) => {
                if self.ring.len() > 1 {
                    self.ring.remove(id);
                    obs::count(
                        "pool",
                        &replica_addr(self.kind, id),
                        labels::REPLICA_EJECTED,
                        1,
                    );
                    Some(HealthEvent::Ejected(id))
                } else {
                    self.health
                        .as_mut()
                        .expect("tracker present")
                        .force_close(id);
                    None
                }
            }
            other => other,
        }
    }

    /// Ejected replicas whose hold-off has expired: each returned id has
    /// claimed its half-open probe slot, and the caller must send one
    /// probe request to it and report the outcome through
    /// [`EnclavePool::note_probe`]. Empty without health gating.
    pub fn due_probes(&mut self, now: SimTime) -> Vec<ReplicaId> {
        let Some(tracker) = self.health.as_mut() else {
            return Vec::new();
        };
        tracker
            .ejected()
            .into_iter()
            .filter(|&id| tracker.due_probe(id, now))
            .collect()
    }

    /// **Health interface**: report a half-open probe's outcome. A
    /// success reinstates the replica onto the ring; a failure keeps it
    /// ejected for another hold-off.
    pub fn note_probe(&mut self, id: ReplicaId, ok: bool, now: SimTime) -> Option<HealthEvent> {
        let ev = self.health.as_mut()?.note_probe(id, ok, now);
        if let Some(HealthEvent::Reinstated(id)) = ev {
            self.ring.add(id);
            obs::count(
                "pool",
                &replica_addr(self.kind, id),
                labels::REPLICA_REINSTATED,
                1,
            );
        }
        ev
    }

    /// Offers a request arriving at `now` to the replica owning `supi`.
    /// Returns the owning replica and the admission decision; on
    /// [`Admission::Shed`] the enclave is never touched.
    pub fn admit(&mut self, supi: &str, now: SimTime) -> (ReplicaId, Admission) {
        let id = self.route(supi);
        let decision = self.replica_mut(id).queue.offer(now);
        (id, decision)
    }

    /// Serves an admitted request on `id`, returning the response, the
    /// module-side metrics, and the service occupancy (wall time the
    /// replica spent on it, connection choreography included).
    pub fn serve_on(
        &mut self,
        env: &mut Env,
        id: ReplicaId,
        request: HttpRequest,
    ) -> (HttpResponse, ServeMetrics, SimDuration) {
        let replica = self.replica_mut(id);
        assert_eq!(
            replica.state,
            ReplicaState::Ready,
            "serving needs a ready replica"
        );
        let t0 = env.clock.now();
        let (response, metrics) = replica.module.borrow_mut().serve(env, request);
        replica.served.set(replica.served.get() + 1);
        (response, metrics, env.clock.now() - t0)
    }

    /// Records the virtual-time completion of the last admitted request
    /// on `id`.
    pub fn complete(&mut self, id: ReplicaId, finish: SimTime) {
        self.replica_mut(id).queue.complete(finish);
    }

    /// Provisions a subscriber key into every replica (current and, via
    /// the replay list, future ones).
    pub fn provision_subscriber(&mut self, env: &mut Env, supi: &str, k: [u8; 16]) {
        self.provisioned.push((supi.to_owned(), k));
        for replica in &mut self.replicas {
            replica
                .module
                .borrow_mut()
                .provision_subscriber_key(env, supi, k);
        }
    }

    /// Re-snapshots every replica's counter baseline. Experiments call
    /// this after bulk subscriber provisioning so counter deltas measure
    /// request serving alone.
    pub fn rebaseline(&mut self) {
        for replica in &mut self.replicas {
            replica.baseline = replica.module.borrow().sgx_stats();
        }
    }

    /// Ready replica ids, ascending.
    #[must_use]
    pub fn ready_ids(&self) -> Vec<ReplicaId> {
        self.ring.replica_ids()
    }

    /// Number of warm standbys on the bench.
    #[must_use]
    pub fn standby_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.state == ReplicaState::Standby)
            .count()
    }

    /// All replicas (any state).
    #[must_use]
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The replica with the given id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[must_use]
    pub fn replica(&self, id: ReplicaId) -> &Replica {
        self.replicas
            .iter()
            .find(|r| r.id == id)
            .expect("unknown replica id")
    }

    fn replica_mut(&mut self, id: ReplicaId) -> &mut Replica {
        self.replicas
            .iter_mut()
            .find(|r| r.id == id)
            .expect("unknown replica id")
    }

    /// The module kind this pool serves.
    #[must_use]
    pub fn kind(&self) -> PakaKind {
        self.kind
    }

    /// The pool configuration.
    #[must_use]
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }
}

/// Body of the eUDM preheat probe: a syntactically valid AV request for a
/// reserved SUPI no operator provisions.
fn warmup_udm_body() -> Vec<u8> {
    shield5g_nf::backend::UdmAkaRequest {
        supi: "imsi-00101999999999".into(),
        opc: [0; 16].into(),
        rand: [0; 16],
        sqn: [0; 6],
        amf_field: [0x80, 0],
        snn: shield5g_crypto::keys::ServingNetworkName::new("001", "01"),
    }
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield5g_ran::workload::test_supi;

    fn pool(env: &mut Env, replicas: u32, standby: u32) -> EnclavePool {
        EnclavePool::deploy(
            env,
            PakaKind::EUdm,
            PoolConfig {
                replicas,
                warm_standby: standby,
                ..PoolConfig::default()
            },
        )
    }

    fn env() -> Env {
        let mut env = Env::new(7101);
        env.log.disable();
        env
    }

    fn av_request(supi: &str) -> HttpRequest {
        HttpRequest::post(
            "/eudm/generate-av",
            shield5g_nf::backend::UdmAkaRequest {
                supi: supi.into(),
                opc: [0xcd; 16].into(),
                rand: [0x23; 16],
                sqn: [0, 0, 0, 0, 0, 1],
                amf_field: [0x80, 0],
                snn: shield5g_crypto::keys::ServingNetworkName::new("001", "01"),
            }
            .encode(),
        )
    }

    #[test]
    fn replicas_are_distinct_enclaves_with_own_counters() {
        let mut env = env();
        let mut p = pool(&mut env, 2, 0);
        for i in 0..4 {
            p.provision_subscriber(&mut env, &test_supi(i), [0x46; 16]);
        }
        // Find SUPIs owned by each replica and serve them there.
        let (mut on0, mut on1) = (0u32, 0u32);
        for i in 0..40 {
            let supi = test_supi(i % 4);
            let id = p.route(&supi);
            let (resp, _, _) = p.serve_on(&mut env, id, av_request(&supi));
            assert!(resp.is_success());
            if id == 0 {
                on0 += 1;
            } else {
                on1 += 1;
            }
        }
        assert!(on0 > 0 && on1 > 0, "4 SUPIs should span 2 replicas");
        let d0 = p.replica(0).counters_delta();
        let d1 = p.replica(1).counters_delta();
        // Each replica's counters reflect only its own share (~95/request).
        assert!(d0.eenter >= u64::from(on0) * 85 && d0.eenter <= u64::from(on0) * 110);
        assert!(d1.eenter >= u64::from(on1) * 85 && d1.eenter <= u64::from(on1) * 110);
        assert_eq!(p.replica(0).served(), u64::from(on0));
    }

    #[test]
    fn standby_promotion_is_off_the_cold_path() {
        let mut env = env();
        let mut p = pool(&mut env, 1, 1);
        assert_eq!(p.standby_count(), 1);
        // Promotion must not pay the ~60 s enclave load (Fig. 7).
        let t0 = env.clock.now();
        let (id, was_warm) = p.scale_up(&mut env);
        let promote_cost = env.clock.now() - t0;
        assert!(was_warm);
        assert_eq!(p.ready_ids(), vec![0, id]);
        assert!(
            promote_cost < SimDuration::from_millis(1),
            "warm promotion cost {promote_cost}"
        );
        // With the bench empty, scale-up falls back to a cold spawn.
        let t1 = env.clock.now();
        let (_, was_warm) = p.scale_up(&mut env);
        assert!(!was_warm);
        assert!(env.clock.now() - t1 > SimDuration::from_secs(50));
        // Refill brings the bench back (cold, but off the request path).
        p.refill_standby(&mut env);
        assert_eq!(p.standby_count(), 1);
    }

    #[test]
    fn promoted_standby_serves_warm() {
        let mut env = env();
        let mut p = pool(&mut env, 1, 1);
        p.provision_subscriber(&mut env, &test_supi(0), [0x46; 16]);
        let (id, _) = p.scale_up(&mut env);
        // The standby absorbed its cold first request during preheat, so
        // its first production request is stable-speed.
        let (resp, _, occupancy) = p.serve_on(&mut env, id, av_request(&test_supi(0)));
        assert!(resp.is_success());
        assert!(
            occupancy < SimDuration::from_millis(10),
            "promoted standby served cold: {occupancy}"
        );
    }

    #[test]
    fn retire_remaps_only_the_retired_replicas_supis() {
        let mut env = env();
        let mut p = pool(&mut env, 3, 0);
        let owners: Vec<(String, ReplicaId)> = (0..60)
            .map(|i| {
                let s = test_supi(i);
                let id = p.route(&s);
                (s, id)
            })
            .collect();
        p.retire(1);
        for (supi, owner) in owners {
            if owner == 1 {
                assert_ne!(p.route(&supi), 1);
            } else {
                assert_eq!(p.route(&supi), owner);
            }
        }
        assert_eq!(p.replica(1).state, ReplicaState::Retired);
    }

    #[test]
    fn shed_requests_never_touch_the_enclave() {
        let mut env = env();
        let mut p = EnclavePool::deploy(
            &mut env,
            PakaKind::EUdm,
            PoolConfig {
                replicas: 1,
                warm_standby: 0,
                queue: QueueConfig {
                    capacity: 1,
                    deadline: SimDuration::from_secs(10),
                },
                ..PoolConfig::default()
            },
        );
        p.provision_subscriber(&mut env, &test_supi(0), [0x46; 16]);
        let supi = test_supi(0);
        let now = env.clock.now();
        let before = p.replica(0).counters_delta();
        let (id, a1) = p.admit(&supi, now);
        let Admission::Admitted { start, .. } = a1 else {
            panic!("first arrival shed");
        };
        p.complete(id, start + SimDuration::from_millis(5));
        let (_, a2) = p.admit(&supi, now);
        assert!(matches!(a2, Admission::Shed(_)));
        // No serve happened: counters unchanged by admission control.
        assert_eq!(p.replica(0).counters_delta().eenter, before.eenter);
    }

    #[test]
    fn killed_replica_fails_over_to_warm_standby() {
        let mut env = env();
        let mut p = pool(&mut env, 2, 1);
        for i in 0..8 {
            p.provision_subscriber(&mut env, &test_supi(i), [0x46; 16]);
        }
        let owners: Vec<(String, ReplicaId)> = (0..8)
            .map(|i| {
                let s = test_supi(i);
                let id = p.route(&s);
                (s, id)
            })
            .collect();

        let report = p.kill_replica(&mut env, 0);
        assert_eq!(report.dead, 0);
        assert!(report.standby_promoted, "warm standby must take over");
        assert!(
            report.failover < SimDuration::from_millis(1),
            "warm failover cost {}",
            report.failover
        );
        assert_eq!(p.replica(0).state, ReplicaState::Dead);
        assert!(p.replica(0).module().borrow().is_crashed());
        assert!(!p.ready_ids().contains(&0));
        assert!(p.ready_ids().contains(&report.replacement));
        // Nothing routes to the dead replica any more; survivors keep
        // their SUPIs except what the new ring member legitimately takes.
        for (supi, owner) in owners {
            let now_at = p.route(&supi);
            assert_ne!(now_at, 0, "{supi} still routed to the dead replica");
            if owner != 0 && now_at != report.replacement {
                assert_eq!(now_at, owner, "{supi} moved between survivors");
            }
        }
        // The survivors (old and promoted) still serve.
        for i in 0..8 {
            let supi = test_supi(i);
            let id = p.route(&supi);
            let (resp, _, _) = p.serve_on(&mut env, id, av_request(&supi));
            assert!(resp.is_success());
        }
    }

    #[test]
    fn killed_replica_cold_spawns_when_bench_is_empty() {
        let mut env = env();
        let mut p = pool(&mut env, 2, 0);
        let report = p.kill_replica(&mut env, 1);
        assert!(!report.standby_promoted);
        assert!(
            report.failover > SimDuration::from_secs(50),
            "cold failover must pay the enclave load: {}",
            report.failover
        );
        assert_eq!(p.ready_ids().len(), 2);
    }

    #[test]
    fn dead_endpoint_fails_fast_on_engine() {
        let mut env = env();
        let mut p = pool(&mut env, 1, 1);
        p.provision_subscriber(&mut env, &test_supi(0), [0x46; 16]);
        let mut engine = shield5g_sim::engine::Engine::new();
        p.register_on(&mut engine);
        let dead_addr = replica_addr(p.kind(), 0);

        let report = p.fail_over_on_engine(&mut env, &mut engine, 0);
        let new_addr = replica_addr(p.kind(), report.replacement);
        assert!(engine.knows(&new_addr), "replacement endpoint registered");

        // A request still aimed at the dead endpoint fails fast with the
        // fault marker, without touching the lost enclave.
        let now = env.clock.now();
        let t_dead = engine.schedule_request(now, &dead_addr, av_request(&test_supi(0)));
        let t_live = engine.schedule_request(now, &new_addr, av_request(&test_supi(0)));
        let done = engine.run_until_idle(&mut env);
        let by_tag: std::collections::BTreeMap<u64, &shield5g_sim::engine::Completion> =
            done.iter().map(|c| (c.tag, c)).collect();
        let dead_resp = &by_tag[&t_dead].response;
        assert_eq!(dead_resp.status, 503);
        assert_eq!(dead_resp.header(FAULT_HEADER), Some("replica-dead"));
        assert!(by_tag[&t_live].response.is_success());
        assert_eq!(p.replica(0).served(), 0, "dead replica served nothing");
    }

    #[test]
    #[should_panic(expected = "last ready replica")]
    fn cannot_retire_last_replica() {
        let mut env = env();
        let mut p = pool(&mut env, 1, 0);
        p.retire(0);
    }

    /// Feeds failures to `id` until its circuit trips, panicking if the
    /// default policy somehow refuses.
    fn eject(p: &mut EnclavePool, id: ReplicaId, now: SimTime) -> bool {
        for _ in 0..8 {
            match p.note_outcome(id, false, SimDuration::from_micros(900), now) {
                Some(HealthEvent::Ejected(e)) => {
                    assert_eq!(e, id);
                    return true;
                }
                Some(other) => panic!("unexpected health event {other:?}"),
                None => {}
            }
        }
        false
    }

    #[test]
    fn unhealthy_replica_is_ejected_probed_and_reinstated() {
        let mut env = env();
        let mut p = pool(&mut env, 2, 0);
        p.enable_health(HealthPolicy::default());
        let t0 = env.clock.now();

        assert!(eject(&mut p, 0, t0), "sustained failures must eject");
        assert_eq!(p.ready_ids(), vec![1], "ejected replica off the ring");
        // Every SUPI now lands on the survivor.
        for i in 0..16 {
            assert_eq!(p.route(&test_supi(i)), 1);
        }
        // Outcomes against an ejected replica are inert.
        assert!(p
            .note_outcome(0, false, SimDuration::from_micros(900), t0)
            .is_none());

        // Inside the hold-off: no probe yet.
        assert!(p.due_probes(t0).is_empty());
        let hold_off = p.health().unwrap().policy().breaker.open_for;
        let later = t0 + hold_off;
        assert_eq!(p.due_probes(later), vec![0]);
        // The slot is claimed until the probe resolves.
        assert!(p.due_probes(later).is_empty());

        assert_eq!(
            p.note_probe(0, true, later),
            Some(HealthEvent::Reinstated(0))
        );
        assert_eq!(p.ready_ids(), vec![0, 1], "probe success rejoins the ring");
    }

    #[test]
    fn failed_probe_keeps_replica_off_the_ring() {
        let mut env = env();
        let mut p = pool(&mut env, 2, 0);
        p.enable_health(HealthPolicy::default());
        let t0 = env.clock.now();
        assert!(eject(&mut p, 1, t0));

        let hold_off = p.health().unwrap().policy().breaker.open_for;
        let later = t0 + hold_off;
        assert_eq!(p.due_probes(later), vec![1]);
        assert_eq!(
            p.note_probe(1, false, later),
            Some(HealthEvent::Reopened(1))
        );
        assert_eq!(p.ready_ids(), vec![0], "failed probe stays routed around");
        // A fresh hold-off starts from the failed probe.
        assert!(p.due_probes(later).is_empty());
        assert_eq!(p.due_probes(later + hold_off), vec![1]);
    }

    #[test]
    fn last_ring_member_is_never_ejected() {
        let mut env = env();
        let mut p = pool(&mut env, 1, 0);
        p.enable_health(HealthPolicy::default());
        let now = env.clock.now();
        // Hammer the only replica: the tracker must force-close instead
        // of leaving the ring empty.
        for _ in 0..32 {
            assert!(p
                .note_outcome(0, false, SimDuration::from_micros(900), now)
                .is_none());
        }
        assert_eq!(p.ready_ids(), vec![0]);
        assert!(!p.health().unwrap().is_ejected(0));
    }

    #[test]
    fn killed_replica_health_history_is_forgotten() {
        let mut env = env();
        let mut p = pool(&mut env, 2, 1);
        p.enable_health(HealthPolicy::default());
        let now = env.clock.now();
        assert!(eject(&mut p, 0, now));
        let report = p.kill_replica(&mut env, 0);
        assert!(report.standby_promoted);
        // The dead replica's circuit history died with it: no probes due.
        let hold_off = p.health().unwrap().policy().breaker.open_for;
        assert!(p.due_probes(now + hold_off).is_empty());
        assert!(!p.health().unwrap().is_ejected(0));
    }
}
