//! Per-pool observability: the figures a scaling experiment reports.
//!
//! Everything here is computed from ground truth — admission counters in
//! the queues, served counts on the replicas, and real SGX transition
//! counter deltas read from each replica's own enclave — then summarised
//! with [`shield5g_core::stats::Summary`] like every other experiment in
//! the workspace.

use crate::avcache::CacheStats;
use crate::pool::EnclavePool;
use crate::router::ReplicaId;
use shield5g_core::stats::Summary;
use shield5g_sim::time::{SimDuration, SimTime};

/// Load and enclave-cost breakdown for one replica.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaLoadStats {
    /// The replica.
    pub replica: ReplicaId,
    /// Requests it served.
    pub served: u64,
    /// Requests shed at its queue (full + deadline).
    pub shed: u64,
    /// Peak in-flight depth of its queue.
    pub depth_peak: usize,
    /// EENTER transitions since preheat (serving cost only).
    pub eenter_delta: u64,
    /// EEXIT transitions since preheat.
    pub eexit_delta: u64,
    /// Asynchronous exits since preheat.
    pub aex_delta: u64,
}

/// Results of one pool experiment run.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Ready replicas during the run.
    pub replicas: u32,
    /// Offered load (arrivals per second over the trace span).
    pub offered_per_sec: f64,
    /// Total arrivals offered.
    pub arrivals: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Completed authentications per second of trace span.
    pub throughput_per_sec: f64,
    /// End-to-end response time (arrival → completion) of served
    /// requests.
    pub response: Summary,
    /// Queueing delay component of the response time.
    pub queued: Summary,
    /// AV-cache statistics when pre-generation was enabled.
    pub cache: Option<CacheStats>,
    /// Per-replica breakdown.
    pub per_replica: Vec<ReplicaLoadStats>,
}

impl PoolReport {
    /// Fraction of offered arrivals shed.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrivals as f64
        }
    }

    /// Mean EENTER transitions per *served* request across the pool —
    /// the figure the AV cache drives down.
    #[must_use]
    pub fn eenter_per_served(&self) -> f64 {
        let eenter: u64 = self.per_replica.iter().map(|r| r.eenter_delta).sum();
        if self.served == 0 {
            0.0
        } else {
            eenter as f64 / self.served as f64
        }
    }

    /// Mean AEX per served request across the pool.
    #[must_use]
    pub fn aex_per_served(&self) -> f64 {
        let aex: u64 = self.per_replica.iter().map(|r| r.aex_delta).sum();
        if self.served == 0 {
            0.0
        } else {
            aex as f64 / self.served as f64
        }
    }

    /// Mirrors this report into the ambient observability registry under
    /// `("pool", label, …)` — pool occupancy, admission-queue outcomes and
    /// shed counts per configuration point. A no-op when observability is
    /// off.
    pub fn record_obs(&self, label: &str) {
        use shield5g_obs::{hub as obs, labels};
        if !obs::is_active() {
            return;
        }
        obs::count("pool", label, labels::ARRIVALS, self.arrivals);
        obs::count("pool", label, labels::SERVED, self.served);
        obs::count("pool", label, labels::SHED, self.shed);
        obs::gauge("pool", label, labels::REPLICAS, f64::from(self.replicas));
        obs::gauge("pool", label, labels::OFFERED_PER_SEC, self.offered_per_sec);
        obs::gauge(
            "pool",
            label,
            labels::THROUGHPUT_PER_SEC,
            self.throughput_per_sec,
        );
        obs::gauge(
            "pool",
            label,
            labels::EENTER_PER_SERVED,
            self.eenter_per_served(),
        );
        obs::gauge(
            "pool",
            label,
            labels::RESPONSE_P50_NS,
            self.response.median.as_nanos() as f64,
        );
        obs::gauge(
            "pool",
            label,
            labels::RESPONSE_P95_NS,
            self.response.p95.as_nanos() as f64,
        );
        obs::gauge(
            "pool",
            label,
            labels::QUEUED_P50_NS,
            self.queued.median.as_nanos() as f64,
        );
        for r in &self.per_replica {
            let ep = format!("{label}/r{}", r.replica);
            obs::count("pool", &ep, labels::SERVED, r.served);
            obs::count("pool", &ep, labels::SHED, r.shed);
            obs::gauge_max("pool", &ep, labels::DEPTH_PEAK, r.depth_peak as f64);
        }
    }
}

impl std::fmt::Display for PoolReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} offered {:.0}/s -> {:.0}/s served ({} shed, {:.1}%), \
             response p50 {} p95 {} p99 {}, {:.1} EENTER/req",
            self.replicas,
            self.offered_per_sec,
            self.throughput_per_sec,
            self.shed,
            100.0 * self.shed_fraction(),
            self.response.median,
            self.response.p95,
            self.response.p99,
            self.eenter_per_served(),
        )
    }
}

/// Collects response samples during a run and finalises a [`PoolReport`]
/// from them plus the pool's own counters.
#[derive(Debug, Default)]
pub struct RunRecorder {
    response_samples: Vec<SimDuration>,
    queued_samples: Vec<SimDuration>,
    first_arrival: Option<SimTime>,
    last_finish: Option<SimTime>,
    arrivals: u64,
    shed: u64,
}

impl RunRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an arrival (served or not).
    pub fn arrival(&mut self, at: SimTime) {
        self.arrivals += 1;
        if self.first_arrival.is_none() {
            self.first_arrival = Some(at);
        }
    }

    /// Records a served request's timing.
    pub fn served(&mut self, arrival: SimTime, queued: SimDuration, finish: SimTime) {
        self.response_samples.push(finish - arrival);
        self.queued_samples.push(queued);
        self.last_finish = Some(match self.last_finish {
            Some(t) if t > finish => t,
            _ => finish,
        });
    }

    /// Records a shed request.
    pub fn shed(&mut self) {
        self.shed += 1;
    }

    /// Requests served so far.
    #[must_use]
    pub fn served_count(&self) -> u64 {
        self.response_samples.len() as u64
    }

    /// Finalises the report against the pool's per-replica state. A run
    /// that served nothing (e.g. 100% shed under fault injection) yields
    /// empty summaries and zero throughput rather than panicking.
    #[must_use]
    pub fn finish(self, pool: &EnclavePool, cache: Option<CacheStats>) -> PoolReport {
        let span = match (self.first_arrival, self.last_finish) {
            (Some(a), Some(f)) if f > a => f - a,
            _ => SimDuration::from_nanos(1),
        };
        let served = self.response_samples.len() as u64;
        let per_replica: Vec<ReplicaLoadStats> = pool
            .replicas()
            .iter()
            .map(|r| {
                let delta = r.counters_delta();
                ReplicaLoadStats {
                    replica: r.id,
                    served: r.served(),
                    shed: r.shed_total(),
                    depth_peak: r.depth_peak(),
                    eenter_delta: delta.eenter,
                    eexit_delta: delta.eexit,
                    aex_delta: delta.aex,
                }
            })
            .collect();
        PoolReport {
            replicas: pool.ready_ids().len() as u32,
            offered_per_sec: self.arrivals as f64 / span.as_secs_f64(),
            arrivals: self.arrivals,
            served,
            shed: self.shed,
            throughput_per_sec: served as f64 / span.as_secs_f64(),
            response: Summary::of(&self.response_samples),
            queued: Summary::of(&self.queued_samples),
            cache,
            per_replica,
        }
    }
}

/// Recovery figures of one fault-injection run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Faults injected over the run (replica kills, enclave crashes,
    /// dropped/delayed/errored SBI responses…).
    pub faults: u64,
    /// Requests that completed with a failure response.
    pub failed: u64,
    /// Mean time to recovery: fault instant → next successful completion
    /// anywhere in the system.
    pub mttr: SimDuration,
    /// Worst observed time to recovery.
    pub mttr_max: SimDuration,
    /// Successful completions per second over the faulted span — the
    /// goodput the system sustains *while* being failed.
    pub goodput_per_sec: f64,
    /// `(first attempts + retransmissions) / first attempts`; 1.0 means
    /// no retry traffic.
    pub retry_amplification: f64,
}

impl RecoveryStats {
    /// Mirrors the recovery figures into the ambient observability
    /// registry under `("faults", label, …)` — fault counts, MTTR and
    /// retry amplification per sweep point. A no-op when observability is
    /// off.
    pub fn record_obs(&self, label: &str) {
        use shield5g_obs::{hub as obs, labels};
        if !obs::is_active() {
            return;
        }
        obs::count("faults", label, labels::INJECTED, self.faults);
        obs::count("faults", label, labels::FAILED, self.failed);
        obs::gauge(
            "faults",
            label,
            labels::MTTR_NS,
            self.mttr.as_nanos() as f64,
        );
        obs::gauge(
            "faults",
            label,
            labels::MTTR_MAX_NS,
            self.mttr_max.as_nanos() as f64,
        );
        obs::gauge(
            "faults",
            label,
            labels::GOODPUT_PER_SEC,
            self.goodput_per_sec,
        );
        obs::gauge(
            "faults",
            label,
            labels::RETRY_AMPLIFICATION,
            self.retry_amplification,
        );
    }
}

impl std::fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} faults, {} failed, MTTR {} (max {}), goodput {:.0}/s, {:.2}x retry amplification",
            self.faults,
            self.failed,
            self.mttr,
            self.mttr_max,
            self.goodput_per_sec,
            self.retry_amplification,
        )
    }
}

/// Accumulates fault instants and completions during a faulted run and
/// computes the [`RecoveryStats`].
///
/// MTTR here is service-level: a fault is "recovered" at the first
/// *successful* completion observed at or after its injection instant,
/// because that is when the system demonstrably serves subscribers again.
#[derive(Debug, Default)]
pub struct RecoveryTracker {
    pending: Vec<SimTime>,
    recovery_samples: Vec<SimDuration>,
    faults: u64,
    failed: u64,
    successes: u64,
    first_event: Option<SimTime>,
    last_event: Option<SimTime>,
}

impl RecoveryTracker {
    /// An empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fault injected at `at`.
    pub fn fault(&mut self, at: SimTime) {
        self.faults += 1;
        self.pending.push(at);
        self.touch(at);
    }

    /// Records a failed completion.
    pub fn failure(&mut self, at: SimTime) {
        self.failed += 1;
        self.touch(at);
    }

    /// Records a successful completion at `at`, resolving every fault
    /// injected at or before that instant.
    pub fn success(&mut self, at: SimTime) {
        self.successes += 1;
        self.touch(at);
        self.pending.retain(|&f| {
            if f <= at {
                self.recovery_samples.push(at - f);
                false
            } else {
                true
            }
        });
    }

    /// Faults injected so far.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Finalises the stats. `retry` is the `(first attempts,
    /// retransmissions)` pair from the supervision timers. Faults never
    /// followed by a success count into `mttr_max` as unrecovered-at-end
    /// (measured to the last observed event).
    #[must_use]
    pub fn finish(mut self, retry: (u64, u64)) -> RecoveryStats {
        let end = self.last_event.unwrap_or_default();
        for f in self.pending.drain(..) {
            self.recovery_samples.push(end.max(f) - f);
        }
        let (mttr, mttr_max) = if self.recovery_samples.is_empty() {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            let total: u64 = self.recovery_samples.iter().map(|d| d.as_nanos()).sum();
            (
                SimDuration::from_nanos(total / self.recovery_samples.len() as u64),
                *self.recovery_samples.iter().max().expect("non-empty"),
            )
        };
        let span = match (self.first_event, self.last_event) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => SimDuration::from_nanos(1),
        };
        let (calls, retries) = retry;
        RecoveryStats {
            faults: self.faults,
            failed: self.failed,
            mttr,
            mttr_max,
            goodput_per_sec: self.successes as f64 / span.as_secs_f64(),
            retry_amplification: if calls == 0 {
                1.0
            } else {
                (calls + retries) as f64 / calls as f64
            },
        }
    }

    fn touch(&mut self, at: SimTime) {
        if self.first_event.is_none() {
            self.first_event = Some(at);
        }
        self.last_event = Some(match self.last_event {
            Some(t) if t > at => t,
            _ => at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_tracks_span_and_counts() {
        let mut r = RunRecorder::new();
        let t = |ms: u64| SimTime::from_nanos(ms * 1_000_000);
        r.arrival(t(0));
        r.served(t(0), SimDuration::ZERO, t(10));
        r.arrival(t(5));
        r.served(t(5), SimDuration::from_millis(2), t(20));
        r.arrival(t(6));
        r.shed();
        assert_eq!(r.served_count(), 2);
        assert_eq!(r.arrivals, 3);
        assert_eq!(r.shed, 1);
        assert_eq!(r.first_arrival, Some(t(0)));
        assert_eq!(r.last_finish, Some(t(20)));
    }

    #[test]
    fn shed_fraction_and_eenter_math() {
        let report = PoolReport {
            replicas: 2,
            offered_per_sec: 100.0,
            arrivals: 10,
            served: 8,
            shed: 2,
            throughput_per_sec: 80.0,
            response: Summary::of(&[SimDuration::from_millis(1)]),
            queued: Summary::of(&[SimDuration::ZERO]),
            cache: None,
            per_replica: vec![
                ReplicaLoadStats {
                    replica: 0,
                    served: 4,
                    shed: 1,
                    depth_peak: 2,
                    eenter_delta: 380,
                    eexit_delta: 380,
                    aex_delta: 3,
                },
                ReplicaLoadStats {
                    replica: 1,
                    served: 4,
                    shed: 1,
                    depth_peak: 1,
                    eenter_delta: 388,
                    eexit_delta: 388,
                    aex_delta: 1,
                },
            ],
        };
        assert!((report.shed_fraction() - 0.2).abs() < 1e-9);
        assert!((report.eenter_per_served() - 96.0).abs() < 1e-9);
        assert!((report.aex_per_served() - 0.5).abs() < 1e-9);
        assert!(report.to_string().contains("EENTER/req"));
    }

    #[test]
    fn recovery_tracker_computes_mttr_and_amplification() {
        let t = |ms: u64| SimTime::from_nanos(ms * 1_000_000);
        let mut r = RecoveryTracker::new();
        r.success(t(0));
        r.fault(t(10));
        r.failure(t(12));
        r.success(t(30)); // resolves the t=10 fault: 20 ms
        r.fault(t(40));
        r.fault(t(50));
        r.success(t(100)); // resolves both: 60 ms and 50 ms
        assert_eq!(r.faults(), 3);
        let stats = r.finish((100, 25));
        assert_eq!(stats.faults, 3);
        assert_eq!(stats.failed, 1);
        // Mean of 20/60/50 ms.
        assert_eq!(stats.mttr, SimDuration::from_nanos(43_333_333));
        assert_eq!(stats.mttr_max, SimDuration::from_millis(60));
        assert!((stats.retry_amplification - 1.25).abs() < 1e-9);
        // 3 successes over the 100 ms event span.
        assert!((stats.goodput_per_sec - 30.0).abs() < 1e-6);
    }

    #[test]
    fn recovery_tracker_handles_unrecovered_and_empty() {
        let t = |ms: u64| SimTime::from_nanos(ms * 1_000_000);
        let mut r = RecoveryTracker::new();
        r.fault(t(10));
        r.failure(t(90)); // run ends without a success
        let stats = r.finish((0, 0));
        assert_eq!(stats.faults, 1);
        // Unrecovered fault measured to the end of the run.
        assert_eq!(stats.mttr_max, SimDuration::from_millis(80));
        assert!((stats.retry_amplification - 1.0).abs() < 1e-9);
        assert!((stats.goodput_per_sec).abs() < 1e-9);

        let empty = RecoveryTracker::new().finish((0, 0));
        assert_eq!(empty.faults, 0);
        assert_eq!(empty.mttr, SimDuration::ZERO);
    }
}
