//! Batched AV pre-generation cache at the eUDM frontend.
//!
//! Table III's per-registration cost is ~91 enclave transitions — almost
//! all of them the HTTPS connection choreography, not the AKA crypto
//! (§V-B5). Pre-generating a *batch* of AVs per enclave round trip
//! amortises that choreography: one 91-transition call yields B vectors,
//! and the next B−1 authentications for the SUPI are served from VNF
//! memory without entering the enclave at all.
//!
//! Correctness hinges on SQN discipline (TS 33.102): cached AVs embed
//! consecutive SQNs, so they must be consumed in order and discarded
//! wholesale whenever the USIM reports a resynchronisation — a stale
//! cached SQN would push the UE straight back into AUTS resync loops.

use shield5g_crypto::keys::HeAv;
use shield5g_nf::backend::sqn_add;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Cache parameters.
#[derive(Clone, Copy, Debug)]
pub struct AvCacheConfig {
    /// AVs generated per enclave round trip.
    pub batch_size: u32,
    /// Maximum cached AVs per SUPI (oldest dropped beyond this).
    pub capacity_per_supi: usize,
}

impl Default for AvCacheConfig {
    fn default() -> Self {
        AvCacheConfig {
            batch_size: 8,
            capacity_per_supi: 16,
        }
    }
}

/// Running cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from cache (no enclave transition).
    pub hits: u64,
    /// Requests that triggered a batch generation.
    pub misses: u64,
    /// AVs pre-generated in total.
    pub pregenerated: u64,
    /// AVs dropped by SQN invalidation.
    pub invalidated: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct SupiEntry {
    /// Pre-generated AVs in SQN order (front = next to hand out).
    avs: VecDeque<HeAv>,
    /// SQN the *next* generated batch must start at.
    next_sqn: [u8; 6],
}

/// Per-SUPI FIFO cache of pre-generated HE AVs.
#[derive(Debug, Default)]
pub struct AvCache {
    cfg: AvCacheConfig,
    entries: BTreeMap<String, SupiEntry>,
    stats: CacheStats,
}

impl AvCache {
    /// An empty cache.
    #[must_use]
    pub fn new(cfg: AvCacheConfig) -> Self {
        AvCache {
            cfg,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Takes the next cached AV for `supi`, oldest SQN first. `None`
    /// counts as a miss; the caller should generate a batch and
    /// [`AvCache::put_batch`] it.
    pub fn take(&mut self, supi: &str) -> Option<HeAv> {
        match self.entries.get_mut(supi).and_then(|e| e.avs.pop_front()) {
            Some(av) => {
                self.stats.hits += 1;
                Some(av)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Pops the next AV without touching the hit/miss statistics — the
    /// miss path uses this to consume the first AV of the batch it just
    /// generated (that request already counted as the miss).
    pub fn pop_uncounted(&mut self, supi: &str) -> Option<HeAv> {
        self.entries.get_mut(supi).and_then(|e| e.avs.pop_front())
    }

    /// The SQN a new batch for `supi` must start at.
    #[must_use]
    pub fn next_sqn(&self, supi: &str) -> [u8; 6] {
        self.entries
            .get(supi)
            .map_or([0, 0, 0, 0, 0, 1], |e| e.next_sqn)
    }

    /// Stores a freshly generated batch whose first AV carries
    /// [`AvCache::next_sqn`]; advances the SQN window past it. AVs beyond
    /// the per-SUPI capacity are dropped from the oldest end.
    pub fn put_batch(&mut self, supi: &str, avs: Vec<HeAv>) {
        let count = avs.len() as u64;
        let entry = self.entries.entry(supi.to_owned()).or_default();
        if entry.next_sqn == [0; 6] {
            entry.next_sqn = [0, 0, 0, 0, 0, 1];
        }
        entry.next_sqn = sqn_add(&entry.next_sqn, count);
        entry.avs.extend(avs);
        while entry.avs.len() > self.cfg.capacity_per_supi {
            entry.avs.pop_front();
            self.stats.invalidated += 1;
        }
        self.stats.pregenerated += count;
    }

    /// SQN-aware invalidation: the USIM reported `SQN_MS` via AUTS
    /// resync, so every cached AV for `supi` is stale. Drops them and
    /// restarts the window just past the USIM's counter. Returns the
    /// number of AVs discarded.
    pub fn invalidate(&mut self, supi: &str, sqn_ms: &[u8; 6]) -> usize {
        let entry = self.entries.entry(supi.to_owned()).or_default();
        let dropped = entry.avs.len();
        entry.avs.clear();
        entry.next_sqn = sqn_add(sqn_ms, 1);
        self.stats.invalidated += dropped as u64;
        dropped
    }

    /// Cached AVs currently held for `supi`.
    #[must_use]
    pub fn depth(&self, supi: &str) -> usize {
        self.entries.get(supi).map_or(0, |e| e.avs.len())
    }

    /// Batch size to request on a miss.
    #[must_use]
    pub fn batch_size(&self) -> u32 {
        self.cfg.batch_size
    }

    /// Running statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(i: u8) -> HeAv {
        HeAv {
            rand: [i; 16],
            autn: [i; 16],
            xres_star: [i; 16],
            kausf: [i; 32].into(),
        }
    }

    #[test]
    fn miss_then_hits_in_fifo_order() {
        let mut c = AvCache::new(AvCacheConfig::default());
        assert!(c.take("imsi-1").is_none());
        c.put_batch("imsi-1", vec![av(1), av(2), av(3)]);
        assert_eq!(c.take("imsi-1").unwrap(), av(1));
        assert_eq!(c.take("imsi-1").unwrap(), av(2));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.pregenerated), (2, 1, 3));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sqn_window_advances_per_batch() {
        let mut c = AvCache::new(AvCacheConfig::default());
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 0, 1]);
        c.put_batch("imsi-1", vec![av(1); 8]);
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 0, 9]);
        c.put_batch("imsi-1", vec![av(2); 8]);
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 0, 17]);
    }

    #[test]
    fn resync_drops_cache_and_restarts_window() {
        let mut c = AvCache::new(AvCacheConfig::default());
        c.put_batch("imsi-1", vec![av(1), av(2)]);
        let dropped = c.invalidate("imsi-1", &[0, 0, 0, 0, 1, 0]);
        assert_eq!(dropped, 2);
        assert_eq!(c.depth("imsi-1"), 0);
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 1, 1]);
        assert!(c.take("imsi-1").is_none(), "stale AVs must not survive");
        assert_eq!(c.stats().invalidated, 2);
    }

    #[test]
    fn per_supi_capacity_bounds_memory() {
        let mut c = AvCache::new(AvCacheConfig {
            batch_size: 4,
            capacity_per_supi: 5,
        });
        c.put_batch("imsi-1", (0..8).map(av).collect());
        assert_eq!(c.depth("imsi-1"), 5);
        // Oldest were dropped; the front is now AV 3.
        assert_eq!(c.take("imsi-1").unwrap(), av(3));
    }

    #[test]
    fn supis_are_isolated() {
        let mut c = AvCache::new(AvCacheConfig::default());
        c.put_batch("imsi-1", vec![av(1)]);
        assert!(c.take("imsi-2").is_none());
        assert_eq!(c.take("imsi-1").unwrap(), av(1));
        c.invalidate("imsi-1", &[0; 6]);
        assert_eq!(c.next_sqn("imsi-2"), [0, 0, 0, 0, 0, 1]);
    }
}
