//! Batched AV pre-generation cache at the eUDM frontend.
//!
//! Table III's per-registration cost is ~91 enclave transitions — almost
//! all of them the HTTPS connection choreography, not the AKA crypto
//! (§V-B5). Pre-generating a *batch* of AVs per enclave round trip
//! amortises that choreography: one 91-transition call yields B vectors,
//! and the next B−1 authentications for the SUPI are served from VNF
//! memory without entering the enclave at all.
//!
//! Correctness hinges on SQN discipline (TS 33.102): cached AVs embed
//! consecutive SQNs, so they must be consumed in order and discarded
//! wholesale whenever the USIM reports a resynchronisation — a stale
//! cached SQN would push the UE straight back into AUTS resync loops.

use shield5g_crypto::keys::HeAv;
use shield5g_nf::backend::sqn_add;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Cache parameters.
#[derive(Clone, Copy, Debug)]
pub struct AvCacheConfig {
    /// AVs generated per enclave round trip.
    pub batch_size: u32,
    /// Maximum cached AVs per SUPI (oldest dropped beyond this).
    pub capacity_per_supi: usize,
}

impl Default for AvCacheConfig {
    fn default() -> Self {
        AvCacheConfig {
            batch_size: 8,
            capacity_per_supi: 16,
        }
    }
}

/// Running cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from cache (no enclave transition).
    pub hits: u64,
    /// Requests that triggered a batch generation.
    pub misses: u64,
    /// AVs pre-generated in total.
    pub pregenerated: u64,
    /// AVs dropped by SQN invalidation.
    pub invalidated: u64,
    /// AVs dropped because a batch overflowed the per-SUPI capacity.
    pub evicted: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct SupiEntry {
    /// Pre-generated AVs in SQN order (front = next to hand out).
    avs: VecDeque<HeAv>,
    /// SQN the *next* generated batch must start at.
    next_sqn: [u8; 6],
}

/// Per-SUPI FIFO cache of pre-generated HE AVs.
#[derive(Debug, Default)]
pub struct AvCache {
    cfg: AvCacheConfig,
    entries: BTreeMap<String, SupiEntry>,
    stats: CacheStats,
}

impl AvCache {
    /// An empty cache.
    #[must_use]
    pub fn new(cfg: AvCacheConfig) -> Self {
        AvCache {
            cfg,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Takes the next cached AV for `supi`, oldest SQN first. `None`
    /// counts as a miss; the caller should generate a batch and
    /// [`AvCache::put_batch`] it.
    pub fn take(&mut self, supi: &str) -> Option<HeAv> {
        match self.entries.get_mut(supi).and_then(|e| e.avs.pop_front()) {
            Some(av) => {
                self.stats.hits += 1;
                Some(av)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Pops the next AV without touching the hit/miss statistics — the
    /// miss path uses this to consume the first AV of the batch it just
    /// generated (that request already counted as the miss).
    pub fn pop_uncounted(&mut self, supi: &str) -> Option<HeAv> {
        self.entries.get_mut(supi).and_then(|e| e.avs.pop_front())
    }

    /// The SQN a new batch for `supi` must start at.
    #[must_use]
    pub fn next_sqn(&self, supi: &str) -> [u8; 6] {
        self.entries
            .get(supi)
            .map_or([0, 0, 0, 0, 0, 1], |e| e.next_sqn)
    }

    /// Stores a freshly generated batch whose first AV carries
    /// [`AvCache::next_sqn`]; advances the SQN window past the AVs
    /// actually retained. Overflow beyond the per-SUPI capacity is
    /// truncated from the *newest* end (highest SQNs): the front of the
    /// deque is the next AV to hand out, so dropping from the front
    /// would skip SQNs mid-stream and push UEs into AUTS resync. The
    /// window restarts at the first evicted SQN so the next batch
    /// regenerates it.
    pub fn put_batch(&mut self, supi: &str, avs: Vec<HeAv>) {
        let count = avs.len() as u64;
        let entry = self.entries.entry(supi.to_owned()).or_default();
        if entry.next_sqn == [0; 6] {
            entry.next_sqn = [0, 0, 0, 0, 0, 1];
        }
        let before = entry.avs.len();
        entry.avs.extend(avs);
        let evicted = entry.avs.len().saturating_sub(self.cfg.capacity_per_supi);
        entry.avs.truncate(self.cfg.capacity_per_supi);
        let accepted = (entry.avs.len() - before) as u64;
        entry.next_sqn = sqn_add(&entry.next_sqn, accepted);
        self.stats.evicted += evicted as u64;
        self.stats.pregenerated += count;
    }

    /// SQN-aware invalidation: the USIM reported `SQN_MS` via AUTS
    /// resync, so every cached AV for `supi` is stale. Drops them and
    /// restarts the window just past the USIM's counter. Returns the
    /// number of AVs discarded.
    pub fn invalidate(&mut self, supi: &str, sqn_ms: &[u8; 6]) -> usize {
        // Only existing entries: an AUTS naming an unknown/spoofed SUPI
        // must not allocate cache state (unbounded map growth otherwise).
        let Some(entry) = self.entries.get_mut(supi) else {
            return 0;
        };
        let dropped = entry.avs.len();
        entry.avs.clear();
        entry.next_sqn = sqn_add(sqn_ms, 1);
        self.stats.invalidated += dropped as u64;
        dropped
    }

    /// Drops every cached AV for the SUPIs selected by `pred` — the
    /// failover path: AVs pre-generated by a dead replica must not be
    /// served by its successor (their SQN windows would interleave).
    /// Entries stay so the SQN window survives; returns AVs discarded.
    pub fn purge_where(&mut self, pred: impl Fn(&str) -> bool) -> usize {
        let mut dropped = 0;
        for (supi, entry) in &mut self.entries {
            if pred(supi) {
                dropped += entry.avs.len();
                entry.avs.clear();
            }
        }
        self.stats.invalidated += dropped as u64;
        dropped
    }

    /// Cached AVs currently held for `supi`.
    #[must_use]
    pub fn depth(&self, supi: &str) -> usize {
        self.entries.get(supi).map_or(0, |e| e.avs.len())
    }

    /// Batch size to request on a miss.
    #[must_use]
    pub fn batch_size(&self) -> u32 {
        self.cfg.batch_size
    }

    /// Running statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(i: u8) -> HeAv {
        HeAv {
            rand: [i; 16],
            autn: [i; 16],
            xres_star: [i; 16],
            kausf: [i; 32].into(),
        }
    }

    #[test]
    fn miss_then_hits_in_fifo_order() {
        let mut c = AvCache::new(AvCacheConfig::default());
        assert!(c.take("imsi-1").is_none());
        c.put_batch("imsi-1", vec![av(1), av(2), av(3)]);
        assert_eq!(c.take("imsi-1").unwrap(), av(1));
        assert_eq!(c.take("imsi-1").unwrap(), av(2));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.pregenerated), (2, 1, 3));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sqn_window_advances_per_batch() {
        let mut c = AvCache::new(AvCacheConfig::default());
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 0, 1]);
        c.put_batch("imsi-1", vec![av(1); 8]);
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 0, 9]);
        c.put_batch("imsi-1", vec![av(2); 8]);
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 0, 17]);
    }

    #[test]
    fn resync_drops_cache_and_restarts_window() {
        let mut c = AvCache::new(AvCacheConfig::default());
        c.put_batch("imsi-1", vec![av(1), av(2)]);
        let dropped = c.invalidate("imsi-1", &[0, 0, 0, 0, 1, 0]);
        assert_eq!(dropped, 2);
        assert_eq!(c.depth("imsi-1"), 0);
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 1, 1]);
        assert!(c.take("imsi-1").is_none(), "stale AVs must not survive");
        assert_eq!(c.stats().invalidated, 2);
    }

    #[test]
    fn per_supi_capacity_bounds_memory() {
        let mut c = AvCache::new(AvCacheConfig {
            batch_size: 4,
            capacity_per_supi: 5,
        });
        c.put_batch("imsi-1", (0..8).map(av).collect());
        assert_eq!(c.depth("imsi-1"), 5);
        // Overflow is truncated from the newest end: the front — the
        // next AV handed out — is still AV 0.
        assert_eq!(c.take("imsi-1").unwrap(), av(0));
        let s = c.stats();
        assert_eq!(s.evicted, 3);
        assert_eq!(s.invalidated, 0, "capacity evictions are not resyncs");
    }

    #[test]
    fn over_capacity_put_keeps_served_sqns_consecutive() {
        // Regression: front-eviction used to drop the lowest-SQN AVs so
        // consumption skipped SQNs mid-stream. Model each AV's SQN by
        // its construction index and check the served stream + the SQN
        // window stay consecutive across an over-capacity put_batch.
        let mut c = AvCache::new(AvCacheConfig {
            batch_size: 8,
            capacity_per_supi: 5,
        });
        // Batch carries SQNs 1..=8; only 1..=5 fit.
        c.put_batch("imsi-1", (1..=8).map(av).collect());
        for expect in 1..=5u8 {
            assert_eq!(c.take("imsi-1").unwrap(), av(expect));
        }
        // The window restarted at the first evicted SQN (6), so the next
        // batch regenerates it and the stream continues 6, 7, ...
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 0, 6]);
        c.put_batch("imsi-1", (6..=9).map(av).collect());
        for expect in 6..=9u8 {
            assert_eq!(c.take("imsi-1").unwrap(), av(expect));
        }
    }

    #[test]
    fn invalidate_unknown_supi_allocates_nothing() {
        let mut c = AvCache::new(AvCacheConfig::default());
        c.put_batch("imsi-1", vec![av(1)]);
        assert_eq!(c.invalidate("imsi-spoofed", &[0, 0, 0, 0, 9, 9]), 0);
        // No entry was created: the spoofed SUPI still reports the
        // default starting SQN and the known SUPI is untouched.
        assert_eq!(c.next_sqn("imsi-spoofed"), [0, 0, 0, 0, 0, 1]);
        assert_eq!(c.depth("imsi-1"), 1);
        assert_eq!(c.stats().invalidated, 0);
    }

    #[test]
    fn purge_where_drops_only_selected_supis() {
        let mut c = AvCache::new(AvCacheConfig::default());
        c.put_batch("imsi-1", vec![av(1), av(2)]);
        c.put_batch("imsi-2", vec![av(3)]);
        let dropped = c.purge_where(|s| s == "imsi-1");
        assert_eq!(dropped, 2);
        assert_eq!(c.depth("imsi-1"), 0);
        assert_eq!(c.depth("imsi-2"), 1);
        // SQN window survives the purge.
        assert_eq!(c.next_sqn("imsi-1"), [0, 0, 0, 0, 0, 3]);
    }

    #[test]
    fn supis_are_isolated() {
        let mut c = AvCache::new(AvCacheConfig::default());
        c.put_batch("imsi-1", vec![av(1)]);
        assert!(c.take("imsi-2").is_none());
        assert_eq!(c.take("imsi-1").unwrap(), av(1));
        c.invalidate("imsi-1", &[0; 6]);
        assert_eq!(c.next_sqn("imsi-2"), [0, 0, 0, 0, 0, 1]);
    }
}
