//! Per-replica health tracking for health-gated routing.
//!
//! The consistent-hash ring ([`crate::router::HashRing`]) only knows
//! which replicas *exist*; under the paper's fault model (AEX storms,
//! EPC thrash, injected SBI failures) a replica can be alive yet
//! useless, timing out or erroring on most of what it serves. The
//! [`HealthTracker`] watches every completion the harness observes —
//! success/failure and service latency — and drives the same
//! closed → open → half-open machine the middleware breaker uses
//! ([`shield5g_mw::BreakerCore`], keyed by [`ReplicaId`]): a replica
//! whose failure EWMA trips is **ejected** from the ring (traffic routes
//! around it), after the hold-off a single half-open probe tests it, and
//! a probe success **reinstates** it.
//!
//! The tracker is pure bookkeeping — the pool owns the ring, so ring
//! surgery (and the never-empty-the-ring guard) lives in
//! [`crate::pool::EnclavePool::note_outcome`]. Determinism: `BTreeMap`
//! state, virtual time only, no RNG.

use crate::router::ReplicaId;
use shield5g_mw::{
    BreakerCore, BreakerDecision, BreakerPolicy, BreakerState, BreakerStats, BreakerTransition,
};
use shield5g_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Thresholds for ejection and reinstatement.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// The trip/recovery machine: EWMA threshold, hold-off, probes.
    pub breaker: BreakerPolicy,
    /// Smoothing factor for the per-replica service-latency EWMA
    /// (reported for brownout triggers; never trips the breaker itself).
    pub latency_alpha: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            breaker: BreakerPolicy::default(),
            latency_alpha: 0.3,
        }
    }
}

/// A routing-relevant health transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthEvent {
    /// The replica's failure EWMA tripped: take it off the ring.
    Ejected(ReplicaId),
    /// A half-open probe succeeded: put it back on the ring.
    Reinstated(ReplicaId),
    /// A half-open probe failed: stay off the ring for another hold-off.
    Reopened(ReplicaId),
}

/// EWMA health state across one pool's replicas.
#[derive(Debug)]
pub struct HealthTracker {
    policy: HealthPolicy,
    core: BreakerCore<ReplicaId>,
    latency: BTreeMap<ReplicaId, f64>,
    ejected: BTreeSet<ReplicaId>,
}

impl HealthTracker {
    /// A tracker with no history: every replica starts healthy.
    #[must_use]
    pub fn new(policy: HealthPolicy) -> Self {
        HealthTracker {
            policy,
            core: BreakerCore::new(policy.breaker),
            latency: BTreeMap::new(),
            ejected: BTreeSet::new(),
        }
    }

    /// The thresholds in force.
    #[must_use]
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Trip/probe counter snapshot.
    #[must_use]
    pub fn stats(&self) -> BreakerStats {
        self.core.stats()
    }

    /// Feed one observed completion for `id`. `ok` is transport-level
    /// success (no 5xx/timeout); `latency` is the request's observed
    /// service time. Returns [`HealthEvent::Ejected`] when this outcome
    /// trips the replica's circuit.
    pub fn note(
        &mut self,
        id: ReplicaId,
        ok: bool,
        latency: SimDuration,
        now: SimTime,
    ) -> Option<HealthEvent> {
        let alpha = self.policy.latency_alpha;
        let sample = latency.as_nanos() as f64;
        self.latency
            .entry(id)
            .and_modify(|l| *l = alpha * sample + (1.0 - alpha) * *l)
            .or_insert(sample);
        match self.core.on_outcome(&id, false, ok, now) {
            Some(BreakerTransition::Opened) => {
                self.ejected.insert(id);
                Some(HealthEvent::Ejected(id))
            }
            _ => None,
        }
    }

    /// Whether an ejected replica's hold-off has expired and a half-open
    /// probe slot is free. A `true` claims the probe slot: report the
    /// probe's outcome through [`HealthTracker::note_probe`].
    pub fn due_probe(&mut self, id: ReplicaId, now: SimTime) -> bool {
        self.ejected.contains(&id) && self.core.admit(&id, now) == BreakerDecision::Probe
    }

    /// Feed a probe outcome back. Returns [`HealthEvent::Reinstated`]
    /// on success (put the replica back on the ring) or
    /// [`HealthEvent::Reopened`] on failure.
    pub fn note_probe(&mut self, id: ReplicaId, ok: bool, now: SimTime) -> Option<HealthEvent> {
        match self.core.on_outcome(&id, true, ok, now) {
            Some(BreakerTransition::Closed) => {
                self.ejected.remove(&id);
                Some(HealthEvent::Reinstated(id))
            }
            Some(BreakerTransition::Reopened) => Some(HealthEvent::Reopened(id)),
            _ => None,
        }
    }

    /// Replicas currently routed around, ascending.
    #[must_use]
    pub fn ejected(&self) -> Vec<ReplicaId> {
        self.ejected.iter().copied().collect()
    }

    /// Whether `id` is currently ejected.
    #[must_use]
    pub fn is_ejected(&self, id: ReplicaId) -> bool {
        self.ejected.contains(&id)
    }

    /// The replica's circuit state.
    #[must_use]
    pub fn state(&self, id: ReplicaId) -> BreakerState {
        self.core.state(&id)
    }

    /// The replica's failure EWMA.
    #[must_use]
    pub fn failure_ewma(&self, id: ReplicaId) -> f64 {
        self.core.failure_ewma(&id)
    }

    /// The replica's service-latency EWMA in nanoseconds, if observed.
    #[must_use]
    pub fn latency_ewma(&self, id: ReplicaId) -> Option<f64> {
        self.latency.get(&id).copied()
    }

    /// The pool-wide mean of the per-replica latency EWMAs (brownout
    /// triggers key off this).
    #[must_use]
    pub fn pool_latency_ewma(&self) -> Option<f64> {
        if self.latency.is_empty() {
            return None;
        }
        Some(self.latency.values().sum::<f64>() / self.latency.len() as f64)
    }

    /// Reset `id` to healthy regardless of history (the pool refuses to
    /// eject its last ring member).
    pub fn force_close(&mut self, id: ReplicaId) {
        self.core.force_close(&id);
        self.ejected.remove(&id);
    }

    /// Drop `id`'s history entirely (killed or retired).
    pub fn forget(&mut self, id: ReplicaId) {
        self.core.forget(&id);
        self.latency.remove(&id);
        self.ejected.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> HealthTracker {
        HealthTracker::new(HealthPolicy::default())
    }

    fn trip(t: &mut HealthTracker, id: ReplicaId, now: SimTime) {
        for _ in 0..8 {
            if t.note(id, false, SimDuration::from_micros(900), now)
                .is_some()
            {
                return;
            }
        }
        panic!("eight straight failures did not eject replica {id}");
    }

    #[test]
    fn sustained_failures_eject() {
        let mut t = tracker();
        let now = SimTime::from_nanos(0);
        trip(&mut t, 3, now);
        assert!(t.is_ejected(3));
        assert_eq!(t.ejected(), vec![3]);
        assert_eq!(t.state(3), BreakerState::Open);
    }

    #[test]
    fn probe_success_reinstates() {
        let mut t = tracker();
        let t0 = SimTime::from_nanos(0);
        trip(&mut t, 1, t0);
        // Not due inside the hold-off.
        assert!(!t.due_probe(1, t0));
        let later = t0 + t.policy().breaker.open_for;
        assert!(t.due_probe(1, later));
        // The probe slot is claimed: no second probe until it resolves.
        assert!(!t.due_probe(1, later));
        assert_eq!(
            t.note_probe(1, true, later),
            Some(HealthEvent::Reinstated(1))
        );
        assert!(!t.is_ejected(1));
        assert_eq!(t.state(1), BreakerState::Closed);
    }

    #[test]
    fn probe_failure_keeps_ejected() {
        let mut t = tracker();
        let t0 = SimTime::from_nanos(0);
        trip(&mut t, 1, t0);
        let later = t0 + t.policy().breaker.open_for;
        assert!(t.due_probe(1, later));
        assert_eq!(
            t.note_probe(1, false, later),
            Some(HealthEvent::Reopened(1))
        );
        assert!(t.is_ejected(1));
        // Fresh hold-off: not due again until it passes.
        assert!(!t.due_probe(1, later));
        assert!(t.due_probe(1, later + t.policy().breaker.open_for));
    }

    #[test]
    fn latency_ewma_tracks_but_never_trips() {
        let mut t = tracker();
        let now = SimTime::from_nanos(0);
        for _ in 0..64 {
            // Slow but successful: latency EWMA climbs, circuit stays
            // closed.
            assert!(t
                .note(2, true, SimDuration::from_micros(5_000), now)
                .is_none());
        }
        assert!(t.latency_ewma(2).unwrap() > 4_000_000.0);
        assert_eq!(t.state(2), BreakerState::Closed);
        assert!(t.pool_latency_ewma().is_some());
    }

    #[test]
    fn forget_clears_history() {
        let mut t = tracker();
        let now = SimTime::from_nanos(0);
        trip(&mut t, 7, now);
        t.forget(7);
        assert!(!t.is_ejected(7));
        assert_eq!(t.state(7), BreakerState::Closed);
        assert!(t.latency_ewma(7).is_none());
    }
}
