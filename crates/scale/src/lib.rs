//! Horizontal scaling for the P-AKA modules (`shield5g-scale`).
//!
//! §VI of the paper notes that shielded control-plane functions scale
//! horizontally: each P-AKA module is a self-contained HTTPS microservice,
//! so capacity grows by deploying more enclave replicas behind a router.
//! This crate builds that tier for the simulation:
//!
//! - [`pool`] — per-kind replica pools with an explicit lifecycle
//!   (spawn → preheat → standby/ready → retire). Enclave loading costs
//!   ~60 s (Fig. 7), so pools keep warm standbys to take that cost off
//!   the request path.
//! - [`router`] — consistent-hash request routing keyed by SUPI, keeping
//!   each subscriber's SQN state replica-affine and bounding rebalancing
//!   churn when the pool grows.
//! - [`queue`] — bounded admission queues with virtual-time deadlines;
//!   overload is shed before it burns enclave transitions.
//! - [`health`] — per-replica failure/latency EWMAs driving health-gated
//!   routing: unhealthy replicas are ejected from the ring, probed
//!   half-open after a hold-off, and reinstated on probe success.
//! - [`avcache`] — batched AV pre-generation at the eUDM with SQN-aware
//!   invalidation, amortising the ~91-transition HTTPS choreography over
//!   a batch of authentications.
//! - [`metrics`] — per-pool reports built from real per-replica SGX
//!   counter deltas, summarised with [`shield5g_core::stats::Summary`].
//! - [`harness`] — the §V-B7 horizontal-scaling experiment driven by a
//!   gnbsim-style open-loop registration workload against real pools.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avcache;
pub mod harness;
pub mod health;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod router;

pub use avcache::{AvCache, AvCacheConfig, CacheStats};
pub use harness::{
    horizontal_scaling, pool_sweep, probe_service_time, run_scaling_point, scaling_points,
    ScalingPoint, ScalingRow, SweepConfig,
};
pub use health::{HealthEvent, HealthPolicy, HealthTracker};
pub use metrics::{PoolReport, ReplicaLoadStats, RunRecorder};
pub use pool::{EnclavePool, PoolConfig, Replica, ReplicaState};
pub use queue::{Admission, QueueConfig, ReplicaQueue, ShedReason};
pub use router::{HashRing, ReplicaId};
