//! The pool-scaling experiments: real replica pools under open-loop
//! mass-registration load.
//!
//! The seed repository extrapolated §V-B7 horizontal scaling by measuring
//! one enclave and multiplying. Here every row comes from an actual pool:
//! distinct enclave replicas, consistent-hash SUPI routing, bounded
//! admission queues, and (optionally) the batched AV pre-generation
//! cache. Each replica is a discrete-event endpoint on the simulation
//! engine: the harness routes every Poisson arrival by SUPI and schedules
//! it on the owner's address, so who waits, who sheds, and when each
//! request finishes all emerge from event ordering over the modules'
//! *measured* service occupancies — never from an analytic schedule.

use crate::avcache::{AvCache, AvCacheConfig};
use crate::metrics::{PoolReport, RunRecorder};
use crate::pool::{replica_addr, EnclavePool, PoolConfig};
use crate::queue::QueueConfig;
use shield5g_core::paka::PakaKind;
use shield5g_core::stats::Summary;
use shield5g_crypto::keys::ServingNetworkName;
use shield5g_nf::backend::{decode_he_av_batch, sqn_add, UdmAkaBatchRequest, UdmAkaRequest};
use shield5g_ran::workload::{poisson_registrations, test_supi, WorkloadSpec};
use shield5g_sim::engine::{Completion, Engine};
use shield5g_sim::http::HttpRequest;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::collections::BTreeMap;

/// Long-term key of every workload subscriber (the standard test K).
const K: [u8; 16] = [0x46; 16];
const OPC: [u8; 16] = [0xcd; 16];

/// VNF-side cost of serving an authentication from the AV cache: a hash
/// lookup and a vector copy in frontend memory — no enclave, no TLS hop.
const CACHE_HIT_NANOS: u64 = 1_500;

/// Parameters of one pool experiment.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Ready replicas on the ring.
    pub replicas: u32,
    /// Offered load in authentications per second.
    pub offered_per_sec: f64,
    /// Arrivals in the trace.
    pub arrivals: u32,
    /// Subscriber population (smaller than `arrivals` ⇒ repeat
    /// authentications, which is what the AV cache exploits).
    pub ues: u32,
    /// Per-replica admission queue parameters.
    pub queue: QueueConfig,
    /// AV pre-generation; `None` = one enclave round trip per request.
    pub cache: Option<AvCacheConfig>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            replicas: 1,
            offered_per_sec: 500.0,
            arrivals: 200,
            ues: 40,
            queue: QueueConfig::default(),
            cache: None,
        }
    }
}

fn snn() -> ServingNetworkName {
    ServingNetworkName::new("001", "01")
}

/// Runs one open-loop experiment against a freshly deployed eUDM pool.
///
/// # Panics
///
/// Panics when a module returns a non-success response — the harness
/// provisions every subscriber it offers.
#[must_use]
pub fn pool_sweep(seed: u64, cfg: &SweepConfig) -> PoolReport {
    let mut env = Env::new(seed);
    env.log.disable();
    let mut pool = EnclavePool::deploy(
        &mut env,
        PakaKind::EUdm,
        PoolConfig {
            replicas: cfg.replicas,
            warm_standby: 0,
            queue: cfg.queue,
            ..PoolConfig::default()
        },
    );
    for i in 0..cfg.ues {
        pool.provision_subscriber(&mut env, &test_supi(i), K);
    }
    pool.rebaseline();

    let mut wl_rng = env.rng.fork("pool-workload");
    let trace = poisson_registrations(
        &mut wl_rng,
        env.clock.now(),
        &WorkloadSpec {
            ues: cfg.ues,
            arrivals: cfg.arrivals,
            rate_per_sec: cfg.offered_per_sec,
        },
    );

    let mut engine = Engine::new();
    pool.register_on(&mut engine);

    let mut cache = cfg.cache.map(AvCache::new);
    // Cache-off bookkeeping: the UDM's per-subscriber SQN generator.
    let mut sqn_counters: BTreeMap<String, [u8; 6]> = BTreeMap::new();
    let mut recorder = RunRecorder::new();
    // Tag → SUPI of every scheduled (in-flight) request, so completions
    // can refill the cache for the right subscriber.
    let mut in_flight: BTreeMap<u64, String> = BTreeMap::new();

    let settle = |recorder: &mut RunRecorder,
                  cache: &mut Option<AvCache>,
                  in_flight: &mut BTreeMap<u64, String>,
                  done: Vec<Completion>| {
        for completion in done {
            let supi = in_flight
                .remove(&completion.tag)
                .expect("completion for unscheduled tag");
            if completion.shed() {
                recorder.shed();
                continue;
            }
            assert!(
                completion.response.is_success(),
                "pool request failed: {}",
                String::from_utf8_lossy(&completion.response.body)
            );
            if let Some(c) = cache.as_mut() {
                let avs = decode_he_av_batch(&completion.response.body).expect("batch wire");
                c.put_batch(&supi, avs);
                // The missing request consumes the batch head itself.
                let _ = c.pop_uncounted(&supi);
            }
            recorder.served(completion.submitted, completion.queued, completion.finished);
        }
    };

    for arrival in &trace {
        // Drain everything that finished before this arrival so the
        // frontend cache reflects completed batch refills.
        let done = engine.run_until(&mut env, arrival.at);
        settle(&mut recorder, &mut cache, &mut in_flight, done);

        recorder.arrival(arrival.at);

        // Frontend cache check — hits never reach a replica, so they
        // cannot be queued or shed.
        if let Some(c) = cache.as_mut() {
            if c.take(&arrival.supi).is_some() {
                let finish = arrival.at + SimDuration::from_nanos(CACHE_HIT_NANOS);
                recorder.served(arrival.at, SimDuration::ZERO, finish);
                continue;
            }
        }

        let id = pool.route(&arrival.supi);
        let request = match cache.as_ref() {
            Some(c) => batch_request(&mut env, c, &arrival.supi),
            None => single_request(&mut env, &mut sqn_counters, &arrival.supi),
        };
        let tag = engine.schedule_request(arrival.at, &replica_addr(pool.kind(), id), request);
        in_flight.insert(tag, arrival.supi.clone());
    }
    let done = engine.run_until_idle(&mut env);
    settle(&mut recorder, &mut cache, &mut in_flight, done);
    assert!(in_flight.is_empty(), "requests left in flight");
    pool.absorb_engine(&engine);

    let report = recorder.finish(&pool, cache.map(|c| c.stats()));
    report.record_obs(&format!("n{}", cfg.replicas));
    report
}

fn single_request(
    env: &mut Env,
    sqn_counters: &mut BTreeMap<String, [u8; 6]>,
    supi: &str,
) -> HttpRequest {
    let sqn = sqn_counters
        .entry(supi.to_owned())
        .and_modify(|s| *s = sqn_add(s, 1))
        .or_insert([0, 0, 0, 0, 0, 1]);
    HttpRequest::post(
        "/eudm/generate-av",
        UdmAkaRequest {
            supi: supi.into(),
            opc: OPC.into(),
            rand: env.rng.bytes(),
            sqn: *sqn,
            amf_field: [0x80, 0],
            snn: snn(),
        }
        .encode(),
    )
}

fn batch_request(env: &mut Env, cache: &AvCache, supi: &str) -> HttpRequest {
    HttpRequest::post(
        "/eudm/generate-av-batch",
        UdmAkaBatchRequest {
            supi: supi.into(),
            opc: OPC.into(),
            rand_seed: env.rng.bytes(),
            sqn_start: cache.next_sqn(supi),
            amf_field: [0x80, 0],
            snn: snn(),
            count: cache.batch_size(),
        }
        .encode(),
    )
}

/// Median stable service occupancy of a single warmed replica — the
/// capacity probe the scaling sweep calibrates its offered load against.
#[must_use]
pub fn probe_service_time(seed: u64) -> SimDuration {
    let mut env = Env::new(seed);
    env.log.disable();
    let mut pool = EnclavePool::deploy(
        &mut env,
        PakaKind::EUdm,
        PoolConfig {
            replicas: 1,
            warm_standby: 0,
            ..PoolConfig::default()
        },
    );
    pool.provision_subscriber(&mut env, &test_supi(0), K);
    let mut sqn_counters = BTreeMap::new();
    let id = pool.ready_ids()[0];
    let samples: Vec<SimDuration> = (0..25)
        .map(|_| {
            let request = single_request(&mut env, &mut sqn_counters, &test_supi(0));
            let (resp, _, occupancy) = pool.serve_on(&mut env, id, request);
            assert!(resp.is_success());
            occupancy
        })
        .collect();
    Summary::of(&samples).median
}

/// One row of the §V-B7 horizontal-scaling experiment.
#[derive(Clone, Copy, Debug)]
pub struct ScalingRow {
    /// Ready enclave replicas serving in parallel.
    pub instances: u32,
    /// Stable per-request response time (median, queueing included).
    pub stable_response: SimDuration,
    /// Completed authentications per second across the pool.
    pub throughput_per_sec: f64,
    /// Requests shed by admission control (0 below saturation).
    pub shed: u64,
}

/// Per-replica utilisation target of the scaling sweep: high enough that
/// throughput tracks offered load, low enough that consistent-hash load
/// imbalance cannot push a single replica past saturation.
const SCALING_UTILISATION: f64 = 0.65;

/// One fully-specified point of the horizontal-scaling sweep: enough to
/// run `pool_sweep` for it anywhere. `Copy + Send`, so a parallel sweep
/// runner can move points onto worker threads; running a point is a
/// pure function of this struct, independent of every other point.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Ready enclave replicas this point deploys.
    pub instances: u32,
    /// Seed of this point's run.
    pub seed: u64,
    /// The derived pool-sweep configuration.
    pub cfg: SweepConfig,
}

/// Expands the §V-B7 sweep into its independent per-instance-count
/// points. `service` is the single-replica occupancy from
/// [`probe_service_time`] — probed once, shared by every point.
#[must_use]
pub fn scaling_points(
    base_seed: u64,
    reps: u32,
    max_instances: u32,
    service: SimDuration,
) -> Vec<ScalingPoint> {
    let per_replica_rate = SCALING_UTILISATION / service.as_secs_f64();
    (1..=max_instances)
        .map(|instances| ScalingPoint {
            instances,
            seed: base_seed + u64::from(instances),
            cfg: SweepConfig {
                replicas: instances,
                offered_per_sec: per_replica_rate * f64::from(instances),
                arrivals: (reps * 12).max(60) * instances,
                ues: 40 * instances,
                ..SweepConfig::default()
            },
        })
        .collect()
}

/// Runs one horizontal-scaling point.
#[must_use]
pub fn run_scaling_point(point: &ScalingPoint) -> ScalingRow {
    let report = pool_sweep(point.seed, &point.cfg);
    ScalingRow {
        instances: point.instances,
        stable_response: report.response.median,
        throughput_per_sec: report.throughput_per_sec,
        shed: report.shed,
    }
}

/// **§V-B7 horizontal scaling**: deploys pools of `1..=max_instances`
/// real eUDM replicas, drives each with a gnbsim-style open-loop
/// registration workload at a fixed per-replica utilisation, and reports
/// measured throughput. Below saturation the rows are near-linear in the
/// replica count; the multiplier is the pool actually serving, not
/// arithmetic.
#[must_use]
pub fn horizontal_scaling(base_seed: u64, reps: u32, max_instances: u32) -> Vec<ScalingRow> {
    let service = probe_service_time(base_seed);
    scaling_points(base_seed, reps, max_instances, service)
        .iter()
        .map(run_scaling_point)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_scaling_is_linear() {
        let rows = horizontal_scaling(900, 10, 3);
        assert_eq!(rows.len(), 3);
        let t1 = rows[0].throughput_per_sec;
        let t3 = rows[2].throughput_per_sec;
        assert!(t3 > 2.5 * t1 && t3 < 3.5 * t1, "t1={t1:.0}/s t3={t3:.0}/s");
        // A single enclave sustains several hundred authentications/s.
        assert!(t1 > 300.0 && t1 < 1500.0, "t1={t1:.0}/s");
        // Below saturation nothing is shed and responses stay bounded.
        for row in &rows {
            assert_eq!(row.shed, 0, "n={} shed {}", row.instances, row.shed);
            assert!(
                row.stable_response < SimDuration::from_millis(20),
                "n={} response {}",
                row.instances,
                row.stable_response
            );
        }
    }

    #[test]
    fn saturation_flattens_throughput_and_sheds() {
        let service = probe_service_time(910);
        let capacity = 2.0 / service.as_secs_f64(); // two replicas
        let run = |overload: f64| {
            pool_sweep(
                911,
                &SweepConfig {
                    replicas: 2,
                    offered_per_sec: overload * capacity,
                    arrivals: 400,
                    ues: 80,
                    queue: QueueConfig {
                        capacity: 16,
                        deadline: SimDuration::from_millis(100),
                    },
                    cache: None,
                },
            )
        };
        let moderate = run(1.3);
        let heavy = run(2.2);
        // Offered load rose ~70% but completed throughput flattens at
        // pool capacity...
        assert!(
            heavy.throughput_per_sec < moderate.throughput_per_sec * 1.15,
            "throughput must flatten: {:.0}/s -> {:.0}/s",
            moderate.throughput_per_sec,
            heavy.throughput_per_sec
        );
        assert!(
            heavy.throughput_per_sec < capacity * 1.1,
            "{:.0}/s exceeds capacity {capacity:.0}/s",
            heavy.throughput_per_sec
        );
        // ...and the excess is shed by admission control, not queued
        // forever.
        assert!(
            heavy.shed_fraction() > 0.2,
            "heavy overload shed only {:.1}%",
            100.0 * heavy.shed_fraction()
        );
        assert!(heavy.shed_fraction() > moderate.shed_fraction());
        // Bounded queues keep even the overloaded p99 finite.
        assert!(heavy.response.p99 < SimDuration::from_millis(250));
    }

    #[test]
    fn av_cache_cuts_enclave_transitions_per_request() {
        let base = SweepConfig {
            replicas: 1,
            offered_per_sec: 250.0,
            arrivals: 180,
            ues: 6,
            ..SweepConfig::default()
        };
        let off = pool_sweep(920, &base);
        let on = pool_sweep(
            920,
            &SweepConfig {
                cache: Some(AvCacheConfig {
                    batch_size: 8,
                    capacity_per_supi: 16,
                }),
                ..base
            },
        );
        assert_eq!(off.shed + on.shed, 0, "runs must stay below saturation");
        // Cache off: every authentication pays the ~91-transition
        // choreography (§V-B5).
        let per_req_off = off.eenter_per_served();
        assert!(
            (85.0..=115.0).contains(&per_req_off),
            "cache-off EENTER/req {per_req_off:.1}"
        );
        // Cache on: one batched round trip serves ~8 authentications.
        let per_req_on = on.eenter_per_served();
        assert!(
            per_req_on < per_req_off / 3.0,
            "EENTER/req {per_req_on:.1} vs {per_req_off:.1} — cache not amortising"
        );
        let stats = on.cache.expect("cache stats");
        assert!(stats.hit_rate() > 0.6, "hit rate {:.2}", stats.hit_rate());
        // Cache hits skip the enclave entirely, so the median response
        // collapses to the frontend lookup cost.
        assert!(on.response.median < off.response.median);
    }

    #[test]
    fn reports_carry_real_per_replica_counters() {
        let report = pool_sweep(
            930,
            &SweepConfig {
                replicas: 3,
                offered_per_sec: 400.0,
                arrivals: 150,
                ues: 60,
                ..SweepConfig::default()
            },
        );
        assert_eq!(report.replicas, 3);
        assert_eq!(report.per_replica.len(), 3);
        let served: u64 = report.per_replica.iter().map(|r| r.served).sum();
        assert_eq!(served, report.served);
        // Every replica took a share of the ring and did its own work.
        for r in &report.per_replica {
            assert!(r.served > 0, "replica {} idle", r.replica);
            assert!(r.eenter_delta >= r.served * 85);
            assert_eq!(r.shed, 0);
        }
    }
}
