//! Consistent-hash request routing.
//!
//! P-AKA state is subscriber-scoped: the eUDM's SQN bookkeeping and the
//! AV pre-generation cache are both keyed by SUPI. Routing every request
//! for a SUPI to the *same* replica keeps that state replica-local — no
//! cross-enclave coordination — while growing the ring by one replica
//! remaps only ~K/n of K keys instead of reshuffling everything (which
//! would dump every cached AV and SQN window at once).

use std::collections::BTreeSet;

/// Identifier of a pool replica.
pub type ReplicaId = u32;

/// 64-bit FNV-1a with a murmur3-style finaliser — stable and
/// dependency-free. Raw FNV concentrates its entropy in the low bits on
/// short structured strings (SUPIs differ only in their digit suffix),
/// which skews ring placement badly; the avalanche mix spreads it across
/// the full word, which is what the sorted-point binary search compares.
#[must_use]
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A consistent-hash ring with virtual nodes.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted (point, replica) pairs.
    points: Vec<(u64, ReplicaId)>,
    replicas: BTreeSet<ReplicaId>,
    vnodes: u32,
}

impl HashRing {
    /// An empty ring placing `vnodes` virtual nodes per replica.
    ///
    /// # Panics
    ///
    /// Panics when `vnodes == 0`.
    #[must_use]
    pub fn new(vnodes: u32) -> Self {
        assert!(vnodes > 0, "a replica needs at least one virtual node");
        HashRing {
            points: Vec::new(),
            replicas: BTreeSet::new(),
            vnodes,
        }
    }

    /// Adds a replica's virtual nodes; no-op if already present.
    pub fn add(&mut self, id: ReplicaId) {
        if !self.replicas.insert(id) {
            return;
        }
        for v in 0..self.vnodes {
            let point = hash64(format!("replica-{id}/vnode-{v}").as_bytes());
            self.points.push((point, id));
        }
        self.points.sort_unstable();
    }

    /// Removes a replica's virtual nodes; no-op if absent.
    pub fn remove(&mut self, id: ReplicaId) {
        if self.replicas.remove(&id) {
            self.points.retain(|&(_, r)| r != id);
        }
    }

    /// Routes a SUPI to its owning replica (clockwise successor of the
    /// key's hash).
    ///
    /// # Panics
    ///
    /// Panics on an empty ring — the pool never routes with zero ready
    /// replicas.
    #[must_use]
    pub fn route(&self, supi: &str) -> ReplicaId {
        assert!(!self.points.is_empty(), "routing on an empty ring");
        let h = hash64(supi.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points[idx % self.points.len()].1
    }

    /// Replicas currently on the ring, ascending.
    #[must_use]
    pub fn replica_ids(&self) -> Vec<ReplicaId> {
        self.replicas.iter().copied().collect()
    }

    /// Number of replicas on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the ring has no replicas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: u32) -> HashRing {
        let mut ring = HashRing::new(64);
        for id in 0..n {
            ring.add(id);
        }
        ring
    }

    fn keys(n: u32) -> Vec<String> {
        (0..n).map(shield5g_ran::workload::test_supi).collect()
    }

    #[test]
    fn single_replica_takes_everything() {
        let ring = ring_of(1);
        for supi in keys(50) {
            assert_eq!(ring.route(&supi), 0);
        }
    }

    #[test]
    fn load_spreads_across_replicas() {
        let ring = ring_of(4);
        let mut counts = [0u32; 4];
        for supi in keys(400) {
            counts[ring.route(&supi) as usize] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            assert!((40..=200).contains(&c), "replica {id} got {c}/400 keys");
        }
    }

    #[test]
    fn removal_only_moves_the_removed_replicas_keys() {
        let mut ring = ring_of(4);
        let before: Vec<(String, ReplicaId)> = keys(300)
            .into_iter()
            .map(|s| {
                let r = ring.route(&s);
                (s, r)
            })
            .collect();
        ring.remove(2);
        for (supi, owner) in before {
            if owner != 2 {
                assert_eq!(ring.route(&supi), owner, "{supi} moved needlessly");
            } else {
                assert_ne!(ring.route(&supi), 2);
            }
        }
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut ring = ring_of(2);
        let points_before = ring.points.len();
        ring.add(1);
        assert_eq!(ring.points.len(), points_before);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_panics_on_route() {
        let _ = HashRing::new(8).route("imsi-001010000000001");
    }

    #[test]
    fn grow_then_shrink_restores_supi_affinity() {
        // Scale-up followed by retirement of the same replica must return
        // every SUPI to its original owner: per-subscriber SQN windows
        // and cached AVs on the survivors are valid again, not just
        // "some replica's" state. A ring that rebuilt its points on
        // membership change (mod-N, rendezvous-reseeded, …) would fail.
        let mut ring = ring_of(3);
        let before: Vec<(String, ReplicaId)> = keys(300)
            .into_iter()
            .map(|s| {
                let r = ring.route(&s);
                (s, r)
            })
            .collect();
        ring.add(3);
        ring.remove(3);
        for (supi, owner) in before {
            assert_eq!(ring.route(&supi), owner, "{supi} lost its affinity");
        }
    }

    proptest::proptest! {
        /// A fixed ring always routes a SUPI to the same replica —
        /// replica affinity is what keeps SQN state consistent.
        #[test]
        fn routing_is_stable(idx in 0u32..100_000, n in 1u32..12) {
            let ring = ring_of(n);
            let supi = shield5g_ran::workload::test_supi(idx);
            let first = ring.route(&supi);
            proptest::prop_assert!(first < n);
            proptest::prop_assert_eq!(ring.route(&supi), first);
        }

        /// Growing the ring n → n+1 remaps roughly K/(n+1) of K keys; the
        /// bound below is loose (3× the expectation plus slack for vnode
        /// placement variance) but catches any mod-N-style rehash, which
        /// would move ~n/(n+1) of them.
        #[test]
        fn ring_growth_remaps_few_keys(n in 1u32..10, key_seed in 0u32..1_000) {
            const K: u32 = 400;
            let mut ring = ring_of(n);
            let supis: Vec<String> = (0..K)
                .map(|i| shield5g_ran::workload::test_supi(key_seed * K + i))
                .collect();
            let before: Vec<ReplicaId> = supis.iter().map(|s| ring.route(s)).collect();
            ring.add(n);
            let moved = supis
                .iter()
                .zip(&before)
                .filter(|(s, &owner)| ring.route(s) != owner)
                .count();
            let bound = (3.0 * f64::from(K) / f64::from(n + 1)).ceil() as usize + 16;
            proptest::prop_assert!(
                moved <= bound,
                "{moved}/{K} keys moved growing {n}->{} (bound {bound})", n + 1
            );
            // Moved keys must have moved *to* the new replica.
            for (s, &owner) in supis.iter().zip(&before) {
                let now = ring.route(s);
                proptest::prop_assert!(now == owner || now == n);
            }
        }

        /// Retiring a replica n → n−1 moves *only* the retired replica's
        /// keys; every survivor keeps its SUPIs (and therefore its SQN
        /// windows and cached AVs). The retired replica's keys scatter
        /// across the survivors instead of piling onto one successor.
        #[test]
        fn ring_retirement_remaps_only_retired_keys(
            n in 2u32..10,
            victim_pick in 0u32..10,
            key_seed in 0u32..1_000,
        ) {
            const K: u32 = 400;
            let victim = victim_pick % n;
            let mut ring = ring_of(n);
            let supis: Vec<String> = (0..K)
                .map(|i| shield5g_ran::workload::test_supi(key_seed * K + i))
                .collect();
            let before: Vec<ReplicaId> = supis.iter().map(|s| ring.route(s)).collect();
            let victim_keys = before.iter().filter(|&&o| o == victim).count();
            ring.remove(victim);
            let mut moved = 0usize;
            for (s, &owner) in supis.iter().zip(&before) {
                let now = ring.route(s);
                proptest::prop_assert_ne!(now, victim);
                if owner == victim {
                    moved += 1;
                } else {
                    proptest::prop_assert_eq!(now, owner);
                }
            }
            proptest::prop_assert_eq!(moved, victim_keys);
            // With ≥3 survivors and enough orphans, vnode interleaving
            // must scatter them — a single-successor takeover (plain
            // sorted-id fallback) would concentrate every orphan.
            if n >= 4 && victim_keys >= 32 {
                let mut inherited = std::collections::BTreeMap::new();
                for (s, &owner) in supis.iter().zip(&before) {
                    if owner == victim {
                        *inherited.entry(ring.route(s)).or_insert(0u32) += 1;
                    }
                }
                proptest::prop_assert!(
                    inherited.len() >= 2,
                    "all {} orphans of replica {} landed on one successor",
                    victim_keys, victim
                );
            }
        }
    }
}
