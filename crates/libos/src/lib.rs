//! A Gramine-style library OS for the HMEE simulator.
//!
//! The paper deploys its P-AKA modules with Gramine-SGX via GSC (Gramine
//! Shielded Containers, §IV-C): unmodified container images run inside an
//! enclave, with a LibOS translating every syscall into an OCALL round
//! trip. This crate models the pieces the evaluation depends on:
//!
//! * [`manifest`] — the Gramine manifest: `sgx.max_threads`,
//!   `sgx.preheat_enclave`, enclave size, debug/stats flags, trusted files.
//! * [`gsc`] — the GSC image transform: appends the container root FS to
//!   the trusted-file list (the cause of the paper's ~1 minute enclave
//!   load, §V-B1), signs the image, and rejects workloads needing
//!   protocols Gramine cannot shield (SCTP, §IV-A).
//! * [`syscalls`] — a syscall interface with two implementations: native
//!   (container deployment) and shielded (every call is an OCALL through
//!   the enclave boundary). The *same workload code* runs against both,
//!   so SGX overhead emerges from the boundary, not from different logic.
//! * [`libos`] — the boot sequence (manifest load, trusted-file
//!   verification, helper threads, optional preheat) and the runtime
//!   syscall translation, with Gramine's "exitless" mode as an option.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gsc;
pub mod libos;
pub mod manifest;
pub mod syscalls;

use std::error::Error;
use std::fmt;

/// Errors from the LibOS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LibosError {
    /// The workload requires a protocol the LibOS cannot shield.
    UnsupportedProtocol {
        /// Offending protocol (e.g. "SCTP").
        protocol: String,
        /// The image that requires it.
        image: String,
    },
    /// A file was accessed that is neither trusted nor allowed.
    UntrustedFile(String),
    /// Manifest validation failed.
    ManifestInvalid(String),
    /// The enclave could not be created.
    EnclaveBuild(shield5g_hmee::HmeeError),
    /// The image signature did not verify at load time.
    SignatureInvalid(String),
}

impl fmt::Display for LibosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibosError::UnsupportedProtocol { protocol, image } => {
                write!(
                    f,
                    "image {image:?} requires {protocol}, which the LibOS cannot shield"
                )
            }
            LibosError::UntrustedFile(p) => write!(f, "access to untrusted file {p:?}"),
            LibosError::ManifestInvalid(m) => write!(f, "invalid manifest: {m}"),
            LibosError::EnclaveBuild(e) => write!(f, "enclave build failed: {e}"),
            LibosError::SignatureInvalid(m) => write!(f, "image signature invalid: {m}"),
        }
    }
}

impl Error for LibosError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LibosError::EnclaveBuild(e) => Some(e),
            _ => None,
        }
    }
}

impl From<shield5g_hmee::HmeeError> for LibosError {
    fn from(e: shield5g_hmee::HmeeError) -> Self {
        LibosError::EnclaveBuild(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_protocol_and_image() {
        let e = LibosError::UnsupportedProtocol {
            protocol: "SCTP".into(),
            image: "oai-amf".into(),
        };
        let s = e.to_string();
        assert!(s.contains("SCTP"));
        assert!(s.contains("oai-amf"));
    }

    #[test]
    fn hmee_error_converts_with_source() {
        let e: LibosError = shield5g_hmee::HmeeError::ThreadLimit { max_threads: 4 }.into();
        assert!(Error::source(&e).is_some());
    }
}
