//! Gramine Shielded Containers (GSC): transforming a container image into
//! a shielded image.
//!
//! Paper §IV-C: "GSC CLI tool transforms regular Docker images to run
//! inside SGX enclaves using Gramine LibOS … The GSC signer tool is used
//! to sign the image with a user-provided key." And §V-B1: GSC "appends
//! the majority of the root directory files (excluding some
//! platform-specific directories e.g., /boot, /dev, /etc/mtab, /proc,
//! /sys) to the trusted list", which is why enclave load takes close to a
//! minute.

use crate::manifest::{Manifest, TrustedFile};
use crate::LibosError;
use serde::{Deserialize, Serialize};
use shield5g_crypto::hmac::hmac_sha256;
use shield5g_crypto::sha256::Sha256;

/// Directories GSC excludes from the trusted list (platform-specific).
pub const EXCLUDED_PREFIXES: &[&str] = &["/boot", "/dev", "/etc/mtab", "/proc", "/sys"];

/// Transport protocols a containerised workload may require.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP — shielded via OCALL-delegated sockets.
    Tcp,
    /// UDP — shielded via OCALL-delegated sockets.
    Udp,
    /// SCTP — **not** supported by the Gramine abstraction layer
    /// (paper §IV-A); images requiring it cannot be shielded.
    Sctp,
}

impl Protocol {
    /// Whether the LibOS can shield this protocol.
    #[must_use]
    pub fn is_shieldable(self) -> bool {
        !matches!(self, Protocol::Sctp)
    }
}

/// One file in a container image (content optional; size always known).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageFile {
    /// Absolute path inside the image.
    pub path: String,
    /// File size in bytes.
    pub size: u64,
    /// Stable content fingerprint (hash input when real bytes are not
    /// materialised — images are gigabytes, so content is virtual).
    pub fingerprint: u64,
}

/// A container image as GSC sees it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageSpec {
    /// Image name, e.g. `oai/eudm-paka:v1.5.0`.
    pub name: String,
    /// Entrypoint binary.
    pub entrypoint: String,
    /// All files in the image root FS.
    pub files: Vec<ImageFile>,
    /// Protocols the workload requires at runtime.
    pub required_protocols: Vec<Protocol>,
    /// Bytes of code/data the workload touches at boot (drives demand
    /// page-faults, hence the boot AEX count beyond preheating).
    pub working_set_bytes: u64,
}

impl ImageSpec {
    /// A synthetic root FS of `total_bytes` spread over `file_count` files
    /// plus the named entrypoint — convenient for building realistic GSC
    /// images without materialising gigabytes.
    #[must_use]
    pub fn synthetic(
        name: impl Into<String>,
        entrypoint: impl Into<String>,
        total_bytes: u64,
        file_count: u32,
    ) -> Self {
        let name = name.into();
        let entrypoint = entrypoint.into();
        let mut files = Vec::with_capacity(file_count as usize + 1);
        let per_file = total_bytes / u64::from(file_count.max(1));
        for i in 0..file_count {
            files.push(ImageFile {
                path: format!("/usr/lib/{name}/lib{i:04}.so"),
                size: per_file,
                fingerprint: u64::from(i) ^ 0x5134_7a5e,
            });
        }
        files.push(ImageFile {
            path: entrypoint.clone(),
            size: 4 * 1024 * 1024,
            fingerprint: 0xE47,
        });
        // Platform-specific files that GSC will exclude.
        files.push(ImageFile {
            path: "/proc/cpuinfo".into(),
            size: 4096,
            fingerprint: 1,
        });
        files.push(ImageFile {
            path: "/sys/devices/x".into(),
            size: 4096,
            fingerprint: 2,
        });
        files.push(ImageFile {
            path: "/dev/urandom".into(),
            size: 0,
            fingerprint: 3,
        });
        ImageSpec {
            name,
            entrypoint,
            files,
            required_protocols: vec![Protocol::Tcp],
            working_set_bytes: 34 * 1024 * 1024,
        }
    }

    /// Overrides the boot-time working set (builder style).
    #[must_use]
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Total image size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }
}

/// A GSC-transformed, signed image ready to boot under the LibOS.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShieldedImage {
    /// The source image name.
    pub image_name: String,
    /// The generated manifest (trusted files appended).
    pub manifest: Manifest,
    /// MRSIGNER source: the signer's public identity.
    pub signer: [u8; 32],
    /// Signature over the manifest (user-provided key, §IV-C).
    pub signature: [u8; 32],
    /// Boot-time working set carried from the source image.
    pub working_set_bytes: u64,
}

/// The `gsc build` + `gsc sign-image` pipeline.
///
/// Appends every non-excluded file to the manifest's trusted list, merges
/// the caller's SGX settings, and signs the result.
///
/// # Errors
///
/// Returns [`LibosError::UnsupportedProtocol`] when the image requires a
/// protocol Gramine cannot shield (the reason the paper extracts AKA
/// functions *without* SCTP dependencies), and propagates manifest
/// validation failures.
pub fn transform(
    image: &ImageSpec,
    mut manifest: Manifest,
    signing_key: &[u8; 32],
) -> Result<ShieldedImage, LibosError> {
    for proto in &image.required_protocols {
        if !proto.is_shieldable() {
            return Err(LibosError::UnsupportedProtocol {
                protocol: format!("{proto:?}").to_uppercase(),
                image: image.name.clone(),
            });
        }
    }
    manifest.entrypoint = image.entrypoint.clone();
    for file in &image.files {
        if EXCLUDED_PREFIXES.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        // Hash of the virtual content: path + fingerprint + size.
        let mut h = Sha256::new();
        h.update(file.path.as_bytes());
        h.update(&file.fingerprint.to_be_bytes());
        h.update(&file.size.to_be_bytes());
        manifest.trusted_files.push(TrustedFile {
            path: file.path.clone(),
            size: file.size,
            sha256: h.finalize(),
        });
    }
    manifest.validate()?;
    let signer = Sha256::digest(signing_key);
    let signature = sign_manifest(signing_key, &manifest);
    Ok(ShieldedImage {
        image_name: image.name.clone(),
        manifest,
        signer,
        signature,
        working_set_bytes: image.working_set_bytes,
    })
}

/// Verifies a shielded image's signature against the signer key.
///
/// # Errors
///
/// Returns [`LibosError::SignatureInvalid`] on mismatch (tampered manifest
/// or wrong key).
pub fn verify(image: &ShieldedImage, signing_key: &[u8; 32]) -> Result<(), LibosError> {
    let expected = sign_manifest(signing_key, &image.manifest);
    if shield5g_crypto::ct_eq(&expected, &image.signature) {
        Ok(())
    } else {
        Err(LibosError::SignatureInvalid(format!(
            "image {}",
            image.image_name
        )))
    }
}

fn sign_manifest(key: &[u8; 32], manifest: &Manifest) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(manifest.entrypoint.as_bytes());
    h.update(&manifest.max_threads.to_be_bytes());
    h.update(&manifest.enclave_size_bytes.to_be_bytes());
    h.update(&[
        u8::from(manifest.preheat_enclave),
        u8::from(manifest.debug),
        u8::from(manifest.stats),
        u8::from(manifest.exitless),
    ]);
    for f in &manifest.trusted_files {
        h.update(f.path.as_bytes());
        h.update(&f.sha256);
    }
    hmac_sha256(key, &h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> ImageSpec {
        ImageSpec::synthetic("oai/eudm-paka", "/usr/bin/paka", 2_000_000_000, 200)
    }

    #[test]
    fn transform_appends_trusted_files_excluding_platform_dirs() {
        let shielded = transform(&image(), Manifest::paka_default("x"), &[7; 32]).unwrap();
        let paths: Vec<&str> = shielded
            .manifest
            .trusted_files
            .iter()
            .map(|f| f.path.as_str())
            .collect();
        assert!(paths.iter().any(|p| p.starts_with("/usr/lib/")));
        assert!(!paths.iter().any(|p| p.starts_with("/proc")));
        assert!(!paths.iter().any(|p| p.starts_with("/sys")));
        assert!(!paths.iter().any(|p| p.starts_with("/dev")));
        // 200 libs + entrypoint.
        assert_eq!(shielded.manifest.trusted_files.len(), 201);
        assert_eq!(shielded.manifest.entrypoint, "/usr/bin/paka");
    }

    #[test]
    fn sctp_workload_rejected() {
        // §IV-A: "some specific protocol libraries (e.g., SCTP) are not
        // supported by the Gramine abstraction layer" — the reason the
        // AMF's AKA piece is extracted without its NGAP/SCTP stack.
        let mut img = image();
        img.required_protocols.push(Protocol::Sctp);
        let err = transform(&img, Manifest::paka_default("x"), &[7; 32]).unwrap_err();
        assert!(matches!(err, LibosError::UnsupportedProtocol { .. }));
        assert!(err.to_string().contains("SCTP"));
    }

    #[test]
    fn signature_round_trip() {
        let shielded = transform(&image(), Manifest::paka_default("x"), &[7; 32]).unwrap();
        verify(&shielded, &[7; 32]).unwrap();
        assert!(verify(&shielded, &[8; 32]).is_err());
    }

    #[test]
    fn tampered_manifest_fails_verification() {
        let mut shielded = transform(&image(), Manifest::paka_default("x"), &[7; 32]).unwrap();
        shielded.manifest.trusted_files[0].sha256[0] ^= 1;
        assert!(verify(&shielded, &[7; 32]).is_err());
    }

    #[test]
    fn synthetic_image_total_bytes() {
        let img = image();
        // 200 × 10 MB + entrypoint 4 MiB + platform stubs.
        assert!(img.total_bytes() > 2_000_000_000);
        assert!(img.total_bytes() < 2_010_000_000);
    }

    #[test]
    fn protocol_shieldability() {
        assert!(Protocol::Tcp.is_shieldable());
        assert!(Protocol::Udp.is_shieldable());
        assert!(!Protocol::Sctp.is_shieldable());
    }

    #[test]
    fn invalid_manifest_propagates() {
        let m = Manifest::paka_default("x").with_max_threads(1);
        assert!(transform(&image(), m, &[7; 32]).is_err());
    }

    #[test]
    fn distinct_content_distinct_hashes() {
        let shielded = transform(&image(), Manifest::paka_default("x"), &[7; 32]).unwrap();
        let h0 = shielded.manifest.trusted_files[0].sha256;
        let h1 = shielded.manifest.trusted_files[1].sha256;
        assert_ne!(h0, h1);
    }
}
