//! The Gramine manifest.
//!
//! Paper §IV-C: "The manifest file is a JSON file that specifies
//! configurations of the LibOS and other SGX-related settings and
//! features, dependencies, and trusted files." The paper's P-AKA builds
//! use `sgx.preheat_enclave = true`, `sgx.max_threads = 4`, 512 MB EPC,
//! with `stats` and `debug` enabled for metric collection.

use crate::LibosError;
use serde::{Deserialize, Serialize};

/// One measured (trusted) file: the LibOS verifies its hash before any
/// read reaches the enclave.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustedFile {
    /// Path inside the image.
    pub path: String,
    /// Size in bytes (drives verification time).
    pub size: u64,
    /// Expected SHA-256 of the content.
    pub sha256: [u8; 32],
}

/// The manifest controlling one shielded workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Entrypoint binary path.
    pub entrypoint: String,
    /// `sgx.max_threads`: TCS slots the enclave may use.
    pub max_threads: u32,
    /// `sgx.enclave_size`: heap/EPC reservation in bytes.
    pub enclave_size_bytes: u64,
    /// `sgx.preheat_enclave`: pre-fault all heap pages during init.
    pub preheat_enclave: bool,
    /// `sgx.debug`: debug-mode enclave (required for stats).
    pub debug: bool,
    /// Collect SGX statistics (EENTER/EEXIT/AEX counts).
    pub stats: bool,
    /// Offload OCALLs to untrusted helper threads (`exitless`); the paper
    /// notes it is "insecure for production usage as of now" (§V-B7).
    pub exitless: bool,
    /// Files measured into the enclave identity.
    pub trusted_files: Vec<TrustedFile>,
    /// Paths readable without measurement (config, /etc alike).
    pub allowed_paths: Vec<String>,
}

impl Manifest {
    /// The paper's P-AKA configuration: 4 threads, 512 MB, preheat on,
    /// stats+debug on (§IV-C).
    #[must_use]
    pub fn paka_default(entrypoint: impl Into<String>) -> Self {
        Manifest {
            entrypoint: entrypoint.into(),
            max_threads: 4,
            enclave_size_bytes: 512 * 1024 * 1024,
            preheat_enclave: true,
            debug: true,
            stats: true,
            exitless: false,
            trusted_files: Vec::new(),
            allowed_paths: Vec::new(),
        }
    }

    /// Overrides the TCS count (builder style).
    #[must_use]
    pub fn with_max_threads(mut self, threads: u32) -> Self {
        self.max_threads = threads;
        self
    }

    /// Overrides the enclave size (builder style).
    #[must_use]
    pub fn with_enclave_size(mut self, bytes: u64) -> Self {
        self.enclave_size_bytes = bytes;
        self
    }

    /// Enables/disables preheating (builder style).
    #[must_use]
    pub fn with_preheat(mut self, preheat: bool) -> Self {
        self.preheat_enclave = preheat;
        self
    }

    /// Enables/disables exitless OCALLs (builder style).
    #[must_use]
    pub fn with_exitless(mut self, exitless: bool) -> Self {
        self.exitless = exitless;
        self
    }

    /// Total bytes of trusted files (verification workload at boot).
    #[must_use]
    pub fn trusted_bytes(&self) -> u64 {
        self.trusted_files.iter().map(|f| f.size).sum()
    }

    /// Validates the manifest.
    ///
    /// Gramine needs 3 helper threads (IPC, timers/async events, TLS pipe
    /// handshakes) plus at least one application thread, so fewer than 4
    /// TCS slots makes a server behave inconsistently (paper §V-B2) — we
    /// reject it outright rather than simulate flakiness.
    ///
    /// # Errors
    ///
    /// Returns [`LibosError::ManifestInvalid`] for `max_threads < 4`, a
    /// zero-sized enclave, stats without debug, or an empty entrypoint.
    pub fn validate(&self) -> Result<(), LibosError> {
        if self.entrypoint.is_empty() {
            return Err(LibosError::ManifestInvalid("empty entrypoint".into()));
        }
        if self.max_threads < 4 {
            return Err(LibosError::ManifestInvalid(format!(
                "max_threads = {} but Gramine needs 3 helper threads + 1 app thread",
                self.max_threads
            )));
        }
        if self.enclave_size_bytes < 64 * 1024 * 1024 {
            return Err(LibosError::ManifestInvalid(format!(
                "enclave_size = {} bytes; P-AKA modules need at least 64 MiB",
                self.enclave_size_bytes
            )));
        }
        if self.stats && !self.debug {
            return Err(LibosError::ManifestInvalid(
                "sgx statistics require a debug-mode enclave".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paka_default_matches_paper() {
        let m = Manifest::paka_default("/usr/bin/paka-server");
        assert_eq!(m.max_threads, 4);
        assert_eq!(m.enclave_size_bytes, 512 * 1024 * 1024);
        assert!(m.preheat_enclave);
        assert!(m.stats);
        assert!(m.debug);
        assert!(!m.exitless);
        m.validate().unwrap();
    }

    #[test]
    fn too_few_threads_rejected() {
        let m = Manifest::paka_default("/bin/x").with_max_threads(3);
        assert!(matches!(m.validate(), Err(LibosError::ManifestInvalid(_))));
    }

    #[test]
    fn tiny_enclave_rejected() {
        let m = Manifest::paka_default("/bin/x").with_enclave_size(1024);
        assert!(m.validate().is_err());
    }

    #[test]
    fn stats_require_debug() {
        let mut m = Manifest::paka_default("/bin/x");
        m.debug = false;
        assert!(m.validate().is_err());
        m.stats = false;
        m.validate().unwrap();
    }

    #[test]
    fn empty_entrypoint_rejected() {
        assert!(Manifest::paka_default("").validate().is_err());
    }

    #[test]
    fn trusted_bytes_sums_sizes() {
        let mut m = Manifest::paka_default("/bin/x");
        m.trusted_files.push(TrustedFile {
            path: "/lib/a".into(),
            size: 100,
            sha256: [0; 32],
        });
        m.trusted_files.push(TrustedFile {
            path: "/lib/b".into(),
            size: 250,
            sha256: [1; 32],
        });
        assert_eq!(m.trusted_bytes(), 350);
    }

    #[test]
    fn builder_overrides() {
        let m = Manifest::paka_default("/bin/x")
            .with_max_threads(50)
            .with_enclave_size(8 * 1024 * 1024 * 1024)
            .with_preheat(false)
            .with_exitless(true);
        assert_eq!(m.max_threads, 50);
        assert_eq!(m.enclave_size_bytes, 8 * 1024 * 1024 * 1024);
        assert!(!m.preheat_enclave);
        assert!(m.exitless);
    }
}
