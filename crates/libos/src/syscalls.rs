//! The syscall boundary.
//!
//! The paper's key mechanism: "applications running inside the enclave
//! cannot directly issue system calls. Instead … the application must
//! issue an OCALL to exit the enclave and then perform the operation"
//! (§II-B). The same workload code drives a [`SyscallInterface`]; whether
//! each call costs a ~300 ns native trap or a ~8 µs enclave round trip is
//! decided by which implementation is plugged in — that asymmetry, times
//! the call counts, *is* the paper's SGX overhead.

use shield5g_hmee::cost::CostModel;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;

/// A syscall issued by a workload, with the payload crossing the boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Syscall {
    /// Wait for socket readiness (Pistache's event loop).
    EpollWait,
    /// Modify the epoll interest set.
    EpollCtl,
    /// Accept a TCP connection.
    Accept,
    /// Read from a socket/file descriptor.
    Read {
        /// Bytes read (cross the boundary inbound).
        bytes: usize,
    },
    /// Write to a socket/file descriptor.
    Write {
        /// Bytes written (cross the boundary outbound).
        bytes: usize,
    },
    /// Close a descriptor.
    Close,
    /// Read the wall clock (Pistache timers call this constantly; inside
    /// an enclave there is no vDSO, so each one is a full OCALL).
    ClockGettime,
    /// Descriptor flag manipulation.
    Fcntl,
    /// Socket option setup.
    Setsockopt,
    /// Obtain peer address after accept.
    Getpeername,
    /// Create a socket.
    Socket,
    /// Bind a listening address.
    Bind,
    /// Start listening.
    Listen,
    /// Futex wait/wake (thread synchronisation).
    Futex,
    /// Memory management (brk/mmap).
    Mmap {
        /// Bytes mapped.
        bytes: usize,
    },
    /// Open a file by path.
    OpenFile,
    /// Kernel entropy (OpenSSL seeding).
    GetRandom,
}

impl Syscall {
    /// Bytes crossing the enclave boundary for this call.
    #[must_use]
    pub fn boundary_bytes(&self) -> usize {
        match self {
            Syscall::Read { bytes } | Syscall::Write { bytes } => *bytes,
            Syscall::Mmap { .. } => 0, // mapping metadata only
            Syscall::GetRandom => 48,
            _ => 32, // argument structs
        }
    }

    /// Host-kernel service time in nanoseconds (identical for native and
    /// shielded deployments — the *kernel* does the same work either way).
    #[must_use]
    pub fn host_ns(&self) -> u64 {
        let base = match self {
            Syscall::EpollWait => 650,
            Syscall::EpollCtl => 380,
            Syscall::Accept => 1_800,
            Syscall::Read { .. } => 450,
            Syscall::Write { .. } => 500,
            Syscall::Close => 350,
            Syscall::ClockGettime => 60,
            Syscall::Fcntl => 250,
            Syscall::Setsockopt => 300,
            Syscall::Getpeername => 280,
            Syscall::Socket => 900,
            Syscall::Bind => 500,
            Syscall::Listen => 450,
            Syscall::Futex => 550,
            Syscall::Mmap { .. } => 1_100,
            Syscall::OpenFile => 900,
            Syscall::GetRandom => 400,
        };
        base + (self.boundary_bytes() as u64) / 8
    }
}

/// What a workload issues syscalls through.
pub trait SyscallInterface {
    /// Executes one syscall, charging the clock appropriately.
    fn syscall(&mut self, env: &mut Env, call: Syscall);

    /// Whether calls cross an enclave boundary.
    fn is_shielded(&self) -> bool;

    /// Convenience: issue `call` `n` times.
    fn syscall_n(&mut self, env: &mut Env, call: Syscall, n: u32) {
        for _ in 0..n {
            self.syscall(env, call);
        }
    }
}

/// Direct syscalls: the container / monolithic deployment path.
#[derive(Clone, Debug)]
pub struct NativeSyscalls {
    cost: CostModel,
    calls: u64,
}

impl NativeSyscalls {
    /// Creates a native syscall interface under `cost`.
    #[must_use]
    pub fn new(cost: CostModel) -> Self {
        NativeSyscalls { cost, calls: 0 }
    }

    /// Total syscalls issued (for parity assertions against the shielded
    /// path: same workload, same count).
    #[must_use]
    pub fn call_count(&self) -> u64 {
        self.calls
    }
}

impl SyscallInterface for NativeSyscalls {
    fn syscall(&mut self, env: &mut Env, call: Syscall) {
        self.calls += 1;
        env.clock
            .advance(self.cost.native_syscall() + SimDuration::from_nanos(call.host_ns()));
    }

    fn is_shielded(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cost_scales_with_bytes() {
        assert!(Syscall::Read { bytes: 4096 }.host_ns() > Syscall::Read { bytes: 0 }.host_ns());
    }

    #[test]
    fn boundary_bytes_reflect_payload() {
        assert_eq!(Syscall::Write { bytes: 100 }.boundary_bytes(), 100);
        assert_eq!(Syscall::Close.boundary_bytes(), 32);
    }

    #[test]
    fn native_syscall_charges_clock_and_counts() {
        let mut env = Env::new(1);
        let mut sys = NativeSyscalls::new(CostModel::default());
        let t0 = env.clock.now();
        sys.syscall(&mut env, Syscall::Accept);
        assert!(env.clock.now() > t0);
        assert_eq!(sys.call_count(), 1);
        assert!(!sys.is_shielded());
    }

    #[test]
    fn syscall_n_repeats() {
        let mut env = Env::new(1);
        let mut sys = NativeSyscalls::new(CostModel::default());
        sys.syscall_n(&mut env, Syscall::ClockGettime, 30);
        assert_eq!(sys.call_count(), 30);
    }

    #[test]
    fn native_cost_is_sub_microsecond_for_cheap_calls() {
        let mut env = Env::new(1);
        let mut sys = NativeSyscalls::new(CostModel::default());
        let t0 = env.clock.now();
        sys.syscall(&mut env, Syscall::ClockGettime);
        let spent = env.clock.now() - t0;
        assert!(spent < SimDuration::from_micros(1), "{spent}");
    }
}
