//! The Gramine LibOS runtime: boot sequence and shielded syscalls.
//!
//! Boot reproduces the choreography the paper describes in §V-B1: "When a
//! P-AKA module is first deployed, Gramine and glibc initialize by opening
//! and reading the manifest file, trusted files, and loading shared
//! libraries. The initialization … invokes several hundred OCALLs", and
//! preheating "pre-faults all heap pages during initialization". The
//! resulting load time (~1 minute, Fig. 7), transition counts (Table III
//! "empty workload" row) and AEX totals all *emerge* from this sequence.

use crate::gsc::ShieldedImage;
use crate::syscalls::{Syscall, SyscallInterface};
use crate::LibosError;
use shield5g_hmee::counters::SgxCounters;
use shield5g_hmee::enclave::{Enclave, EnclaveBuilder};
use shield5g_hmee::platform::SgxPlatform;
use shield5g_sim::time::{SimDuration, SimTime};
use shield5g_sim::Env;

/// Fixed OCALLs Gramine + glibc issue at boot besides trusted-file loads
/// (manifest open/parse, brk/mmap storm, locale, TLS setup). Calibrated so
/// that the Table III "empty workload" EEXIT count (680) is reproduced for
/// the 210-file GSC base image: 50 + 3 × 210 = 680.
const GRAMINE_BOOT_OCALLS: u32 = 50;

/// OCALLs per trusted file at boot: open, chunked-read (amortised), close.
const OCALLS_PER_TRUSTED_FILE: u32 = 3;

/// In-enclave threads Gramine starts besides the application thread: IPC
/// helper, timer/async-event helper, pipe-TLS helper (§V-B2).
pub const HELPER_THREADS: u32 = 3;

/// One-way event injections at boot: host-to-enclave notifications
/// (signal and timer deliveries) enter via `EENTER` at a dedicated
/// handler TCS and park without a matching synchronous `EEXIT`. This is
/// what makes the paper's EENTER totals exceed EEXIT by a constant
/// (762 − 680 = 82 for the empty workload).
const BOOT_EVENT_INJECTIONS: u32 = 78;

/// Interrupt-driven AEX events during boot beyond page faults.
const BOOT_INTERRUPT_AEX: u32 = 10;

/// Gramine runtime + glibc measured into the enclave at build time.
const GRAMINE_RUNTIME_BYTES: u64 = 256 * 1024 * 1024;

/// Boot outcome metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BootReport {
    /// Virtual time from `docker run` to the server being operational
    /// (the paper's "enclave load time", Fig. 7).
    pub load_time: SimDuration,
    /// Counter state right after boot (Table III init contribution).
    pub counters: SgxCounters,
}

/// A booted Gramine instance hosting one shielded workload.
pub struct GramineLibos {
    enclave: Enclave,
    exitless: bool,
    stats: bool,
    boot_report: BootReport,
    boot_time: SimTime,
}

impl std::fmt::Debug for GramineLibos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GramineLibos")
            .field("enclave", &self.enclave)
            .field("exitless", &self.exitless)
            .field("load_time", &self.boot_report.load_time)
            .finish()
    }
}

impl GramineLibos {
    /// Boots a shielded image on `platform`: builds the enclave, verifies
    /// trusted files, starts helper threads, and optionally preheats.
    ///
    /// # Errors
    ///
    /// Returns [`LibosError::ManifestInvalid`] for bad manifests and
    /// [`LibosError::EnclaveBuild`] when the enclave cannot be created.
    pub fn boot(
        env: &mut Env,
        image: &ShieldedImage,
        platform: &SgxPlatform,
    ) -> Result<Self, LibosError> {
        image.manifest.validate()?;
        let boot_start = env.clock.now();

        let mut enclave = EnclaveBuilder::new(image.image_name.clone())
            .heap_bytes(image.manifest.enclave_size_bytes)
            .max_threads(image.manifest.max_threads)
            .debug(image.manifest.debug)
            .signer(image.signer)
            .measured_content("gramine-runtime", GRAMINE_RUNTIME_BYTES)
            .build(env, platform)?;

        // Process ECALL + helper thread ECALLs (these threads stay inside).
        enclave.ecall_enter(env).map_err(LibosError::EnclaveBuild)?;
        for _ in 0..HELPER_THREADS {
            enclave.ecall_enter(env).map_err(LibosError::EnclaveBuild)?;
        }

        // Gramine/glibc init OCALL storm.
        for _ in 0..GRAMINE_BOOT_OCALLS {
            enclave.ocall(env, 64);
        }

        // Trusted-file verification: open/read/close OCALLs per file plus
        // chunked hashing of the content (the dominant cost: Fig. 7).
        let trusted_bytes = image.manifest.trusted_bytes();
        for _ in &image.manifest.trusted_files {
            for _ in 0..OCALLS_PER_TRUSTED_FILE {
                enclave.ocall(env, 96);
            }
        }
        // Verification throughput varies run to run with I/O conditions
        // (the ~±0.5 s spread visible in the paper's Fig. 7 box plots).
        let nominal = enclave.cost().hash_time(trusted_bytes);
        let hash_time = SimDuration::from_nanos(env.rng.jitter(nominal.as_nanos(), 0.012));
        env.clock.advance(hash_time);

        // Demand-fault the boot working set (code/data first touch).
        let ws_pages = image.working_set_bytes.div_ceil(4096);
        enclave.demand_fault(env, ws_pages);

        // Preheat if configured (sgx.preheat_enclave = true).
        if image.manifest.preheat_enclave {
            enclave.prefault_heap(env);
        }

        // Host-to-enclave event injections: one-way EENTERs.
        for _ in 0..BOOT_EVENT_INJECTIONS {
            enclave.inject_event_entry();
            env.clock.advance(enclave.cost().eenter());
        }

        // Residual boot interrupts.
        for _ in 0..BOOT_INTERRUPT_AEX {
            enclave.aex(env);
        }

        let load_time = env.clock.now() - boot_start;
        env.log.record(
            env.clock.now(),
            "libos",
            format!(
                "{} booted in {} ({} trusted files)",
                image.image_name,
                load_time,
                image.manifest.trusted_files.len()
            ),
        );
        let report = BootReport {
            load_time,
            counters: enclave.counters(),
        };
        Ok(GramineLibos {
            enclave,
            exitless: image.manifest.exitless,
            stats: image.manifest.stats,
            boot_report: report,
            boot_time: env.clock.now(),
        })
    }

    /// The boot metrics.
    #[must_use]
    pub fn boot_report(&self) -> BootReport {
        self.boot_report
    }

    /// The instant boot completed.
    #[must_use]
    pub fn boot_completed_at(&self) -> SimTime {
        self.boot_time
    }

    /// Whether Gramine statistics collection is on (`stats` manifest key).
    #[must_use]
    pub fn stats_enabled(&self) -> bool {
        self.stats
    }

    /// Current SGX statistics (requires `stats`; real Gramine only reports
    /// them in debug builds, which the manifest validation enforces).
    #[must_use]
    pub fn sgx_stats(&self) -> SgxCounters {
        self.enclave.counters()
    }

    /// Immutable access to the underlying enclave.
    #[must_use]
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Mutable access to the underlying enclave (vault, attestation).
    pub fn enclave_mut(&mut self) -> &mut Enclave {
        &mut self.enclave
    }

    /// Injects one asynchronous host event (timerfd expiry, signal): a
    /// one-way `EENTER` into the event-handler TCS.
    pub fn inject_event(&mut self, env: &mut Env) {
        self.enclave.inject_event_entry();
        env.clock.advance(self.enclave.cost().eenter());
    }

    /// Services one hardware interrupt while enclave code runs (AEX).
    pub fn interrupt(&mut self, env: &mut Env) {
        self.enclave.aex(env);
    }
}

impl SyscallInterface for GramineLibos {
    fn syscall(&mut self, env: &mut Env, call: Syscall) {
        if self.exitless {
            // Exitless mode (§V-B7): a spinning untrusted helper performs
            // the syscall; no EENTER/EEXIT, only shared-memory handoff.
            let handoff = SimDuration::from_nanos(600 + call.boundary_bytes() as u64);
            env.clock
                .advance(handoff + SimDuration::from_nanos(call.host_ns()));
        } else {
            self.enclave.ocall(env, call.boundary_bytes());
            env.clock.advance(SimDuration::from_nanos(call.host_ns()));
        }
    }

    fn is_shielded(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsc::{transform, ImageSpec};
    use crate::manifest::Manifest;

    fn boot_world(preheat: bool) -> (Env, GramineLibos) {
        let mut env = Env::new(5);
        let platform = SgxPlatform::new(&mut env);
        // 210-file GSC base image (the Table III empty-workload shape).
        let image = ImageSpec::synthetic("empty-workload", "/gramine/app", 1_900_000_000, 209)
            .with_working_set(2 * 1024 * 1024);
        let manifest = Manifest::paka_default("x")
            .with_enclave_size(192 * 1024 * 1024)
            .with_preheat(preheat);
        let shielded = transform(&image, manifest, &[9; 32]).unwrap();
        assert_eq!(shielded.manifest.trusted_files.len(), 210);
        let libos = GramineLibos::boot(&mut env, &shielded, &platform).unwrap();
        (env, libos)
    }

    #[test]
    fn empty_workload_boot_counters_match_table3_shape() {
        let (_env, libos) = boot_world(true);
        let c = libos.boot_report().counters;
        // Paper Table III, "Empty workload": EENTER 762, EEXIT 680.
        assert_eq!(c.eexit, 680, "EEXIT after boot");
        assert_eq!(c.eenter, 762, "EENTER after boot");
        // AEX ≈ 49674: 49152 preheat faults + 512 working-set faults + 10.
        assert_eq!(c.aex, 49_674, "AEX after boot");
    }

    #[test]
    fn boot_takes_close_to_a_minute() {
        let (_env, libos) = boot_world(true);
        let load = libos.boot_report().load_time;
        assert!(load > SimDuration::from_secs(45), "load {load}");
        assert!(load < SimDuration::from_secs(75), "load {load}");
    }

    #[test]
    fn preheat_shifts_faults_to_boot() {
        let (_e1, with) = boot_world(true);
        let (_e2, without) = boot_world(false);
        assert!(with.boot_report().counters.aex > without.boot_report().counters.aex);
        assert!(with.boot_report().load_time > without.boot_report().load_time);
    }

    #[test]
    fn shielded_syscall_is_an_ocall() {
        let (mut env, mut libos) = boot_world(true);
        let before = libos.sgx_stats();
        libos.syscall(&mut env, Syscall::EpollWait);
        let delta = libos.sgx_stats().delta_since(&before);
        assert_eq!(delta.ocalls, 1);
        assert_eq!(delta.eenter, 1);
        assert_eq!(delta.eexit, 1);
        assert!(libos.is_shielded());
    }

    #[test]
    fn shielded_syscall_costs_microseconds() {
        let (mut env, mut libos) = boot_world(true);
        let t0 = env.clock.now();
        libos.syscall(&mut env, Syscall::Read { bytes: 512 });
        let spent = env.clock.now() - t0;
        assert!(spent > SimDuration::from_micros(7), "{spent}");
        assert!(spent < SimDuration::from_micros(15), "{spent}");
    }

    #[test]
    fn exitless_mode_avoids_transitions() {
        let mut env = Env::new(6);
        let platform = SgxPlatform::new(&mut env);
        let image = ImageSpec::synthetic("exitless", "/app", 100_000_000, 50);
        let manifest = Manifest::paka_default("x").with_exitless(true);
        let shielded = transform(&image, manifest, &[9; 32]).unwrap();
        let mut libos = GramineLibos::boot(&mut env, &shielded, &platform).unwrap();
        let before = libos.sgx_stats();
        let t0 = env.clock.now();
        libos.syscall(&mut env, Syscall::EpollWait);
        let spent = env.clock.now() - t0;
        let delta = libos.sgx_stats().delta_since(&before);
        assert_eq!(delta.ocalls, 0);
        assert_eq!(delta.eenter, 0);
        assert!(spent < SimDuration::from_micros(3), "{spent}");
    }

    #[test]
    fn event_injection_is_one_way_eenter() {
        let (mut env, mut libos) = boot_world(true);
        let before = libos.sgx_stats();
        libos.inject_event(&mut env);
        let delta = libos.sgx_stats().delta_since(&before);
        assert_eq!(delta.eenter, 1);
        assert_eq!(delta.eexit, 0);
    }

    #[test]
    fn interrupt_is_aex() {
        let (mut env, mut libos) = boot_world(true);
        let before = libos.sgx_stats();
        libos.interrupt(&mut env);
        let delta = libos.sgx_stats().delta_since(&before);
        assert_eq!(delta.aex, 1);
        assert_eq!(delta.eresume, 1);
        assert_eq!(delta.eenter, 0);
    }

    #[test]
    fn invalid_manifest_rejected_at_boot() {
        let mut env = Env::new(7);
        let platform = SgxPlatform::new(&mut env);
        let image = ImageSpec::synthetic("bad", "/app", 1_000_000, 5);
        let manifest = Manifest::paka_default("x");
        let mut shielded = transform(&image, manifest, &[9; 32]).unwrap();
        shielded.manifest.max_threads = 2; // tamper post-signing
        assert!(GramineLibos::boot(&mut env, &shielded, &platform).is_err());
    }

    #[test]
    fn vault_reachable_through_libos() {
        let (mut env, mut libos) = boot_world(true);
        libos
            .enclave_mut()
            .vault_write(&mut env, "opc", b"operator-key");
        assert_eq!(
            libos.enclave_mut().vault_read(&mut env, "opc").unwrap(),
            b"operator-key"
        );
        assert!(!libos
            .enclave()
            .epc_snapshot()
            .contains_plaintext(b"operator-key"));
    }
}
