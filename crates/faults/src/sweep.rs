//! The `fault_sweep` recovery experiment.
//!
//! One open-loop mass-registration run against a real eUDM replica pool
//! while faults fire at all three layers the paper's deployment has to
//! survive:
//!
//! 1. **SBI messages** — a seeded [`SbiFaultPlan`] drops, delays, or
//!    5xx-replaces deliveries on the engine;
//! 2. **enclave instances** — a crash marks one replica's enclave lost,
//!    so its next request pays the full ~60 s reload (Fig. 7) before
//!    serving again;
//! 3. **whole replicas** — a kill takes host and enclave down together;
//!    the pool fails over to a warm standby and the frontend purges the
//!    dead replica's pre-generated AVs
//!    ([`AvCache::purge_where`]).
//!
//! Recovery is client-driven: every failed completion is retransmitted
//! under a capped-exponential [`RetryPolicy`] with deterministic jitter,
//! re-routed through the pool's *current* ring (so post-failover retries
//! land on survivors), and abandoned — fail-fast — once the budget is
//! spent. The run reports MTTR, goodput under fault, and retry
//! amplification alongside the usual pool figures.
//!
//! Everything is a pure function of the seed: workload, fault schedule,
//! and retry jitter come from separately forked [`DetRng`] streams.

use crate::plan::{FaultConfig, FaultCounts, SbiFaultPlan};
use shield5g_core::paka::PakaKind;
use shield5g_crypto::keys::ServingNetworkName;
use shield5g_mw::{RetryPolicy, RetryStats};
use shield5g_nf::backend::{decode_he_av_batch, sqn_add, UdmAkaBatchRequest, UdmAkaRequest};
use shield5g_ran::workload::{poisson_registrations, test_supi, WorkloadSpec};
use shield5g_scale::avcache::{AvCache, AvCacheConfig};
use shield5g_scale::metrics::{PoolReport, RecoveryStats, RecoveryTracker, RunRecorder};
use shield5g_scale::pool::{replica_addr, EnclavePool, FailoverReport, PoolConfig};
use shield5g_scale::queue::QueueConfig;
use shield5g_sim::engine::{Completion, Engine, ERROR_HEADER, FAULT_HEADER};
use shield5g_sim::http::HttpRequest;
use shield5g_sim::rng::DetRng;
use shield5g_sim::time::{SimDuration, SimTime};
use shield5g_sim::Env;
use std::collections::BTreeMap;

/// Long-term key of every workload subscriber (the standard test K).
pub(crate) const K: [u8; 16] = [0x46; 16];
const OPC: [u8; 16] = [0xcd; 16];

/// Frontend cost of serving an authentication from the AV cache
/// (matches the pool-scaling harness).
const CACHE_HIT_NANOS: u64 = 1_500;

/// Parameters of one fault-injection experiment.
#[derive(Clone, Copy, Debug)]
pub struct FaultSweepConfig {
    /// Ready replicas on the ring.
    pub replicas: u32,
    /// Preheated spares on the bench — what failover promotes.
    pub warm_standby: u32,
    /// Offered load in authentications per second.
    pub offered_per_sec: f64,
    /// Arrivals in the trace.
    pub arrivals: u32,
    /// Subscriber population.
    pub ues: u32,
    /// Per-replica admission queue parameters.
    pub queue: QueueConfig,
    /// AV pre-generation; `None` = one enclave round trip per request.
    pub cache: Option<AvCacheConfig>,
    /// SBI message-level fault rates and shapes (layer 1).
    pub sbi: FaultConfig,
    /// Client supervision retries guarding every pool request.
    pub retry: RetryPolicy,
    /// Kill the replica owning the n-th arrival's SUPI just before that
    /// arrival is offered (layer 3). At most one kill per run.
    pub kill_at: Option<u32>,
    /// Crash the enclave of the replica owning the n-th arrival's SUPI
    /// (layer 2): it stays on the ring and its next request pays the
    /// full reload.
    pub crash_at: Option<u32>,
    /// AEX burst injected into the crashed enclave alongside the crash
    /// (interrupt storm during the failure event).
    pub aex_storm: u64,
    /// EPC thrash pages charged to every replica for the whole run
    /// (a noisy-neighbour squeezing the EPC).
    pub thrash_pages: u64,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        FaultSweepConfig {
            replicas: 2,
            warm_standby: 1,
            offered_per_sec: 400.0,
            arrivals: 200,
            ues: 40,
            queue: QueueConfig::default(),
            cache: None,
            sbi: FaultConfig::default(),
            retry: RetryPolicy::supervision(),
            kill_at: None,
            crash_at: None,
            aex_storm: 0,
            thrash_pages: 0,
        }
    }
}

/// Results of one fault-injection run.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// The usual pool figures (throughput, response, per-replica load).
    pub pool: PoolReport,
    /// MTTR / goodput-under-fault / retry amplification.
    pub recovery: RecoveryStats,
    /// What the SBI plan injected.
    pub sbi: FaultCounts,
    /// Client supervision-retry counters.
    pub retry: RetryStats,
    /// The failover, when a replica was killed.
    pub failover: Option<FailoverReport>,
    /// Pre-generated AVs purged when their replica died.
    pub purged_avs: usize,
    /// Enclave reloads paid for injected crashes.
    pub crash_recoveries: u64,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}; {}; sbi drop/delay/5xx {}/{}/{}, {} retransmissions \
             ({} recovered, {} exhausted), {} crash reloads",
            self.pool,
            self.recovery,
            self.sbi.drops,
            self.sbi.delays,
            self.sbi.errors,
            self.retry.retries,
            self.retry.recovered,
            self.retry.exhausted,
            self.crash_recoveries,
        )
    }
}

/// One in-flight (possibly retransmitted) pool request.
struct Pending {
    supi: String,
    req: HttpRequest,
    attempt: u32,
}

/// Mutable run state threaded through the settle loop.
struct SweepState {
    cache: Option<AvCache>,
    sqn_counters: BTreeMap<String, [u8; 6]>,
    recorder: RunRecorder,
    recovery: RecoveryTracker,
    stats: RetryStats,
    in_flight: BTreeMap<u64, Pending>,
    retry_rng: DetRng,
    policy: RetryPolicy,
}

impl SweepState {
    /// Absorbs a batch of engine completions: successes feed the cache
    /// and the recorder; failures are retransmitted (re-routed through
    /// the pool's current ring, never earlier than `floor`) until the
    /// retry budget is spent, then abandoned fail-fast.
    fn settle(
        &mut self,
        engine: &mut Engine,
        pool: &EnclavePool,
        floor: SimTime,
        done: Vec<Completion>,
    ) {
        for completion in done {
            let pending = self
                .in_flight
                .remove(&completion.tag)
                .expect("completion for unscheduled tag");
            let finished = completion.finished;
            if completion.response.is_success() {
                self.recovery.success(finished);
                if let Some(c) = self.cache.as_mut() {
                    let avs = decode_he_av_batch(&completion.response.body).expect("batch wire");
                    c.put_batch(&pending.supi, avs);
                    // The missing request consumes the batch head itself.
                    let _ = c.pop_uncounted(&pending.supi);
                }
                if pending.attempt > 0 {
                    self.stats.recovered += 1;
                }
                self.recorder
                    .served(completion.submitted, completion.queued, finished);
                continue;
            }
            // A failure marked by the fault layer is a manifested fault;
            // sheds (admission control) are failures but not faults.
            if completion.response.header(FAULT_HEADER).is_some() {
                self.recovery.fault(finished);
            }
            self.recovery.failure(finished);
            let retryable = completion.response.status >= 500
                && completion.response.header(ERROR_HEADER) != Some("loop");
            if retryable && pending.attempt < self.policy.max_retries {
                let attempt = pending.attempt + 1;
                self.stats.retries += 1;
                let backoff = self.policy.backoff(attempt);
                let jittered = SimDuration::from_nanos(
                    self.retry_rng
                        .jitter(backoff.as_nanos(), self.policy.jitter),
                );
                // Not before `floor`: the engine has already run up to it.
                let at = (finished + jittered).max(floor);
                let id = pool.route(&pending.supi);
                let tag = engine.schedule_request(
                    at,
                    &replica_addr(pool.kind(), id),
                    pending.req.clone(),
                );
                self.in_flight.insert(tag, Pending { attempt, ..pending });
            } else {
                self.stats.exhausted += 1;
                self.recorder.shed();
            }
        }
    }
}

/// Runs one fault-injection experiment (see the module docs).
///
/// # Panics
///
/// Panics when `cfg.kill_at` fires with a single-replica ring and no
/// standby available would leave the ring empty, or when a cache refill
/// response fails to decode.
#[must_use]
pub fn fault_sweep(seed: u64, cfg: &FaultSweepConfig) -> FaultReport {
    let mut env = Env::new(seed);
    env.log.disable();
    let mut pool = EnclavePool::deploy(
        &mut env,
        PakaKind::EUdm,
        PoolConfig {
            replicas: cfg.replicas,
            warm_standby: cfg.warm_standby,
            queue: cfg.queue,
            ..PoolConfig::default()
        },
    );
    for i in 0..cfg.ues {
        pool.provision_subscriber(&mut env, &test_supi(i), K);
    }
    if cfg.thrash_pages > 0 {
        for replica in pool.replicas() {
            replica
                .module()
                .borrow_mut()
                .set_epc_thrash(cfg.thrash_pages);
        }
    }
    pool.rebaseline();

    let mut wl_rng = env.rng.fork("fault-workload");
    let trace = poisson_registrations(
        &mut wl_rng,
        env.clock.now(),
        &WorkloadSpec {
            ues: cfg.ues,
            arrivals: cfg.arrivals,
            rate_per_sec: cfg.offered_per_sec,
        },
    );

    let mut engine = Engine::new();
    pool.register_on(&mut engine);
    let plan = SbiFaultPlan::install(pool.fault_switch(), &mut env, cfg.sbi);

    let mut state = SweepState {
        cache: cfg.cache.map(AvCache::new),
        sqn_counters: BTreeMap::new(),
        recorder: RunRecorder::new(),
        recovery: RecoveryTracker::new(),
        stats: RetryStats::default(),
        in_flight: BTreeMap::new(),
        retry_rng: env.rng.fork("fault-retry"),
        policy: cfg.retry,
    };
    let mut failover: Option<FailoverReport> = None;
    let mut purged_avs = 0usize;

    for (i, arrival) in trace.iter().enumerate() {
        let idx = i as u32;
        // A cold failover (or crash reload) can push the clock past the
        // next arrival instants; offered load then piles up at `now`,
        // which is exactly what an outage does to a real frontend.
        let horizon = arrival.at.max(env.clock.now());
        let done = engine.run_until(&mut env, horizon);
        state.settle(&mut engine, &pool, horizon, done);

        if cfg.kill_at == Some(idx) {
            let victim = pool.route(&arrival.supi);
            // The SUPIs whose pre-generated AVs die with the replica —
            // computed against the ring *before* the kill remaps it.
            let owned: Vec<String> = (0..cfg.ues)
                .map(test_supi)
                .filter(|s| pool.route(s) == victim)
                .collect();
            let report = pool.fail_over_on_engine(&mut env, &mut engine, victim);
            purged_avs = state
                .cache
                .as_mut()
                .map_or(0, |c| c.purge_where(|s| owned.iter().any(|o| o == s)));
            state.recovery.fault(report.at);
            failover = Some(report);
        }
        if cfg.crash_at == Some(idx) {
            let victim = pool.route(&arrival.supi);
            let module = pool.replica(victim).module();
            let mut m = module.borrow_mut();
            if m.inject_crash(&mut env) {
                state.recovery.fault(env.clock.now());
            }
            if cfg.aex_storm > 0 {
                m.inject_aex_storm(&mut env, cfg.aex_storm);
            }
        }

        state.recorder.arrival(horizon);
        if let Some(c) = state.cache.as_mut() {
            if c.take(&arrival.supi).is_some() {
                let finish = horizon + SimDuration::from_nanos(CACHE_HIT_NANOS);
                state.recovery.success(finish);
                state.recorder.served(horizon, SimDuration::ZERO, finish);
                continue;
            }
        }
        let id = pool.route(&arrival.supi);
        let request = match state.cache.as_ref() {
            Some(c) => batch_request(&mut env, c, &arrival.supi),
            None => single_request(&mut env, &mut state.sqn_counters, &arrival.supi),
        };
        state.stats.calls += 1;
        let tag = engine.schedule_request(horizon, &replica_addr(pool.kind(), id), request.clone());
        state.in_flight.insert(
            tag,
            Pending {
                supi: arrival.supi.clone(),
                req: request,
                attempt: 0,
            },
        );
    }
    // Drain: each settle pass may retransmit, scheduling fresh work.
    while !state.in_flight.is_empty() {
        let done = engine.run_until_idle(&mut env);
        if done.is_empty() {
            break;
        }
        let floor = env.clock.now();
        state.settle(&mut engine, &pool, floor, done);
    }
    assert!(state.in_flight.is_empty(), "requests left in flight");
    pool.absorb_engine(&engine);

    let crash_recoveries = pool
        .replicas()
        .iter()
        .map(|r| r.module().borrow().crash_recoveries())
        .sum();
    let sbi = plan.map_or_else(FaultCounts::default, |p| p.borrow().counts());
    let SweepState {
        cache,
        recorder,
        recovery,
        stats,
        ..
    } = state;
    let recovery = recovery.finish((stats.calls, stats.retries));
    let pool_report = recorder.finish(&pool, cache.map(|c| c.stats()));
    recovery.record_obs("sweep");
    pool_report.record_obs("faulted");
    {
        use shield5g_obs::{hub as obs, labels};
        obs::count("faults", "sbi", labels::DROPS, sbi.drops);
        obs::count("faults", "sbi", labels::DELAYS, sbi.delays);
        obs::count("faults", "sbi", labels::ERRORS, sbi.errors);
        obs::count("faults", "retry", labels::RETRANSMISSIONS, stats.retries);
        obs::count("faults", "crash", labels::RELOADS, crash_recoveries);
    }
    FaultReport {
        recovery,
        pool: pool_report,
        sbi,
        retry: stats,
        failover,
        purged_avs,
        crash_recoveries,
    }
}

/// One fully-specified point of the fault-sweep bench: scenario label,
/// the SBI fault rate the point represents (0 for the instance-failure
/// scenarios), seed, and config. `Copy + Send`, so a parallel sweep
/// runner can move points onto worker threads; running a point is a
/// pure function of this struct.
#[derive(Clone, Copy, Debug)]
pub struct FaultSweepPoint {
    /// Scenario label the bench reports (`sbi_fault_rate`,
    /// `replica_kill`, `enclave_crash`).
    pub scenario: &'static str,
    /// Total SBI fault rate of the point (split evenly across
    /// drop/delay/5xx).
    pub rate: f64,
    /// Seed of this point's run.
    pub seed: u64,
    /// The full experiment configuration.
    pub cfg: FaultSweepConfig,
}

/// The fault-sweep bench's point list: the SBI-rate availability curve
/// (layer 1), a replica kill with warm-standby failover (layer 3), and
/// an enclave crash with AEX storm (layer 2). `smoke` shrinks every
/// point to CI-smoke size.
#[must_use]
pub fn bench_points(smoke: bool) -> Vec<FaultSweepPoint> {
    let fault_rates: &[f64] = if smoke {
        &[0.06]
    } else {
        &[0.0, 0.02, 0.05, 0.10, 0.20, 0.35]
    };
    let mut points: Vec<FaultSweepPoint> = fault_rates
        .iter()
        .map(|&rate| FaultSweepPoint {
            scenario: "sbi_fault_rate",
            rate,
            seed: 900,
            cfg: FaultSweepConfig {
                arrivals: if smoke { 80 } else { 240 },
                sbi: FaultConfig {
                    drop_rate: rate / 3.0,
                    delay_rate: rate / 3.0,
                    error_rate: rate / 3.0,
                    ..FaultConfig::default()
                },
                ..FaultSweepConfig::default()
            },
        })
        .collect();
    points.push(FaultSweepPoint {
        scenario: "replica_kill",
        rate: 0.0,
        seed: 910,
        cfg: FaultSweepConfig {
            arrivals: if smoke { 80 } else { 220 },
            ues: 12,
            cache: Some(AvCacheConfig {
                batch_size: 8,
                capacity_per_supi: 16,
            }),
            kill_at: Some(if smoke { 30 } else { 110 }),
            ..FaultSweepConfig::default()
        },
    });
    points.push(FaultSweepPoint {
        scenario: "enclave_crash",
        rate: 0.0,
        seed: 920,
        cfg: FaultSweepConfig {
            arrivals: if smoke { 80 } else { 160 },
            crash_at: Some(if smoke { 20 } else { 40 }),
            aex_storm: 500,
            ..FaultSweepConfig::default()
        },
    });
    points
}

/// Runs one fault-sweep point.
#[must_use]
pub fn run_point(point: &FaultSweepPoint) -> FaultReport {
    fault_sweep(point.seed, &point.cfg)
}

fn snn() -> ServingNetworkName {
    ServingNetworkName::new("001", "01")
}

pub(crate) fn single_request(
    env: &mut Env,
    sqn_counters: &mut BTreeMap<String, [u8; 6]>,
    supi: &str,
) -> HttpRequest {
    let sqn = sqn_counters
        .entry(supi.to_owned())
        .and_modify(|s| *s = sqn_add(s, 1))
        .or_insert([0, 0, 0, 0, 0, 1]);
    HttpRequest::post(
        "/eudm/generate-av",
        UdmAkaRequest {
            supi: supi.into(),
            opc: OPC.into(),
            rand: env.rng.bytes(),
            sqn: *sqn,
            amf_field: [0x80, 0],
            snn: snn(),
        }
        .encode(),
    )
}

pub(crate) fn batch_request(env: &mut Env, cache: &AvCache, supi: &str) -> HttpRequest {
    HttpRequest::post(
        "/eudm/generate-av-batch",
        UdmAkaBatchRequest {
            supi: supi.into(),
            opc: OPC.into(),
            rand_seed: env.rng.bytes(),
            sqn_start: cache.next_sqn(supi),
            amf_field: [0x80, 0],
            snn: snn(),
            count: cache.batch_size(),
        }
        .encode(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_reports_clean_recovery() {
        let report = fault_sweep(
            700,
            &FaultSweepConfig {
                arrivals: 160,
                ..FaultSweepConfig::default()
            },
        );
        assert_eq!(report.recovery.faults, 0);
        assert_eq!(report.recovery.failed, 0);
        assert!((report.recovery.retry_amplification - 1.0).abs() < 1e-9);
        assert_eq!(report.sbi.total(), 0);
        assert_eq!(report.retry.retries, 0);
        assert_eq!(report.pool.served, 160);
        assert_eq!(report.pool.shed, 0);
        assert!(report.failover.is_none());
        assert_eq!(report.crash_recoveries, 0);
    }

    #[test]
    fn same_seed_same_faulted_report() {
        let cfg = FaultSweepConfig {
            arrivals: 150,
            sbi: FaultConfig {
                drop_rate: 0.04,
                delay_rate: 0.06,
                error_rate: 0.04,
                ..FaultConfig::default()
            },
            kill_at: Some(60),
            ..FaultSweepConfig::default()
        };
        let a = fault_sweep(701, &cfg);
        let b = fault_sweep(701, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = fault_sweep(702, &cfg);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "different seeds must diverge"
        );
    }

    #[test]
    fn sbi_faults_recover_via_supervision_retries() {
        let report = fault_sweep(
            703,
            &FaultSweepConfig {
                arrivals: 200,
                sbi: FaultConfig {
                    drop_rate: 0.05,
                    error_rate: 0.05,
                    ..FaultConfig::default()
                },
                ..FaultSweepConfig::default()
            },
        );
        assert!(report.sbi.total() > 0, "rates this high must fire");
        assert!(report.recovery.failed > 0);
        assert!(report.retry.retries > 0);
        assert!(report.retry.recovered > 0, "retries must recover failures");
        assert!(report.recovery.retry_amplification > 1.0);
        assert!(report.recovery.mttr > SimDuration::ZERO);
        assert!(report.recovery.goodput_per_sec > 0.0);
        // The retry budget comfortably covers ~10% per-message failure:
        // (almost) everything is eventually served.
        assert!(
            report.pool.served + report.pool.shed == u64::from(200u32) && report.pool.served >= 195,
            "served {} shed {}",
            report.pool.served,
            report.pool.shed
        );
    }

    #[test]
    fn replica_death_fails_over_and_purges_its_avs() {
        let report = fault_sweep(
            704,
            &FaultSweepConfig {
                arrivals: 220,
                ues: 12,
                cache: Some(AvCacheConfig {
                    batch_size: 8,
                    capacity_per_supi: 16,
                }),
                kill_at: Some(110),
                ..FaultSweepConfig::default()
            },
        );
        let failover = report.failover.expect("a replica was killed");
        assert!(failover.standby_promoted, "warm standby must take over");
        assert!(
            failover.failover < SimDuration::from_millis(1),
            "warm failover cost {}",
            failover.failover
        );
        assert!(
            report.purged_avs > 0,
            "the dead replica's pre-generated AVs must be purged"
        );
        assert!(report.recovery.faults >= 1);
        assert!(report.recovery.goodput_per_sec > 0.0);
        // The pool keeps serving through the death: the overwhelming
        // majority of arrivals still complete.
        assert!(
            report.pool.served >= report.pool.arrivals * 9 / 10,
            "served {}/{}",
            report.pool.served,
            report.pool.arrivals
        );
    }

    #[test]
    fn enclave_crash_is_survived_at_reload_cost() {
        let report = fault_sweep(
            705,
            &FaultSweepConfig {
                arrivals: 160,
                crash_at: Some(40),
                aex_storm: 500,
                ..FaultSweepConfig::default()
            },
        );
        assert_eq!(
            report.crash_recoveries, 1,
            "the crashed enclave must reload exactly once"
        );
        assert!(report.recovery.faults >= 1);
        // The reload costs ~a minute of virtual time: the victim shard's
        // requests see it, the other shard keeps the goodput above zero.
        assert!(report.recovery.goodput_per_sec > 0.0);
        assert!(
            report.pool.response.max > SimDuration::from_secs(30),
            "someone must have paid the reload: max {}",
            report.pool.response.max
        );
    }

    #[test]
    fn epc_thrash_degrades_but_still_serves() {
        let base = FaultSweepConfig {
            arrivals: 120,
            ..FaultSweepConfig::default()
        };
        let clean = fault_sweep(706, &base);
        let thrashed = fault_sweep(
            706,
            &FaultSweepConfig {
                thrash_pages: 4 * 1024 * 1024,
                ..base
            },
        );
        assert_eq!(thrashed.pool.served + thrashed.pool.shed, 120);
        // Thrash pages over-commit the EPC, so every request pays EWB/ELDU
        // paging round trips on top of its normal choreography — visible
        // as a strictly slower (but still served) workload.
        assert!(
            thrashed.pool.response.median > clean.pool.response.median,
            "EPC thrash must slow requests: {} vs {}",
            thrashed.pool.response.median,
            clean.pool.response.median
        );
        assert_eq!(thrashed.recovery.failed, 0, "degradation, not failure");
    }
}
