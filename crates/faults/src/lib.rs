//! Deterministic fault injection for the shielded control plane
//! (`shield5g-faults`).
//!
//! The paper argues (§VI, KI 2/8/22) that moving AKA into enclaves must
//! not make the control plane *more* fragile: enclaves crash (EPC power
//! events, host reboots, `EREMOVE` by a hostile OS), their ~60 s load
//! time (Fig. 7) turns every cold restart into an outage, and the SBI
//! mesh between NFs drops and delays messages like any other network.
//! This crate injects those failures **deterministically** and measures
//! how the recovery machinery — supervision retries, warm-standby
//! failover, AV-cache invalidation — holds up:
//!
//! - [`plan`] — a seed-driven [`plan::SbiFaultPlan`] implementing the
//!   engine's `FaultInjector` hook: per-message drop / delay / 5xx
//!   decisions drawn from a forked [`shield5g_sim::rng::DetRng`], never
//!   ambient randomness. Same seed ⇒ byte-identical fault schedule; all
//!   rates zero ⇒ nothing is installed and nothing is drawn, so
//!   fault-free traces are bit-for-bit those of a build without this
//!   crate.
//! - [`sweep`] — the `fault_sweep` experiment: an open-loop registration
//!   workload against a real replica pool while faults fire at all three
//!   layers (SBI messages, enclave instances, whole replicas), with
//!   supervision retries at the client and warm-standby failover in the
//!   pool. Reports MTTR, goodput under fault, and retry amplification.
//! - [`degradation`] — the `degradation_sweep` graceful-degradation
//!   experiment: the SBI fault rate ramps while priority shedding,
//!   health-gated routing, and AV-cache brownout modes hold the
//!   emergency class up; reports availability / goodput / shed-rate
//!   curves per priority class.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degradation;
pub mod plan;
pub mod sweep;

pub use degradation::{
    brownout_config, degradation_points, degradation_sweep, pressured_config,
    run_degradation_point, BrownoutPolicy, ClassReport, DegradationConfig, DegradationPoint,
    DegradationReport,
};
pub use plan::{FaultConfig, FaultCounts, SbiFaultPlan};
pub use sweep::{
    bench_points, fault_sweep, run_point, FaultReport, FaultSweepConfig, FaultSweepPoint,
};
