//! Seed-driven SBI fault plans.
//!
//! An [`SbiFaultPlan`] sits behind a world's
//! [`FaultSwitch`](shield5g_mw::FaultSwitch) — the shared slot every
//! endpoint's [`FaultLayer`](shield5g_mw::FaultLayer) consults — and
//! decides, per delivered message, whether to drop it (the waiting side
//! eats a supervision timeout), delay it (congestion / rerouting), or
//! replace it with a transport-level 5xx (connection reset, proxy
//! failure). Every decision is drawn from a [`DetRng`] forked off the
//! run's seeded environment, so the fault schedule is a pure function of
//! the seed — two same-seed runs inject byte-identical faults at
//! byte-identical instants.
//!
//! **The zero-rate invariant**: [`SbiFaultPlan::install`] with a config
//! whose rates are all zero installs nothing and — critically — forks
//! nothing. A `DetRng::fork` consumes a draw from the parent stream, so
//! even a dormant plan would perturb every subsequent random choice in
//! the run. Returning `None` leaves the switch disarmed and keeps
//! fault-free runs bit-identical to builds that have never heard of this
//! crate (the regression gate the determinism suite enforces).

use shield5g_mw::FaultSwitch;
use shield5g_sim::engine::{FaultAction, FaultInjector};
use shield5g_sim::rng::DetRng;
use shield5g_sim::time::SimDuration;
use shield5g_sim::Env;
use std::cell::RefCell;
use std::rc::Rc;

/// Per-message fault probabilities and shapes for one SBI plan.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Probability a message is lost (caller waits out `drop_timeout`).
    pub drop_rate: f64,
    /// Probability a message is delivered `delay` (± jitter) late.
    pub delay_rate: f64,
    /// Probability a message is replaced by `error_status`.
    pub error_rate: f64,
    /// Base in-network delay for delayed messages.
    pub delay: SimDuration,
    /// Fractional jitter (±spread) on the delay, drawn from the plan RNG.
    pub delay_jitter: f64,
    /// Supervision-timer expiry charged to the caller of a dropped
    /// message before it sees the synthesized 504.
    pub drop_timeout: SimDuration,
    /// Status of injected transport errors (a 5xx).
    pub error_status: u16,
}

impl Default for FaultConfig {
    /// All rates zero (a no-op plan); shape parameters sized to the
    /// simulated SBI: 2 ms in-network delay ±30%, a 50 ms supervision
    /// timeout (bracketing the supervision retry backoffs), 503 errors.
    fn default() -> Self {
        FaultConfig {
            drop_rate: 0.0,
            delay_rate: 0.0,
            error_rate: 0.0,
            delay: SimDuration::from_millis(2),
            delay_jitter: 0.3,
            drop_timeout: SimDuration::from_millis(50),
            error_status: 503,
        }
    }
}

impl FaultConfig {
    /// Whether this config can ever inject anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.drop_rate > 0.0 || self.delay_rate > 0.0 || self.error_rate > 0.0
    }
}

/// What a plan injected over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Messages dropped.
    pub drops: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Messages replaced by 5xx errors.
    pub errors: u64,
}

impl FaultCounts {
    /// Total injections of any kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.drops + self.delays + self.errors
    }
}

/// A seeded per-message fault decider (see the module docs).
#[derive(Debug)]
pub struct SbiFaultPlan {
    cfg: FaultConfig,
    rng: DetRng,
    counts: FaultCounts,
}

impl SbiFaultPlan {
    /// Installs a plan for `cfg` by arming `switch` (shared by every
    /// endpoint's fault layer), forking the plan's RNG off `env`. Returns
    /// a handle for reading [`FaultCounts`] after the run — or `None`,
    /// touching neither the switch nor the RNG stream, when every rate is
    /// zero (the zero-rate invariant above).
    pub fn install(
        switch: &FaultSwitch,
        env: &mut Env,
        cfg: FaultConfig,
    ) -> Option<Rc<RefCell<SbiFaultPlan>>> {
        if !cfg.enabled() {
            return None;
        }
        let plan = Rc::new(RefCell::new(SbiFaultPlan {
            cfg,
            rng: env.rng.fork("sbi-fault-plan"),
            counts: FaultCounts::default(),
        }));
        switch.install(Some(plan.clone()));
        Some(plan)
    }

    /// Injections so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// The installed config.
    #[must_use]
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// One decision for one message. Always draws the same three chances
    /// in the same order, so the schedule depends only on message *count*,
    /// not on which faults happened to fire earlier.
    fn decide(&mut self) -> FaultAction {
        let drop = self.rng.chance(self.cfg.drop_rate);
        let delay = self.rng.chance(self.cfg.delay_rate);
        let error = self.rng.chance(self.cfg.error_rate);
        if drop {
            self.counts.drops += 1;
            return FaultAction::Drop {
                timeout: self.cfg.drop_timeout,
            };
        }
        if delay {
            self.counts.delays += 1;
            let d = self
                .rng
                .jitter(self.cfg.delay.as_nanos(), self.cfg.delay_jitter);
            return FaultAction::Delay(SimDuration::from_nanos(d));
        }
        if error {
            self.counts.errors += 1;
            return FaultAction::Error {
                status: self.cfg.error_status,
            };
        }
        FaultAction::Deliver
    }
}

impl FaultInjector for SbiFaultPlan {
    fn on_request(&mut self, _dest: &str, _path: &str) -> FaultAction {
        self.decide()
    }

    fn on_response(&mut self, _dest: &str, _path: &str, status: u16) -> FaultAction {
        // A reply that is already a failure carries its bad news fine on
        // its own; injecting on top would double-count faults.
        if status >= 500 {
            return FaultAction::Deliver;
        }
        self.decide()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_config_installs_nothing_and_draws_nothing() {
        let mut env = Env::new(3);
        let switch = FaultSwitch::new();
        let before = env.rng.fork("probe").bytes::<8>();
        let mut env2 = Env::new(3);
        assert!(SbiFaultPlan::install(&switch, &mut env2, FaultConfig::default()).is_none());
        assert!(
            !switch.is_armed(),
            "zero-rate install must leave the switch cold"
        );
        // The parent stream was not consumed: the next fork matches a
        // fresh environment's.
        assert_eq!(env2.rng.fork("probe").bytes::<8>(), before);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let schedule = |seed: u64| {
            let mut env = Env::new(seed);
            let switch = FaultSwitch::new();
            let plan = SbiFaultPlan::install(
                &switch,
                &mut env,
                FaultConfig {
                    drop_rate: 0.1,
                    delay_rate: 0.2,
                    error_rate: 0.1,
                    ..FaultConfig::default()
                },
            )
            .expect("enabled config installs");
            let mut decisions = Vec::new();
            for i in 0..200 {
                let action = plan.borrow_mut().decide();
                decisions.push(format!("{i}:{action:?}"));
            }
            let counts = plan.borrow().counts();
            (decisions, counts)
        };
        let (d1, c1) = schedule(42);
        let (d2, c2) = schedule(42);
        assert_eq!(d1, d2);
        assert_eq!(c1, c2);
        assert!(c1.total() > 0, "rates this high must fire in 200 draws");
        let (d3, _) = schedule(43);
        assert_ne!(d1, d3, "different seeds must diverge");
    }

    #[test]
    fn failed_responses_are_never_doubly_faulted() {
        let mut env = Env::new(9);
        let switch = FaultSwitch::new();
        let plan = SbiFaultPlan::install(
            &switch,
            &mut env,
            FaultConfig {
                drop_rate: 1.0,
                ..FaultConfig::default()
            },
        )
        .expect("enabled");
        let mut p = plan.borrow_mut();
        assert!(matches!(
            p.on_response("d", "/p", 503),
            FaultAction::Deliver
        ));
        assert!(matches!(
            p.on_response("d", "/p", 200),
            FaultAction::Drop { .. }
        ));
    }

    #[test]
    fn counts_track_each_kind() {
        let mut env = Env::new(11);
        let switch = FaultSwitch::new();
        let plan = SbiFaultPlan::install(
            &switch,
            &mut env,
            FaultConfig {
                drop_rate: 0.2,
                delay_rate: 0.2,
                error_rate: 0.2,
                ..FaultConfig::default()
            },
        )
        .expect("enabled");
        let mut injected = 0;
        for _ in 0..500 {
            if !matches!(plan.borrow_mut().decide(), FaultAction::Deliver) {
                injected += 1;
            }
        }
        let c = plan.borrow().counts();
        assert_eq!(c.total(), injected);
        assert!(c.drops > 0 && c.delays > 0 && c.errors > 0);
    }
}
