//! The `degradation_sweep` graceful-degradation experiment.
//!
//! Where [`crate::sweep`] asks *"does the pool recover?"*, this sweep
//! asks *"how does service degrade while it cannot?"*. One open-loop
//! registration run per point, with the SBI fault rate ramped across
//! points, exercising every overload-control mechanism at once:
//!
//! * **Priority shedding** — every `emergency_period`-th arrival is an
//!   emergency registration (TS 23.501 §5.16.4), marked with
//!   [`PRIORITY_HEADER`]; the replica-side [`AdmissionLayer`] reserves
//!   `emergency_headroom` queue slots for it, so under overload the
//!   normal class is shed first and emergency availability degrades
//!   strictly slower.
//! * **Health-gated routing** — client-observed completions feed
//!   [`EnclavePool::note_outcome`]; replicas whose failure EWMA trips
//!   are ejected from the ring, half-open probed after the hold-off,
//!   and reinstated on probe success.
//! * **Brownout** — when the response-latency EWMA climbs past
//!   `enter_above` the frontend stops AV batch prefetching (each miss
//!   pays one single-AV round trip instead of a batch) and serves hits
//!   from the [`AvCache`] alone; it exits the brownout with hysteresis
//!   once the EWMA falls below `exit_fraction` of the threshold.
//!
//! Everything is a pure function of the seed: workload, fault schedule,
//! retry jitter, and the emergency-marking pattern (by arrival index,
//! not RNG) are deterministic, so the emitted curves are byte-identical
//! across bench thread counts.

use crate::plan::{FaultConfig, FaultCounts, SbiFaultPlan};
use shield5g_core::paka::PakaKind;
use shield5g_mw::{ClassSheds, RetryPolicy, RetryStats};
use shield5g_nf::backend::decode_he_av_batch;
use shield5g_obs::{hub as obs, labels};
use shield5g_ran::workload::{poisson_registrations, test_supi, WorkloadSpec};
use shield5g_scale::avcache::{AvCache, AvCacheConfig};
use shield5g_scale::pool::{replica_addr, EnclavePool, PoolConfig};
use shield5g_scale::queue::QueueConfig;
use shield5g_scale::{HealthEvent, HealthPolicy};
use shield5g_sim::engine::{Completion, Engine, PriorityClass, ERROR_HEADER, PRIORITY_HEADER};
use shield5g_sim::http::HttpRequest;
use shield5g_sim::rng::DetRng;
use shield5g_sim::time::{SimDuration, SimTime};
use shield5g_sim::Env;
use std::collections::BTreeMap;

use super::sweep::{batch_request, single_request, K};

/// Brownout trigger thresholds (hysteresis on the client-observed
/// response-latency EWMA).
#[derive(Clone, Copy, Debug)]
pub struct BrownoutPolicy {
    /// Enter brownout when the latency EWMA exceeds this.
    pub enter_above: SimDuration,
    /// Exit once the EWMA falls below `exit_fraction * enter_above`
    /// (strictly below the entry threshold, so the mode doesn't
    /// flap at the boundary).
    pub exit_fraction: f64,
    /// EWMA smoothing factor.
    pub alpha: f64,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            enter_above: SimDuration::from_millis(5),
            exit_fraction: 0.7,
            alpha: 0.3,
        }
    }
}

/// Parameters of one graceful-degradation experiment.
#[derive(Clone, Copy, Debug)]
pub struct DegradationConfig {
    /// Ready replicas on the ring.
    pub replicas: u32,
    /// Preheated spares on the bench.
    pub warm_standby: u32,
    /// Offered load in authentications per second.
    pub offered_per_sec: f64,
    /// Arrivals in the trace.
    pub arrivals: u32,
    /// Subscriber population (one extra is provisioned for probes).
    pub ues: u32,
    /// Per-replica admission queue parameters.
    pub queue: QueueConfig,
    /// Queue slots reserved for emergency arrivals on every replica.
    pub emergency_headroom: usize,
    /// Every n-th arrival (by index) is an emergency registration;
    /// 0 = no emergency traffic.
    pub emergency_period: u32,
    /// AV pre-generation; `None` = one enclave round trip per request.
    pub cache: Option<AvCacheConfig>,
    /// SBI message-level fault rates and shapes.
    pub sbi: FaultConfig,
    /// Client supervision retries guarding every pool request.
    pub retry: RetryPolicy,
    /// Health-gated routing thresholds; `None` disables ejection.
    pub health: Option<HealthPolicy>,
    /// Brownout trigger; `None` keeps batch prefetching unconditionally.
    pub brownout: Option<BrownoutPolicy>,
    /// EPC thrash pages charged to every replica for the whole run.
    pub thrash_pages: u64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            replicas: 2,
            warm_standby: 0,
            offered_per_sec: 400.0,
            arrivals: 240,
            ues: 24,
            queue: QueueConfig::default(),
            emergency_headroom: 2,
            emergency_period: 4,
            cache: None,
            sbi: FaultConfig::default(),
            retry: RetryPolicy::supervision(),
            health: None,
            brownout: None,
            thrash_pages: 0,
        }
    }
}

/// Per-priority-class outcome figures.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClassReport {
    /// Arrivals of this class offered to the pool.
    pub arrivals: u64,
    /// Arrivals eventually served (cache hits included).
    pub served: u64,
    /// Arrivals abandoned after the retry budget (shed or failed to the
    /// end).
    pub lost: u64,
    /// `served / arrivals` (1.0 for an empty class).
    pub availability: f64,
    /// Served completions per second of virtual run time.
    pub goodput_per_sec: f64,
}

impl ClassReport {
    fn finish(&mut self, span: SimDuration) {
        self.availability = if self.arrivals == 0 {
            1.0
        } else {
            self.served as f64 / self.arrivals as f64
        };
        let secs = span.as_nanos() as f64 / 1e9;
        self.goodput_per_sec = if secs > 0.0 {
            self.served as f64 / secs
        } else {
            0.0
        };
    }
}

/// Results of one graceful-degradation run.
#[derive(Clone, Debug)]
pub struct DegradationReport {
    /// Normal-class outcome figures.
    pub normal: ClassReport,
    /// Emergency-class outcome figures.
    pub emergency: ClassReport,
    /// Replica-side per-class admission sheds (queue-full + deadline).
    pub sheds: ClassSheds,
    /// What the SBI plan injected.
    pub sbi: FaultCounts,
    /// Client supervision-retry counters.
    pub retry: RetryStats,
    /// Replicas ejected from the ring by health gating.
    pub ejections: u64,
    /// Replicas reinstated after a successful half-open probe.
    pub reinstatements: u64,
    /// Half-open probes sent.
    pub probes: u64,
    /// Times the frontend entered brownout (prefetch disabled).
    pub brownout_entries: u64,
    /// Times the frontend exited brownout.
    pub brownout_exits: u64,
    /// Virtual time from first arrival to last completion.
    pub span: SimDuration,
    /// End-of-run client-observed response-latency EWMA in nanoseconds
    /// (the brownout trigger signal), when any pool round trip happened.
    pub latency_ewma_ns: Option<f64>,
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "normal {:.1}% ({}/{}), emergency {:.1}% ({}/{}); \
             sheds n/e {}/{}; {} retransmissions; \
             eject/reinstate {}/{}; brownout in/out {}/{}",
            100.0 * self.normal.availability,
            self.normal.served,
            self.normal.arrivals,
            100.0 * self.emergency.availability,
            self.emergency.served,
            self.emergency.arrivals,
            self.sheds.normal,
            self.sheds.emergency,
            self.retry.retries,
            self.ejections,
            self.reinstatements,
            self.brownout_entries,
            self.brownout_exits,
        )
    }
}

/// One in-flight (possibly retransmitted) pool request.
struct Pending {
    supi: String,
    req: HttpRequest,
    attempt: u32,
    class: PriorityClass,
    /// The replica the request was scheduled on (health accounting).
    replica: u32,
    /// `Some(id)` marks a half-open health probe aimed at ejected
    /// replica `id`: its outcome feeds `note_probe`, not the tallies.
    probe: Option<u32>,
    /// Whether the request was a batch prefetch (so a success refills
    /// the cache) or a brownout-mode single AV.
    batch: bool,
}

/// Mutable run state threaded through the settle loop.
struct DegradationState {
    cache: Option<AvCache>,
    sqn_counters: BTreeMap<String, [u8; 6]>,
    stats: RetryStats,
    in_flight: BTreeMap<u64, Pending>,
    retry_rng: DetRng,
    policy: RetryPolicy,
    health_on: bool,
    normal: ClassReport,
    emergency: ClassReport,
    brownout: Option<BrownoutPolicy>,
    latency_ewma: Option<f64>,
    browned_out: bool,
    brownout_entries: u64,
    brownout_exits: u64,
    ejections: u64,
    reinstatements: u64,
    probes: u64,
    last_finish: SimTime,
}

impl DegradationState {
    fn class_mut(&mut self, class: PriorityClass) -> &mut ClassReport {
        match class {
            PriorityClass::Normal => &mut self.normal,
            PriorityClass::Emergency => &mut self.emergency,
        }
    }

    /// Updates the latency EWMA and the brownout mode with hysteresis.
    fn observe_latency(&mut self, latency: SimDuration) {
        let Some(policy) = self.brownout else { return };
        let sample = latency.as_nanos() as f64;
        let ewma = match self.latency_ewma {
            Some(e) => policy.alpha * sample + (1.0 - policy.alpha) * e,
            None => sample,
        };
        self.latency_ewma = Some(ewma);
        let enter = policy.enter_above.as_nanos() as f64;
        if !self.browned_out && ewma > enter {
            self.browned_out = true;
            self.brownout_entries += 1;
            obs::count("faults", "brownout", labels::BROWNOUT_ENTRIES, 1);
        } else if self.browned_out && ewma < policy.exit_fraction * enter {
            self.browned_out = false;
            self.brownout_exits += 1;
            obs::count("faults", "brownout", labels::BROWNOUT_EXITS, 1);
        }
    }

    /// Absorbs a batch of engine completions: probe outcomes feed the
    /// health tracker, successes feed the cache and the class tallies,
    /// failures are retransmitted through the pool's *current* ring
    /// until the retry budget is spent, then abandoned against their
    /// class.
    fn settle(
        &mut self,
        engine: &mut Engine,
        pool: &mut EnclavePool,
        floor: SimTime,
        done: Vec<Completion>,
    ) {
        for completion in done {
            let pending = self
                .in_flight
                .remove(&completion.tag)
                .expect("completion for unscheduled tag");
            let finished = completion.finished;
            self.last_finish = self.last_finish.max(finished);
            let ok = completion.response.is_success();
            if let Some(id) = pending.probe {
                if let Some(HealthEvent::Reinstated(_)) = pool.note_probe(id, ok, finished) {
                    self.reinstatements += 1;
                }
                continue;
            }
            if self.health_on {
                let latency = finished - completion.submitted;
                if let Some(HealthEvent::Ejected(_)) =
                    pool.note_outcome(pending.replica, ok, latency, finished)
                {
                    self.ejections += 1;
                }
            }
            self.observe_latency(finished - completion.submitted);
            if ok {
                if pending.batch {
                    if let Some(c) = self.cache.as_mut() {
                        let avs =
                            decode_he_av_batch(&completion.response.body).expect("batch wire");
                        c.put_batch(&pending.supi, avs);
                        // The missing request consumes the batch head.
                        let _ = c.pop_uncounted(&pending.supi);
                    }
                }
                if pending.attempt > 0 {
                    self.stats.recovered += 1;
                }
                self.class_mut(pending.class).served += 1;
                continue;
            }
            let retryable = completion.response.status >= 500
                && completion.response.header(ERROR_HEADER) != Some("loop");
            if retryable && pending.attempt < self.policy.max_retries {
                let attempt = pending.attempt + 1;
                self.stats.retries += 1;
                let backoff = self.policy.backoff(attempt);
                let jittered = SimDuration::from_nanos(
                    self.retry_rng
                        .jitter(backoff.as_nanos(), self.policy.jitter),
                );
                let at = (finished + jittered).max(floor);
                let id = pool.route(&pending.supi);
                let tag = engine.schedule_request(
                    at,
                    &replica_addr(pool.kind(), id),
                    pending.req.clone(),
                );
                self.in_flight.insert(
                    tag,
                    Pending {
                        attempt,
                        replica: id,
                        ..pending
                    },
                );
            } else {
                self.stats.exhausted += 1;
                self.class_mut(pending.class).lost += 1;
            }
        }
    }

    /// Sends one half-open probe to every ejected replica whose hold-off
    /// expired. Probes are real single-AV requests against a dedicated
    /// probe subscriber, scheduled directly at the ejected endpoint
    /// (which the ring no longer routes to).
    fn send_probes(
        &mut self,
        engine: &mut Engine,
        pool: &mut EnclavePool,
        env: &mut Env,
        probe_supi: &str,
        now: SimTime,
    ) {
        if !self.health_on {
            return;
        }
        for id in pool.due_probes(now) {
            let req = single_request(env, &mut self.sqn_counters, probe_supi);
            let tag = engine.schedule_request(now, &replica_addr(pool.kind(), id), req.clone());
            self.probes += 1;
            obs::count(
                "pool",
                &replica_addr(pool.kind(), id),
                labels::BREAKER_PROBES,
                1,
            );
            self.in_flight.insert(
                tag,
                Pending {
                    supi: probe_supi.to_owned(),
                    req,
                    attempt: 0,
                    class: PriorityClass::Normal,
                    replica: id,
                    probe: Some(id),
                    batch: false,
                },
            );
        }
    }
}

/// Runs one graceful-degradation experiment (see the module docs).
///
/// # Panics
///
/// Panics when a cache refill response fails to decode, or when the
/// engine leaves requests unsettled.
#[must_use]
pub fn degradation_sweep(seed: u64, cfg: &DegradationConfig) -> DegradationReport {
    let mut env = Env::new(seed);
    env.log.disable();
    let mut pool = EnclavePool::deploy(
        &mut env,
        PakaKind::EUdm,
        PoolConfig {
            replicas: cfg.replicas,
            warm_standby: cfg.warm_standby,
            queue: cfg.queue,
            emergency_headroom: cfg.emergency_headroom,
            ..PoolConfig::default()
        },
    );
    for i in 0..cfg.ues {
        pool.provision_subscriber(&mut env, &test_supi(i), K);
    }
    // One extra subscriber reserved for half-open health probes.
    let probe_supi = test_supi(cfg.ues);
    pool.provision_subscriber(&mut env, &probe_supi, K);
    if cfg.thrash_pages > 0 {
        for replica in pool.replicas() {
            replica
                .module()
                .borrow_mut()
                .set_epc_thrash(cfg.thrash_pages);
        }
    }
    pool.rebaseline();
    if let Some(policy) = cfg.health {
        pool.enable_health(policy);
    }

    let mut wl_rng = env.rng.fork("degradation-workload");
    let trace = poisson_registrations(
        &mut wl_rng,
        env.clock.now(),
        &WorkloadSpec {
            ues: cfg.ues,
            arrivals: cfg.arrivals,
            rate_per_sec: cfg.offered_per_sec,
        },
    );
    let first_arrival = trace.first().map_or(env.clock.now(), |a| a.at);

    let mut engine = Engine::new();
    pool.register_on(&mut engine);
    let plan = SbiFaultPlan::install(pool.fault_switch(), &mut env, cfg.sbi);

    let mut state = DegradationState {
        cache: cfg.cache.map(AvCache::new),
        sqn_counters: BTreeMap::new(),
        stats: RetryStats::default(),
        in_flight: BTreeMap::new(),
        retry_rng: env.rng.fork("degradation-retry"),
        policy: cfg.retry,
        health_on: cfg.health.is_some(),
        normal: ClassReport::default(),
        emergency: ClassReport::default(),
        brownout: cfg.brownout,
        latency_ewma: None,
        browned_out: false,
        brownout_entries: 0,
        brownout_exits: 0,
        ejections: 0,
        reinstatements: 0,
        probes: 0,
        last_finish: env.clock.now(),
    };

    for (i, arrival) in trace.iter().enumerate() {
        let horizon = arrival.at.max(env.clock.now());
        let done = engine.run_until(&mut env, horizon);
        state.settle(&mut engine, &mut pool, horizon, done);
        state.send_probes(&mut engine, &mut pool, &mut env, &probe_supi, horizon);

        let class = if cfg.emergency_period > 0 && (i as u32).is_multiple_of(cfg.emergency_period) {
            PriorityClass::Emergency
        } else {
            PriorityClass::Normal
        };
        state.class_mut(class).arrivals += 1;
        if let Some(c) = state.cache.as_mut() {
            if c.take(&arrival.supi).is_some() {
                state.class_mut(class).served += 1;
                state.last_finish = state.last_finish.max(horizon);
                continue;
            }
        }
        // Brownout disables batch prefetching: each miss pays one
        // single-AV round trip and the cache refills only from hits
        // already banked.
        let batch = state.cache.is_some() && !state.browned_out;
        let mut request = if batch {
            batch_request(
                &mut env,
                state.cache.as_ref().expect("batch implies cache"),
                &arrival.supi,
            )
        } else {
            single_request(&mut env, &mut state.sqn_counters, &arrival.supi)
        };
        if class == PriorityClass::Emergency {
            request = request.with_header(PRIORITY_HEADER, "emergency");
        }
        state.stats.calls += 1;
        let id = pool.route(&arrival.supi);
        let tag = engine.schedule_request(horizon, &replica_addr(pool.kind(), id), request.clone());
        state.in_flight.insert(
            tag,
            Pending {
                supi: arrival.supi.clone(),
                req: request,
                attempt: 0,
                class,
                replica: id,
                probe: None,
                batch,
            },
        );
    }
    // Drain: each settle pass may retransmit or probe, scheduling fresh
    // work.
    while !state.in_flight.is_empty() {
        let done = engine.run_until_idle(&mut env);
        if done.is_empty() {
            break;
        }
        let floor = env.clock.now();
        state.settle(&mut engine, &mut pool, floor, done);
        state.send_probes(&mut engine, &mut pool, &mut env, &probe_supi, floor);
    }
    assert!(state.in_flight.is_empty(), "requests left in flight");
    pool.absorb_engine(&engine);

    let sbi = plan.map_or_else(FaultCounts::default, |p| p.borrow().counts());
    let span = state.last_finish - first_arrival;
    let DegradationState {
        mut normal,
        mut emergency,
        stats,
        ejections,
        reinstatements,
        probes,
        brownout_entries,
        brownout_exits,
        latency_ewma,
        ..
    } = state;
    normal.finish(span);
    emergency.finish(span);
    let sheds = pool.class_sheds();
    obs::count("faults", "degradation", labels::SHED_NORMAL, sheds.normal);
    obs::count(
        "faults",
        "degradation",
        labels::SHED_EMERGENCY,
        sheds.emergency,
    );
    DegradationReport {
        normal,
        emergency,
        sheds,
        sbi,
        retry: stats,
        ejections,
        reinstatements,
        probes,
        brownout_entries,
        brownout_exits,
        span,
        latency_ewma_ns: latency_ewma,
    }
}

/// One fully-specified point of the degradation bench. `Copy + Send`,
/// so the parallel sweep runner can move points onto worker threads;
/// running a point is a pure function of this struct.
#[derive(Clone, Copy, Debug)]
pub struct DegradationPoint {
    /// Scenario label the bench reports (`fault_ramp`, `brownout`).
    pub scenario: &'static str,
    /// Total SBI fault rate of the point (split evenly across
    /// drop/delay/5xx).
    pub rate: f64,
    /// Seed of this point's run.
    pub seed: u64,
    /// The full experiment configuration.
    pub cfg: DegradationConfig,
}

/// A config under pressure: offered load past the pool's comfortable
/// operating point, a tight priority-aware admission queue, health-gated
/// routing, and the brownout trigger armed — every arrival pays a real
/// pool round trip (no AV cache), so the fault ramp bites.
#[must_use]
pub fn pressured_config(arrivals: u32) -> DegradationConfig {
    DegradationConfig {
        arrivals,
        offered_per_sec: 1_200.0,
        queue: QueueConfig {
            capacity: 8,
            deadline: SimDuration::from_millis(40),
        },
        emergency_headroom: 2,
        emergency_period: 4,
        health: Some(HealthPolicy::default()),
        brownout: Some(BrownoutPolicy::default()),
        ..DegradationConfig::default()
    }
}

/// The brownout scenario: the AV cache on, the EPC thrashed, and SBI
/// delays inflating the latency EWMA — the frontend must fall back from
/// batch prefetching to single-AV misses while serving hits from the
/// cache alone.
#[must_use]
pub fn brownout_config(arrivals: u32) -> DegradationConfig {
    DegradationConfig {
        cache: Some(AvCacheConfig {
            batch_size: 8,
            capacity_per_supi: 16,
        }),
        thrash_pages: 4 * 1024 * 1024,
        sbi: FaultConfig {
            delay_rate: 0.3,
            error_rate: 0.1,
            ..FaultConfig::default()
        },
        brownout: Some(BrownoutPolicy {
            enter_above: SimDuration::from_millis(2),
            ..BrownoutPolicy::default()
        }),
        ..pressured_config(arrivals)
    }
}

/// The degradation bench's point list: availability/goodput/shed-rate
/// curves per priority class as the SBI fault rate ramps, plus the
/// cache-brownout scenario under EPC thrash. `smoke` shrinks the list
/// to CI-smoke size.
#[must_use]
pub fn degradation_points(smoke: bool) -> Vec<DegradationPoint> {
    let rates: &[f64] = if smoke {
        &[0.0, 0.35]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.35, 0.5]
    };
    let arrivals = if smoke { 100 } else { 240 };
    let mut points: Vec<DegradationPoint> = rates
        .iter()
        .map(|&rate| DegradationPoint {
            scenario: "fault_ramp",
            rate,
            seed: 930,
            cfg: DegradationConfig {
                sbi: FaultConfig {
                    drop_rate: rate / 3.0,
                    delay_rate: rate / 3.0,
                    error_rate: rate / 3.0,
                    ..FaultConfig::default()
                },
                ..pressured_config(arrivals)
            },
        })
        .collect();
    points.push(DegradationPoint {
        scenario: "brownout",
        rate: 0.0,
        seed: 931,
        cfg: brownout_config(arrivals),
    });
    points
}

/// Runs one degradation point.
#[must_use]
pub fn run_degradation_point(point: &DegradationPoint) -> DegradationReport {
    degradation_sweep(point.seed, &point.cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_serves_both_classes_fully() {
        let report = degradation_sweep(
            800,
            &DegradationConfig {
                arrivals: 120,
                ..DegradationConfig::default()
            },
        );
        assert_eq!(report.normal.arrivals + report.emergency.arrivals, 120);
        assert!(report.emergency.arrivals > 0, "period 4 must mark some");
        assert_eq!(report.normal.lost, 0);
        assert_eq!(report.emergency.lost, 0);
        assert!((report.normal.availability - 1.0).abs() < 1e-9);
        assert!((report.emergency.availability - 1.0).abs() < 1e-9);
        assert_eq!(report.sheds, ClassSheds::default());
        assert_eq!(report.brownout_entries, 0);
        assert_eq!(report.ejections, 0);
    }

    #[test]
    fn same_seed_same_degradation_report() {
        let cfg = pressured_config(120);
        let a = degradation_sweep(801, &cfg);
        let b = degradation_sweep(801, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = degradation_sweep(802, &cfg);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "different seeds must diverge"
        );
    }

    #[test]
    fn emergency_availability_degrades_strictly_slower() {
        let clean = run_degradation_point(&DegradationPoint {
            scenario: "fault_ramp",
            rate: 0.0,
            seed: 930,
            cfg: pressured_config(240),
        });
        let stressed = run_degradation_point(&DegradationPoint {
            scenario: "fault_ramp",
            rate: 0.5,
            seed: 930,
            cfg: DegradationConfig {
                sbi: FaultConfig {
                    drop_rate: 0.5 / 3.0,
                    delay_rate: 0.5 / 3.0,
                    error_rate: 0.5 / 3.0,
                    ..FaultConfig::default()
                },
                ..pressured_config(240)
            },
        });
        let normal_drop = clean.normal.availability - stressed.normal.availability;
        let emergency_drop = clean.emergency.availability - stressed.emergency.availability;
        assert!(
            normal_drop > 0.0,
            "the stressed point must actually degrade: {stressed}"
        );
        assert!(
            emergency_drop < normal_drop,
            "emergency must degrade strictly slower: \
             emergency drop {emergency_drop:.3} vs normal drop {normal_drop:.3} ({stressed})"
        );
        assert!(
            stressed.sheds.normal > stressed.sheds.emergency,
            "the reserved headroom must shed normal first: {:?}",
            stressed.sheds
        );
    }

    #[test]
    fn brownout_enters_under_thrash_and_counts_transitions() {
        let report = degradation_sweep(803, &brownout_config(160));
        assert!(
            report.brownout_entries > 0,
            "EPC thrash + delays must push the latency EWMA over: {report}"
        );
        assert!(report.brownout_entries >= report.brownout_exits);
        assert!(
            report.normal.availability > 0.8,
            "brownout degrades freshness, not availability: {report}"
        );
    }

    #[test]
    fn sustained_faults_eject_and_probe_replicas() {
        let report = degradation_sweep(
            804,
            &DegradationConfig {
                sbi: FaultConfig {
                    error_rate: 0.6,
                    ..FaultConfig::default()
                },
                ..pressured_config(200)
            },
        );
        assert!(
            report.ejections > 0,
            "60% 5xx must trip a replica: {report}"
        );
        assert!(report.probes > 0, "ejected replicas must be probed");
    }
}
